//! Figure 4: roofline model for (a) Parboil, (b) Rodinia and (c) Tango.
//! Most workloads are unambiguous — all kernels on one side of the elbow —
//! with `lud` and `alexnet` the mixed exceptions.

use cactus_bench::store::prt_profiles_cached;
use cactus_bench::{header, kernel_points, roofline, roofline_header, roofline_row};

fn main() {
    let r = roofline();
    let profiles = prt_profiles_cached();

    let mut mixed = Vec::new();
    for suite in ["Parboil", "Rodinia", "Tango"] {
        header(&format!("Figure 4: {suite} per-kernel roofline"));
        println!("{}", roofline_header());
        let mut points = Vec::new();
        for p in profiles.iter().filter(|p| p.suite == suite) {
            let total = p.profile.total_time_s();
            let mut classes = std::collections::BTreeSet::new();
            for k in p.profile.kernels() {
                println!(
                    "{}",
                    roofline_row(
                        &r,
                        &format!("{}/{}", p.name, k.name),
                        &k.metrics,
                        k.time_share(total)
                    )
                );
                classes.insert(r.intensity_class(k.metrics.instruction_intensity));
            }
            if classes.len() > 1 {
                mixed.push(p.name.clone());
            }
            points.extend(kernel_points(p));
        }
        println!("\n{}", r.render_chart(&points));
    }

    header("Observation 4 check");
    println!(
        "Workloads with kernels on BOTH sides of the elbow: {mixed:?}\n\
         (paper: only lud from Rodinia and alexnet from Tango are mixed)"
    );
    let mixed_of_interest: Vec<&String> = mixed
        .iter()
        .filter(|m| m.as_str() != "lud" && m.as_str() != "alexnet")
        .collect();
    println!(
        "Unexpected mixed workloads: {}",
        if mixed_of_interest.is_empty() {
            "none — HOLDS".to_owned()
        } else {
            format!("{mixed_of_interest:?}")
        }
    );
}
