//! Perf-gate: parse and diff the `BENCH_<area>.json` snapshots emitted by
//! the vendored Criterion shim ([`criterion::finalize`]) against committed
//! baselines, flagging regressions beyond a tolerance band.
//!
//! The snapshot schema is deliberately tiny and flat:
//!
//! ```json
//! {
//!   "area": "engine",
//!   "schema": 1,
//!   "benches": { "engine/full-suite/serial-cold": 10.66, ... }
//! }
//! ```
//!
//! so this module carries its own ~100-line parser instead of a JSON
//! dependency. The parser accepts exactly that shape (any key order,
//! arbitrary whitespace) and rejects everything else loudly — a gate that
//! half-reads its baseline is worse than no gate.
//!
//! [`criterion::finalize`]: https://docs.rs/criterion

use std::fmt;

/// Snapshot schema version this gate understands.
pub const SCHEMA: u64 = 1;

/// One parsed `BENCH_<area>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Bench area (`engine`, `simulator`, `serve`, …).
    pub area: String,
    /// Bench id → median seconds, in file order.
    pub benches: Vec<(String, f64)>,
}

impl Snapshot {
    /// Median for one bench id, if present.
    #[must_use]
    pub fn median_of(&self, id: &str) -> Option<f64> {
        self.benches.iter().find(|(k, _)| k == id).map(|&(_, v)| v)
    }
}

/// How one bench id moved between baseline and current snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band (or the delta is below the noise floor).
    Ok,
    /// Slower than `baseline * (1 + threshold)` — fails the gate.
    Regression,
    /// Faster than the baseline by more than the threshold; informational
    /// (a standing invitation to refresh the baseline).
    Improvement,
    /// Present in the baseline but missing from the current snapshot —
    /// fails the gate: silently dropping a bench would blind the trajectory.
    Missing,
    /// New bench with no baseline yet; informational.
    New,
}

/// One row of a gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Bench id.
    pub id: String,
    /// Baseline median seconds (`None` for [`Verdict::New`]).
    pub baseline_s: Option<f64>,
    /// Current median seconds (`None` for [`Verdict::Missing`]).
    pub current_s: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

impl Comparison {
    /// `current / baseline` when both sides exist.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline_s, self.current_s) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_s = |v: Option<f64>| match v {
            Some(s) => format!("{s:>12.6}"),
            None => format!("{:>12}", "-"),
        };
        let tag = match self.verdict {
            Verdict::Ok => "ok",
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improved",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        };
        let ratio = match self.ratio() {
            Some(r) => format!("{r:>7.2}x"),
            None => format!("{:>8}", "-"),
        };
        write!(
            f,
            "{:<44} {} {} {} {}",
            self.id,
            fmt_s(self.baseline_s),
            fmt_s(self.current_s),
            ratio,
            tag
        )
    }
}

/// Gate policy: when is slower *too* slow.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative band: fail when `current > baseline * (1 + threshold)`.
    pub threshold: f64,
    /// Absolute noise floor in seconds: deltas smaller than this never
    /// fail, so nanosecond-scale benches can't flap the gate on scheduler
    /// jitter. (15% of 200 ns is noise; 15% of 10 s is a lost optimization.)
    pub floor_s: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            threshold: 0.15,
            floor_s: 1e-4,
        }
    }
}

/// Compare `current` against `baseline` under `tol`.
///
/// Rows come back in baseline order, with any baseline-less new benches
/// appended; [`Verdict::Regression`] and [`Verdict::Missing`] are the
/// failing verdicts.
#[must_use]
pub fn compare(baseline: &Snapshot, current: &Snapshot, tol: Tolerance) -> Vec<Comparison> {
    let mut rows = Vec::with_capacity(baseline.benches.len());
    for (id, base) in &baseline.benches {
        let row = match current.median_of(id) {
            None => Comparison {
                id: id.clone(),
                baseline_s: Some(*base),
                current_s: None,
                verdict: Verdict::Missing,
            },
            Some(cur) => {
                let verdict = if cur > base * (1.0 + tol.threshold) && cur - base > tol.floor_s {
                    Verdict::Regression
                } else if cur < base * (1.0 - tol.threshold) && base - cur > tol.floor_s {
                    Verdict::Improvement
                } else {
                    Verdict::Ok
                };
                Comparison {
                    id: id.clone(),
                    baseline_s: Some(*base),
                    current_s: Some(cur),
                    verdict,
                }
            }
        };
        rows.push(row);
    }
    for (id, cur) in &current.benches {
        if baseline.median_of(id).is_none() {
            rows.push(Comparison {
                id: id.clone(),
                baseline_s: None,
                current_s: Some(*cur),
                verdict: Verdict::New,
            });
        }
    }
    rows
}

/// Count of gate-failing rows ([`Verdict::Regression`] + [`Verdict::Missing`]).
#[must_use]
pub fn failures(rows: &[Comparison]) -> usize {
    rows.iter()
        .filter(|r| matches!(r.verdict, Verdict::Regression | Verdict::Missing))
        .count()
}

/// Parse a `BENCH_<area>.json` snapshot.
///
/// # Errors
///
/// Returns a one-line description of the first syntax or schema problem:
/// unknown keys, a schema number other than [`SCHEMA`], non-numeric
/// medians, or trailing garbage.
pub fn parse(text: &str) -> Result<Snapshot, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let mut area: Option<String> = None;
    let mut schema: Option<u64> = None;
    let mut benches: Option<Vec<(String, f64)>> = None;

    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "area" => area = Some(p.string()?),
            "schema" => {
                let v = p.number()?;
                if v.fract() != 0.0 || v < 0.0 {
                    return Err(format!("schema must be a non-negative integer, got {v}"));
                }
                schema = Some(v as u64);
            }
            "benches" => {
                let mut entries = Vec::new();
                p.expect(b'{')?;
                if p.peek()? == b'}' {
                    p.i += 1;
                } else {
                    loop {
                        let id = p.string()?;
                        p.expect(b':')?;
                        let v = p.number()?;
                        if !v.is_finite() || v < 0.0 {
                            return Err(format!("bench {id:?}: median {v} out of range"));
                        }
                        entries.push((id, v));
                        match p.next()? {
                            b',' => {}
                            b'}' => break,
                            c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
                        }
                    }
                }
                benches = Some(entries);
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        match p.next()? {
            b',' => {}
            b'}' => break,
            c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err("trailing data after closing brace".into());
    }

    let schema = schema.ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema}, expected {SCHEMA}"));
    }
    Ok(Snapshot {
        area: area.ok_or("missing \"area\"")?,
        benches: benches.ok_or("missing \"benches\"")?,
    })
}

/// Byte-level cursor over the snapshot text.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn next(&mut self) -> Result<u8, String> {
        let c = self.peek()?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "expected {:?}, got {:?}",
                want as char, got as char
            ))
        }
    }

    /// A double-quoted string; the shim only escapes `\"`, `\\` and
    /// control characters as `\u00XX`, so that is all we accept.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.i += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    /// A JSON number (integer, decimal, or exponent form).
    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "area": "engine",
  "schema": 1,
  "benches": {
    "engine/full-suite/serial-cold": 10.66,
    "engine/full-suite/parallel-cold": 10.4,
    "engine/profile-store/load": 0.0021
  }
}
"#;

    #[test]
    fn parses_shim_output_shape() {
        let snap = parse(SAMPLE).unwrap();
        assert_eq!(snap.area, "engine");
        assert_eq!(snap.benches.len(), 3);
        assert_eq!(snap.median_of("engine/full-suite/serial-cold"), Some(10.66));
        assert_eq!(snap.median_of("engine/profile-store/load"), Some(0.0021));
        assert_eq!(snap.median_of("nope"), None);
    }

    #[test]
    fn parses_empty_benches_and_escapes() {
        let snap = parse(r#"{"area":"a\"b\\c","schema":1,"benches":{}}"#).unwrap();
        assert_eq!(snap.area, "a\"b\\c");
        assert!(snap.benches.is_empty());
        let snap = parse(r#"{"schema":1,"benches":{"x":1e-7},"area":"s"}"#).unwrap();
        assert_eq!(snap.median_of("x"), Some(1e-7));
    }

    #[test]
    fn rejects_malformed_snapshots() {
        for bad in [
            "",
            "{",
            "[]",
            r#"{"area":"x","schema":2,"benches":{}}"#,
            r#"{"area":"x","benches":{}}"#,
            r#"{"area":"x","schema":1}"#,
            r#"{"area":"x","schema":1,"benches":{}} trailing"#,
            r#"{"area":"x","schema":1,"benches":{"id":"nan"}}"#,
            r#"{"area":"x","schema":1,"benches":{"id":-1}}"#,
            r#"{"area":"x","schema":1,"extra":0,"benches":{}}"#,
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    fn snap(pairs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            area: "t".into(),
            benches: pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        }
    }

    #[test]
    fn flags_regressions_and_passes_band() {
        let base = snap(&[("a", 1.0), ("b", 1.0), ("c", 1.0)]);
        let cur = snap(&[("a", 1.10), ("b", 2.0), ("c", 0.5)]);
        let rows = compare(&base, &cur, Tolerance::default());
        assert_eq!(rows[0].verdict, Verdict::Ok); // +10% inside the band
        assert_eq!(rows[1].verdict, Verdict::Regression); // 2x slower
        assert_eq!(rows[2].verdict, Verdict::Improvement);
        assert_eq!(failures(&rows), 1);
        assert_eq!(rows[1].ratio(), Some(2.0));
    }

    #[test]
    fn missing_fails_and_new_informs() {
        let base = snap(&[("a", 1.0), ("gone", 1.0)]);
        let cur = snap(&[("a", 1.0), ("fresh", 1.0)]);
        let rows = compare(&base, &cur, Tolerance::default());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].verdict, Verdict::Missing);
        assert_eq!(rows[2].verdict, Verdict::New);
        assert_eq!(rows[2].id, "fresh");
        assert_eq!(failures(&rows), 1);
    }

    #[test]
    fn noise_floor_protects_tiny_benches() {
        // 3x slower but only 60ns absolute: stays Ok under the default
        // 100us floor.
        let base = snap(&[("tiny", 30e-9)]);
        let cur = snap(&[("tiny", 90e-9)]);
        let rows = compare(&base, &cur, Tolerance::default());
        assert_eq!(rows[0].verdict, Verdict::Ok);
        // The same ratio above the floor fails.
        let rows = compare(
            &snap(&[("big", 0.1)]),
            &snap(&[("big", 0.3)]),
            Tolerance::default(),
        );
        assert_eq!(rows[0].verdict, Verdict::Regression);
    }
}
