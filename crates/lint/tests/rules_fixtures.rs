//! Rule tests against seeded-bad fixture workspaces, plus the self-check
//! that keeps the live workspace clean.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace laid out
//! like the real one (`crates/<name>/src/…`), scanned from its own root.
//! The real scan never sees them: `Workspace::scan` skips `fixtures`
//! directories.

use std::path::PathBuf;

use cactus_lint::{run_all, Finding, Workspace};

fn fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let ws = Workspace::scan(&root).expect("fixture scans");
    run_all(&ws)
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn no_panic_fires_on_each_shape_with_file_and_line() {
    let findings = fixture("ws_no_panic");
    let hits = by_rule(&findings, "no_panic");
    // The batched simulator file is in scope by path (the gpu crate as a
    // whole is not a daemon crate)…
    assert!(
        hits.iter()
            .any(|f| f.file == "crates/gpu/src/cache/sim.rs" && f.line == 5),
        "daemon-file unwrap missed: {findings:?}"
    );
    // …while gpu files off the cold-simulate path stay exempt.
    assert!(
        hits.iter().all(|f| f.file != "crates/gpu/src/occupancy.rs"),
        "off-path gpu file wrongly in scope: {findings:?}"
    );
    let hits: Vec<_> = hits
        .into_iter()
        .filter(|f| f.file == "crates/serve/src/main.rs")
        .collect();
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    // unwrap, expect, panic!, literal index, allow-without-reason.
    assert_eq!(lines, vec![4, 8, 12, 16, 25], "findings: {findings:?}");
    assert!(
        hits[0].message.contains("unwrap"),
        "message names the shape: {}",
        hits[0].message
    );
    assert!(
        hits[4].message.contains("must give a reason"),
        "reasonless allow is its own finding: {}",
        hits[4].message
    );
    // The annotated unwrap (line 21), the variable index (line 29), and
    // the #[cfg(test)] unwrap produced nothing.
    assert!(!lines.contains(&21) && !lines.contains(&29));
}

#[test]
fn lock_cycle_is_reported_with_both_sites() {
    let findings = fixture("ws_lock_cycle");
    let hits = by_rule(&findings, "lock_order");
    assert_eq!(hits.len(), 1, "exactly one AB/BA cycle: {findings:?}");
    let f = hits[0];
    assert_eq!(f.file, "crates/gateway/src/lib.rs");
    assert!(
        f.message.contains("gateway.alpha") && f.message.contains("gateway.beta"),
        "cycle names both locks: {}",
        f.message
    );
    assert!(
        f.message.matches("crates/gateway/src/lib.rs:").count() >= 2,
        "cycle lists a file:line per edge: {}",
        f.message
    );
    // The drop()-separated sequential function contributed no edge, so
    // there is no second cycle.
    assert!(findings.iter().all(|f| f.rule == "lock_order"));
}

#[test]
fn duplicate_and_malformed_metric_names_fire() {
    let findings = fixture("ws_dup_metric");
    let hits = by_rule(&findings, "names");
    assert_eq!(hits.len(), 3, "dup + unsuffixed + unprefixed: {findings:?}");
    assert_eq!(hits[0].line, 6);
    assert!(
        hits[0].message.contains("already registered")
            && hits[0].message.contains("crates/serve/src/metrics.rs:5"),
        "duplicate points at the first site: {}",
        hits[0].message
    );
    assert_eq!(hits[1].line, 7);
    assert!(hits[1].message.contains("_total"), "{}", hits[1].message);
    assert_eq!(hits[2].line, 8);
    assert!(
        hits[2].message.contains("cactus_"),
        "prefix violation named: {}",
        hits[2].message
    );
}

#[test]
fn client_route_drift_fires_and_valid_paths_pass() {
    let findings = fixture("ws_route_drift");
    let hits = by_rule(&findings, "surface");
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![7, 8], "typo + unserved endpoint: {findings:?}");
    for f in &hits {
        assert_eq!(f.file, "crates/serve/src/client.rs");
    }
    assert!(
        hits[0].message.contains("/v1/workload"),
        "{}",
        hits[0].message
    );
    assert!(
        hits[1].message.contains("/v1/roofline"),
        "endpoint outside TRIPLE_ENDPOINTS: {}",
        hits[1].message
    );
}

#[test]
fn rogue_span_name_fires() {
    let findings = fixture("ws_span");
    let hits = by_rule(&findings, "surface");
    assert_eq!(hits.len(), 1, "one rogue span: {findings:?}");
    assert_eq!(hits[0].file, "crates/serve/src/server.rs");
    assert_eq!(hits[0].line, 5);
    assert!(
        hits[0].message.contains("serve.rogue") && hits[0].message.contains("SPAN_NAMES"),
        "{}",
        hits[0].message
    );
}

/// The live workspace must stay clean: this is the same check CI runs via
/// `cargo run -p cactus-lint`, kept here so `cargo test` alone catches
/// regressions.
#[test]
fn live_workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::scan(&root).expect("workspace scans");
    assert!(
        ws.files
            .iter()
            .any(|f| f.rel == "crates/serve/src/routes.rs"),
        "sanity: the scan saw the serving tier"
    );
    let findings = run_all(&ws);
    assert!(
        findings.is_empty(),
        "live workspace must lint clean:\n{}",
        cactus_lint::report::render_text(&findings)
    );
}
