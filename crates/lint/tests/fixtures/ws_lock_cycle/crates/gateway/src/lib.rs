//! Seeded-bad fixture: two functions nest the same pair of locks in
//! opposite orders — the classic AB/BA deadlock.

use std::sync::Mutex;

pub struct Shards {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Shards {
    pub fn alpha_then_beta(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn beta_then_alpha(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }

    pub fn sequential_is_fine(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let first = *a;
        drop(a);
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        first + *b
    }
}
