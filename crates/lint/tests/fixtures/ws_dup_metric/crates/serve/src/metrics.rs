//! Seeded-bad fixture: duplicate, badly-suffixed, and badly-prefixed
//! metric registrations.

pub fn register(registry: &Registry) {
    let _first = registry.counter("cactus_serve_requests_total", "requests");
    let _duplicate = registry.counter("cactus_serve_requests_total", "requests again");
    let _unsuffixed = registry.counter("cactus_serve_oops", "counter without _total");
    let _unprefixed = registry.gauge("serve_depth", "gauge outside the cactus_ namespace");
    let _interpolated = registry.gauge(&format!("cactus_serve_shard_{i}_depth"), "per-shard");
}
