//! Seeded-bad fixture: a client that consumes one misspelled route and
//! one endpoint the routes file does not serve.

pub fn fetch() -> [&'static str; 4] {
    let ok_exact = "/v1/healthz";
    let ok_triple = "/v1/profile/rtx-3080/tiny/GMS";
    let typo = "/v1/workload";
    let unserved_endpoint = "/v1/roofline/rtx-3080/tiny/GMS";
    [ok_exact, ok_triple, typo, unserved_endpoint]
}
