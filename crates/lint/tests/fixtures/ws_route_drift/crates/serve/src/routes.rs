//! Fixture served surface: two exact routes plus a two-endpoint triple
//! family.

pub const TRIPLE_ENDPOINTS: [&str; 2] = ["profile", "kernels"];

pub fn respond(path: &str) -> &'static str {
    match path {
        "/v1/healthz" => "ok",
        "/v1/workloads" => "csv",
        _ => "404",
    }
}
