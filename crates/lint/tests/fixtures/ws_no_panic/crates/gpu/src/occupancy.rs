//! Control fixture: `gpu` files off the cold-simulate path may still
//! panic — only the DAEMON_FILES list is in scope.

fn off_daemon_path(v: Option<u32>) -> u32 {
    v.unwrap()
}
