//! Seeded-bad fixture: the batched cache simulator is a daemon file even
//! though the `gpu` crate as a whole is not a daemon crate.

fn replay(v: Option<u32>) -> u32 {
    v.unwrap()
}
