//! Seeded-bad fixture: every no_panic shape on a daemon path.

fn unannotated(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn expected(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn exploding() -> u32 {
    panic!("boom")
}

fn literal_index(xs: &[u32]) -> u32 {
    xs[0]
}

fn allowed(v: Option<u32>) -> u32 {
    // lint:allow(no_panic, fixture exercises the escape hatch)
    v.unwrap()
}

fn allow_without_reason(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(no_panic)
}

fn variable_index_is_fine(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
