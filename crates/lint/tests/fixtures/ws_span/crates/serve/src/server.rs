//! Seeded-bad fixture: one registered span name and one rogue one.

pub fn handle(ctx: &Ctx) {
    let _request = ctx.child("serve.request");
    let _rogue = ctx.child("serve.rogue");
}
