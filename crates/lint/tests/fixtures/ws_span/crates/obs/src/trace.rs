//! Fixture span registry.

pub const SPAN_NAMES: &[&str] = &["serve.request", "serve.cache"];
