//! Property tests over the lint lexer.
//!
//! The lexer runs on every `.rs` file in the workspace, including
//! malformed ones mid-edit, so its contract is totality: on *arbitrary*
//! input it must not panic, and its tokens must tile the input exactly —
//! `token.start`/`token.end` spans are adjacent, cover every byte, and
//! `text()` concatenates back to the original source. Line numbers must
//! equal `1 +` the newlines before the token, since findings report them.

use cactus_lint::lexer::lex;
use proptest::prelude::*;

/// Characters chosen to stress the tricky lexer states: string and char
/// delimiters, raw-string sigils, comment openers/closers, escapes, and
/// a multi-byte character to exercise UTF-8 boundaries.
const TRICKY: &[&str] = &[
    "\"", "'", "r", "b", "#", "\\", "/", "*", "{", "}", "[", "]", "(", ")", "0", "9", "x", "_",
    " ", "\n", "\t", ".", ";", ":", "!", "a", "Z", "λ", "→",
];

/// Larger fragments that open (and sometimes fail to close) nested
/// constructs: unterminated strings, raw strings with mismatched hash
/// counts, nested block comments, byte literals.
const FRAGMENTS: &[&str] = &[
    "r#\"raw\"#",
    "r#\"unterminated",
    "br##\"bytes\"##",
    "b'\\n'",
    "'\\''",
    "'a",
    "'static",
    "/* nested /* block */",
    "*/",
    "// line comment\n",
    "\"str with \\\" escape\"",
    "\"unterminated",
    "0x1f_u32",
    "let x = v[0];",
    "ident_0",
];

fn soup(
    pieces: &'static [&'static str],
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..pieces.len(), len)
        .prop_map(move |idxs| idxs.into_iter().map(|i| pieces[i]).collect())
}

fn check_tiling(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        if t.start != pos {
            return Err(format!(
                "gap: token starts at {} but previous ended at {pos}",
                t.start
            ));
        }
        if t.end <= t.start {
            return Err(format!("empty or reversed span {}..{}", t.start, t.end));
        }
        let expected_line = 1 + src
            .get(..t.start)
            .map_or(0, |prefix| prefix.bytes().filter(|&b| b == b'\n').count());
        if t.line as usize != expected_line {
            return Err(format!(
                "token at {} reports line {} but {expected_line} newlines-derived",
                t.start, t.line
            ));
        }
        pos = t.end;
    }
    if pos != src.len() {
        return Err(format!("coverage stops at {pos} of {}", src.len()));
    }
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    if rebuilt != src {
        return Err("text() concatenation differs from the input".to_owned());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn character_soup_never_panics_and_tiles(s in soup(TRICKY, 0..120)) {
        if let Err(msg) = check_tiling(&s) {
            prop_assert!(false, "{msg} on input {s:?}");
        }
    }

    #[test]
    fn fragment_soup_never_panics_and_tiles(s in soup(FRAGMENTS, 0..40)) {
        if let Err(msg) = check_tiling(&s) {
            prop_assert!(false, "{msg} on input {s:?}");
        }
    }
}

#[test]
fn empty_and_whitespace_only_inputs() {
    for src in ["", " ", "\n\n", "\t", "\u{feff}"] {
        assert!(check_tiling(src).is_ok(), "tiling failed on {src:?}");
    }
}
