//! Findings and the two output formats of the `cactus-lint` binary.
//!
//! `text` is the human format (`file:line: [rule] message`, one per line);
//! `json` is a stable machine format for CI, hand-rolled so the crate
//! stays dependency-free.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family: `no_panic`, `lock_order`, `surface`, or `names`.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token (or the first site of a cycle).
    pub line: u32,
    pub message: String,
}

impl Finding {
    #[must_use]
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Self {
            rule,
            file: file.to_owned(),
            line,
            message,
        }
    }
}

/// Sort findings for deterministic output: by file, line, rule, message.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// Render findings in the human format, one per line, with a summary tail.
#[must_use]
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str("cactus-lint: no findings\n");
    } else {
        out.push_str(&format!("cactus-lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Render findings as a JSON document:
/// `{"findings":[{"rule":…,"file":…,"line":…,"message":…}],"count":N}`.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}\n", findings.len()));
    out
}

/// Escape a string per JSON rules.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_file_line_rule_message() {
        let f = vec![Finding::new(
            "no_panic",
            "crates/serve/src/x.rs",
            7,
            "unwrap".into(),
        )];
        let text = render_text(&f);
        assert!(text.contains("crates/serve/src/x.rs:7: [no_panic] unwrap"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = vec![Finding::new(
            "names",
            "a.rs",
            1,
            "dup \"x\"\npath\\here".into(),
        )];
        let json = render_json(&f);
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\\\here"));
        assert!(json.contains("\"count\":1"));
    }

    /// Pin the full JSON document for a hostile message byte for byte.
    /// `json_str` already escaped correctly when this was written; this
    /// exact-output regression exists so any future change to the escape
    /// table (or a switch to a shared helper) that breaks `--format json`
    /// for quotes, backslashes, or control characters fails loudly here
    /// instead of producing unparseable CI output.
    #[test]
    fn json_document_with_hostile_message_is_exactly_escaped() {
        let f = vec![Finding::new(
            "surface",
            "crates/a b/src/x.rs",
            3,
            "quote \" backslash \\ newline \n tab \t cr \r esc \u{1b} done".into(),
        )];
        assert_eq!(
            render_json(&f),
            "{\"findings\":[{\"rule\":\"surface\",\"file\":\"crates/a b/src/x.rs\",\
             \"line\":3,\"message\":\"quote \\\" backslash \\\\ newline \\n tab \\t \
             cr \\r esc \\u001b done\"}],\"count\":1}\n"
        );
        // And the empty document stays a constant.
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}\n");
    }

    #[test]
    fn sort_is_stable_by_file_then_line() {
        let mut f = vec![
            Finding::new("names", "b.rs", 2, "m".into()),
            Finding::new("names", "a.rs", 9, "m".into()),
            Finding::new("names", "a.rs", 3, "m".into()),
        ];
        sort(&mut f);
        assert_eq!(
            f.iter()
                .map(|x| (x.file.as_str(), x.line))
                .collect::<Vec<_>>(),
            vec![("a.rs", 3), ("a.rs", 9), ("b.rs", 2)]
        );
    }
}
