//! The `cactus-lint` binary: scan a workspace, run every rule family,
//! render findings, and exit nonzero if any survive.
//!
//! ```text
//! cactus-lint [--root PATH] [--format text|json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cactus_lint::{report, run_all, Workspace};

struct Args {
    root: PathBuf,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--root requires a path".to_owned())?,
                );
            }
            "--format" => {
                let fmt = argv
                    .next()
                    .ok_or_else(|| "--format requires text or json".to_owned())?;
                json = match fmt.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format {other:?}; use text or json")),
                };
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { root, json })
}

const USAGE: &str = "usage: cactus-lint [--root PATH] [--format text|json]\n\n\
Static analysis for the Cactus serving stack: no-panic daemon paths,\n\
lock-order cycles, /v1 surface consistency, metric/span name hygiene.";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("cactus-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::scan(&args.root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("cactus-lint: scanning {}: {err}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let findings = run_all(&ws);
    if args.json {
        print!("{}", report::render_json(&findings));
    } else {
        print!("{}", report::render_text(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
