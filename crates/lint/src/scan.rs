//! Workspace scanning: find the `.rs` files, lex them, and annotate each
//! with the facts every rule needs — which byte ranges are `#[cfg(test)]`
//! items, whether the file lives in a test/bench/example tree, and where
//! the `// lint:allow(rule, reason)` escape hatches are.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// Outcome of checking a finding against the allow comments around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Allow {
    /// No allow comment applies; report the finding.
    No,
    /// `// lint:allow(rule, reason)` with a non-empty reason covers it.
    Granted,
    /// An allow comment names the rule but gives no reason — itself a
    /// finding (the escape hatch requires justification).
    MissingReason,
}

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
struct AllowComment {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// One lexed source file plus the derived context rules share.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path (for reading); findings report `rel`.
    pub path: PathBuf,
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// `crates/<name>/…` → `<name>`; otherwise the first path component
    /// (`tests`, `examples`).
    pub crate_name: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte ranges of `#[cfg(test)]` items (attribute through closing
    /// brace or semicolon).
    pub test_regions: Vec<(usize, usize)>,
    /// Lives under a `tests/`, `benches/`, or `examples/` directory.
    pub in_test_dir: bool,
    allows: Vec<AllowComment>,
}

impl SourceFile {
    fn from_text(path: PathBuf, rel: String, text: String) -> Self {
        let tokens = lex(&text);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or_else(|| rel.split('/').next().unwrap_or(""))
            .to_owned();
        let in_test_dir = rel
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let test_regions = find_test_regions(&text, &tokens);
        let allows = find_allows(&text, &tokens);
        Self {
            path,
            rel,
            crate_name,
            text,
            tokens,
            test_regions,
            in_test_dir,
            allows,
        }
    }

    /// Whether byte `offset` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// Check the allow comments for `rule` on `line` or the line above it.
    #[must_use]
    pub fn allow(&self, rule: &str, line: u32) -> Allow {
        let mut verdict = Allow::No;
        for a in &self.allows {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                if a.has_reason {
                    return Allow::Granted;
                }
                verdict = Allow::MissingReason;
            }
        }
        verdict
    }

    /// The non-trivia tokens, for rules that walk token shapes.
    #[must_use]
    pub fn significant(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_trivia()).collect()
    }
}

/// All scanned files under one root.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

/// Directories never scanned: build output, vendored shims (not our code),
/// lint fixtures (deliberately bad), VCS internals.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

impl Workspace {
    /// Scan every `.rs` file under `root`, skipping [`SKIP_DIRS`] and
    /// hidden directories. Files are sorted by relative path so findings
    /// are deterministic.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures; unreadable or non-UTF-8 files
    /// are skipped rather than failing the whole scan.
    pub fn scan(root: &Path) -> io::Result<Self> {
        let mut paths = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for path in paths {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::from_text(path, rel, text));
        }
        Ok(Self {
            root: root.to_path_buf(),
            files,
        })
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find `#[cfg(test)]` attributes and extend each over the item it gates
/// (through any stacked attributes, to the matching close brace or the
/// terminating semicolon).
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if is_cfg_test_attr(text, &sig, i) {
            let start = sig[i].start;
            // Skip to the `]` closing this attribute.
            let mut j = skip_attr(text, &sig, i);
            // Skip any further stacked attributes.
            while j < sig.len() && sig[j].text(text) == "#" {
                j = skip_attr(text, &sig, j);
            }
            // The item body: first `{` at bracket depth 0 opens a
            // brace-matched region; a `;` at depth 0 ends a braceless item.
            let mut depth_paren = 0i32;
            let mut end = text.len();
            while j < sig.len() {
                match sig[j].text(text) {
                    "(" | "[" => depth_paren += 1,
                    ")" | "]" => depth_paren -= 1,
                    "{" if depth_paren == 0 => {
                        end = match_brace(text, &sig, j);
                        break;
                    }
                    ";" if depth_paren == 0 => {
                        end = sig[j].end;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((start, end));
            i = j;
        }
        i += 1;
    }
    regions
}

/// Does `#` at significant-token index `i` open a `#[cfg(test)]`-style
/// attribute (any attribute whose bracket group contains `cfg` … `test`)?
fn is_cfg_test_attr(text: &str, sig: &[&Token], i: usize) -> bool {
    if sig.get(i).is_none_or(|t| t.text(text) != "#") {
        return false;
    }
    if sig.get(i + 1).is_none_or(|t| t.text(text) != "[") {
        return false;
    }
    let mut saw_cfg = false;
    let mut depth = 0i32;
    for t in sig.iter().skip(i + 1) {
        match t.text(text) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "cfg" => saw_cfg = true,
            // `#[cfg(not(test))]` gates *non*-test code.
            "not" => return false,
            "test" if saw_cfg => return true,
            _ => {}
        }
    }
    false
}

/// Index just past the `]` closing the attribute whose `#` is at `i`.
fn skip_attr(text: &str, sig: &[&Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < sig.len() {
        match sig[j].text(text) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Byte offset past the `}` matching the `{` at significant index `open`.
fn match_brace(text: &str, sig: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for t in sig.iter().skip(open) {
        match t.text(text) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return t.end;
                }
            }
            _ => {}
        }
    }
    text.len()
}

/// Parse every `lint:allow(rule, reason)` comment in the file.
fn find_allows(text: &str, tokens: &[Token]) -> Vec<AllowComment> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let comment = t.text(text);
        let Some(at) = comment.find("lint:allow(") else {
            continue;
        };
        let inside = &comment[at + "lint:allow(".len()..];
        let inside = inside.rfind(')').map_or(inside, |p| &inside[..p]);
        let (rule, reason) = match inside.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inside.trim(), ""),
        };
        if rule.is_empty() {
            continue;
        }
        out.push(AllowComment {
            line: t.line,
            rule: rule.to_owned(),
            has_reason: !reason.is_empty(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_text(
            PathBuf::from("mem.rs"),
            "crates/x/src/mem.rs".into(),
            src.into(),
        )
    }

    #[test]
    fn cfg_test_region_covers_the_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = file(src);
        assert_eq!(f.test_regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        assert!(f.in_test_region(unwrap_at));
        assert!(!f.in_test_region(src.find("live").unwrap_or(0)));
        assert!(!f.in_test_region(src.find("after").unwrap_or(0)));
    }

    #[test]
    fn cfg_all_test_counts_too() {
        let src = "#[cfg(all(test, unix))]\nmod t { }\nfn live() {}\n";
        let f = file(src);
        assert_eq!(f.test_regions.len(), 1);
        assert!(!f.in_test_region(src.find("live").unwrap_or(0)));
    }

    #[test]
    fn allow_with_reason_is_granted_on_same_and_next_line() {
        let src = "// lint:allow(no_panic, constant fits)\nlet x = y.unwrap();\n";
        let f = file(src);
        assert_eq!(f.allow("no_panic", 2), Allow::Granted);
        assert_eq!(f.allow("no_panic", 1), Allow::Granted);
        assert_eq!(f.allow("no_panic", 3), Allow::No);
        assert_eq!(f.allow("lock_order", 2), Allow::No);
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "let x = y.unwrap(); // lint:allow(no_panic)\n";
        let f = file(src);
        assert_eq!(f.allow("no_panic", 1), Allow::MissingReason);
    }

    #[test]
    fn crate_name_and_test_dir_derivation() {
        let f = SourceFile::from_text(
            PathBuf::from("x.rs"),
            "crates/serve/tests/integration.rs".into(),
            String::new(),
        );
        assert_eq!(f.crate_name, "serve");
        assert!(f.in_test_dir);
        let g = SourceFile::from_text(PathBuf::from("y.rs"), "tests/e2e.rs".into(), String::new());
        assert_eq!(g.crate_name, "tests");
        assert!(g.in_test_dir);
    }
}
