//! Rule `names`: metric-name hygiene across the workspace.
//!
//! Every `registry.counter(…)`, `.gauge(…)`, and `.histogram(…)`
//! registration in non-test code is collected — the name is either a
//! string literal or the literal inside `&format!("…")`, with `{i}`
//! interpolations normalized to a wildcard. Checks:
//!
//! * names match `^cactus_[a-z0-9_]+$` (snake_case under one namespace,
//!   so dashboards can glob `cactus_*`);
//! * counter names end in `_total` (the monotonic-counter convention;
//!   gauges MAY use `_total` when they mirror an upstream counter);
//! * each normalized name is registered at exactly one site workspace-wide
//!   — two registrations of one name silently share (or clobber) a series.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::rules::{gated, live_tokens, unquote};
use crate::scan::Workspace;

const RULE: &str = "names";

const KINDS: &[&str] = &["counter", "gauge", "histogram"];

#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    // normalized name -> first registration site (file, line).
    let mut seen: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for f in ws.files.iter().filter(|f| !f.in_test_dir) {
        let sig = live_tokens(f);
        let text = f.text.as_str();
        for i in 0..sig.len() {
            if sig[i].text(text) != "." {
                continue;
            }
            let Some(kind) = sig
                .get(i + 1)
                .map(|t| t.text(text))
                .filter(|k| KINDS.contains(k))
            else {
                continue;
            };
            if sig.get(i + 2).is_none_or(|t| t.text(text) != "(") {
                continue;
            }
            // First argument: `"name"` or `&format!("name_{i}")`.
            let lit = if sig
                .get(i + 3)
                .is_some_and(|t| matches!(t.kind, TokenKind::Str))
            {
                Some(sig[i + 3])
            } else if sig.get(i + 3).is_some_and(|t| t.text(text) == "&")
                && sig.get(i + 4).is_some_and(|t| t.text(text) == "format")
                && sig.get(i + 5).is_some_and(|t| t.text(text) == "!")
                && sig.get(i + 6).is_some_and(|t| t.text(text) == "(")
                && sig
                    .get(i + 7)
                    .is_some_and(|t| matches!(t.kind, TokenKind::Str))
            {
                Some(sig[i + 7])
            } else {
                None
            };
            let Some(lit) = lit else { continue };
            let raw = unquote(lit.text(text));
            let name = normalize(raw);

            if !well_formed(&name) {
                findings.extend(gated(
                    f,
                    RULE,
                    lit.line,
                    format!("metric name {raw:?} does not match ^cactus_[a-z0-9_]+$"),
                ));
            }
            if kind == "counter" && !name.ends_with("_total") {
                findings.extend(gated(
                    f,
                    RULE,
                    lit.line,
                    format!("counter {raw:?} must end in _total (monotonic-counter convention)"),
                ));
            }
            if let Some((first_file, first_line)) = seen.get(&name) {
                findings.extend(gated(
                    f,
                    RULE,
                    lit.line,
                    format!(
                        "metric name {raw:?} is already registered at {first_file}:{first_line}; \
                         metric names must be unique workspace-wide"
                    ),
                ));
            } else {
                seen.insert(name, (f.rel.clone(), lit.line));
            }
        }
    }
    findings
}

/// Replace each `{…}` interpolation with the wildcard `*`, so
/// `cactus_gateway_backend_{i}_state` compares as one family.
fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut depth = 0usize;
    for c in raw.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// `cactus_` prefix, then lowercase snake_case (the `*` wildcard stands
/// for an interpolated index).
fn well_formed(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("cactus_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '*')
}
