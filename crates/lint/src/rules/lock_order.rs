//! Rule `lock_order`: the static half of deadlock detection.
//!
//! Every `.lock()`, `.read()`, and `.write()` call with no arguments is
//! treated as a lock acquisition. The lock's identity is
//! `<crate>.<receiver-segment>` — the last field or binding name in the
//! receiver chain (`self.idle[k].lock()` → `gateway.idle`) — which is
//! stable across call sites because the stack names its lock fields
//! uniquely per crate.
//!
//! Guard lifetimes are inferred from brace scopes: a `let`-bound guard
//! lives until its enclosing block closes or an explicit `drop(guard)`;
//! a guard that is not bound (`self.m.lock().push(x)`) dies at the end of
//! its statement and never nests. Acquiring lock B while a guard of lock
//! A is live adds the edge `A → B` to a workspace-wide graph; a cycle in
//! that graph is an ordering that can deadlock under the right
//! interleaving, and is reported with the `file:line` of each edge.
//!
//! The runtime counterpart is `cactus_obs::lock::RankedMutex`, which
//! panics deterministically on the first out-of-rank acquisition.

use std::collections::BTreeMap;

use crate::lexer::Token;
use crate::report::Finding;
use crate::rules::live_tokens;
use crate::scan::{SourceFile, Workspace};

const RULE: &str = "lock_order";

/// One observed nesting: while a guard of `from` was live, `to` was
/// acquired at `file:line`.
#[derive(Debug, Clone)]
struct Edge {
    to: String,
    file: String,
    line: u32,
}

#[derive(Debug)]
struct LiveGuard {
    binding: String,
    lock: String,
    depth: i32,
}

/// Run the rule: extract edges per file, then find cycles globally.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut graph: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
    for f in ws.files.iter().filter(|f| !f.in_test_dir) {
        collect_edges(f, &mut graph);
    }
    find_cycles(&graph)
}

fn collect_edges(f: &SourceFile, graph: &mut BTreeMap<String, Vec<Edge>>) {
    let sig = live_tokens(f);
    let text = f.text.as_str();
    let mut depth = 0i32;
    let mut live: Vec<LiveGuard> = Vec::new();
    // The binding name of an in-flight `let`, consumed by the next
    // acquisition in the statement.
    let mut pending_let: Option<String> = None;

    let mut i = 0usize;
    while i < sig.len() {
        match sig[i].text(text) {
            "{" => {
                depth += 1;
                pending_let = None;
            }
            "}" => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            ";" => pending_let = None,
            "let" => {
                // `let [mut] name = …` — tuple/struct patterns fall back to
                // their first ident, which is close enough for drop-tracking.
                let mut j = i + 1;
                while sig.get(j).is_some_and(|t| t.text(text) == "mut") {
                    j += 1;
                }
                if let Some(t) = sig.get(j) {
                    if matches!(t.kind, crate::lexer::TokenKind::Ident) {
                        pending_let = Some(t.text(text).to_owned());
                    }
                }
            }
            // `drop(guard)` releases early.
            "drop"
                if sig.get(i + 1).is_some_and(|t| t.text(text) == "(")
                    && sig.get(i + 3).is_some_and(|t| t.text(text) == ")") =>
            {
                let name = sig.get(i + 2).map(|t| t.text(text));
                live.retain(|g| Some(g.binding.as_str()) != name);
            }
            "." => {
                if let Some(lock) = acquisition_at(&sig, text, i, &f.crate_name) {
                    for g in &live {
                        if g.lock == lock {
                            continue;
                        }
                        // First site per (from, to) pair; parallel edges
                        // add nothing to cycle detection.
                        let edges = graph.entry(g.lock.clone()).or_default();
                        if !edges.iter().any(|e| e.to == lock) {
                            edges.push(Edge {
                                to: lock.clone(),
                                file: f.rel.clone(),
                                line: sig[i].line,
                            });
                        }
                    }
                    if let Some(binding) = pending_let.take() {
                        live.push(LiveGuard {
                            binding,
                            lock,
                            depth,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the `.` at `i` starts `.lock()`/`.read()`/`.write()`, resolve the
/// receiver's last segment into a lock id.
fn acquisition_at(sig: &[&Token], text: &str, i: usize, crate_name: &str) -> Option<String> {
    let method = sig.get(i + 1)?.text(text);
    if !matches!(method, "lock" | "read" | "write") {
        return None;
    }
    if sig.get(i + 2)?.text(text) != "(" || sig.get(i + 3)?.text(text) != ")" {
        return None;
    }
    let segment = receiver_segment(sig, text, i)?;
    Some(format!("{crate_name}.{segment}"))
}

/// Walk back from the `.` at `i` to the last named segment of the
/// receiver: `self.idle[k]` → `idle`, `slot.result` → `result`,
/// `rx` → `rx`, `pool().stats` → `stats`.
fn receiver_segment(sig: &[&Token], text: &str, i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?;
    // Skip one trailing index/call group, e.g. the `[k]` of `idle[k]`.
    loop {
        match sig.get(j)?.text(text) {
            "]" => j = match_open(sig, text, j, "[", "]")?.checked_sub(1)?,
            ")" => j = match_open(sig, text, j, "(", ")")?.checked_sub(1)?,
            _ => break,
        }
    }
    let t = sig.get(j)?;
    if matches!(t.kind, crate::lexer::TokenKind::Ident) {
        Some(t.text(text).to_owned())
    } else {
        None
    }
}

/// Index of the `open` matching the `close` at `j`, scanning backward.
fn match_open(sig: &[&Token], text: &str, j: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = j;
    loop {
        let t = sig.get(k)?.text(text);
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// DFS over the lock graph; every cycle becomes one finding anchored at
/// its first edge's site and spelling out the full path.
fn find_cycles(graph: &BTreeMap<String, Vec<Edge>>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: Vec<Vec<String>> = Vec::new();
    for start in graph.keys() {
        let mut path: Vec<(String, Option<Edge>)> = vec![(start.clone(), None)];
        dfs(graph, &mut path, &mut reported, &mut findings);
    }
    findings
}

fn dfs(
    graph: &BTreeMap<String, Vec<Edge>>,
    path: &mut Vec<(String, Option<Edge>)>,
    reported: &mut Vec<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    // The lock graph is tiny (one node per lock field); depth is bounded
    // by the node count, so plain recursion is safe.
    let Some((current, _)) = path.last() else {
        return;
    };
    let current = current.clone();
    for edge in graph.get(&current).into_iter().flatten() {
        if let Some(pos) = path.iter().position(|(n, _)| *n == edge.to) {
            // Cycle: path[pos..] plus this closing edge.
            let mut nodes: Vec<String> = path[pos..].iter().map(|(n, _)| n.clone()).collect();
            nodes.push(edge.to.clone());
            let mut canon = nodes.clone();
            canon.sort();
            canon.dedup();
            if reported.contains(&canon) {
                continue;
            }
            reported.push(canon);
            let mut msg = String::from("lock-order cycle: ");
            for (k, (node, via)) in path[pos..].iter().enumerate() {
                if k > 0 {
                    if let Some(e) = via {
                        msg.push_str(&format!(" -> {node} ({}:{})", e.file, e.line));
                        continue;
                    }
                }
                if k > 0 {
                    msg.push_str(&format!(" -> {node}"));
                } else {
                    msg.push_str(node);
                }
            }
            msg.push_str(&format!(" -> {} ({}:{})", edge.to, edge.file, edge.line));
            msg.push_str("; acquire these locks in one global order (see obs::lock::rank)");
            findings.push(Finding::new(RULE, &edge.file, edge.line, msg));
            continue;
        }
        path.push((edge.to.clone(), Some(edge.clone())));
        dfs(graph, path, reported, findings);
        path.pop();
    }
}
