//! Rule `no_panic`: daemon paths must not contain panic sites.
//!
//! Applies to non-test code in the `serve`, `gateway`, `obs`, and
//! `simindex` crates (the similarity index runs inside serve workers)
//! plus the `gpu` files the daemon's cold-simulate path runs through: the
//! engine pool, the launch engine, and the batched cache simulator/trace
//! generator (every serve cache miss replays traces through them).
//! A panic in any of these unwinds a worker thread and silently shrinks
//! the pool, so fallible paths must return errors instead. Flagged shapes:
//!
//! * `.unwrap()` / `.expect(…)`
//! * `panic!(…)`
//! * indexing with an integer literal (`xs[0]`) — a hidden bounds panic
//!
//! The escape hatch is `// lint:allow(no_panic, reason)` on the same or
//! preceding line; an allow without a reason is itself a finding.

use crate::report::Finding;
use crate::rules::{gated_at, live_tokens, stmt_line};
use crate::scan::{SourceFile, Workspace};

const RULE: &str = "no_panic";

/// Crates whose whole `src/` tree is a daemon path.
const DAEMON_CRATES: &[&str] = &["serve", "gateway", "obs", "simindex", "store", "wir"];

/// Individual `gpu` files on the daemon's cold-simulate path: the engine
/// pool, the launch engine it hands out, and the batched cache
/// simulator/trace generator every cache-miss simulation replays through.
const DAEMON_FILES: &[&str] = &[
    "crates/gpu/src/pool.rs",
    "crates/gpu/src/engine.rs",
    "crates/gpu/src/cache/sim.rs",
    "crates/gpu/src/cache/trace.rs",
];

fn applies(f: &SourceFile) -> bool {
    if f.in_test_dir {
        return false;
    }
    if DAEMON_FILES.contains(&f.rel.as_str()) {
        return true;
    }
    DAEMON_CRATES.contains(&f.crate_name.as_str()) && f.rel.contains("/src/")
}

/// Run the rule over every daemon-path file in the workspace.
#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in ws.files.iter().filter(|f| applies(f)) {
        let sig = live_tokens(f);
        let text = f.text.as_str();
        for i in 0..sig.len() {
            let hit: Option<(u32, String)> = if sig[i].text(text) == "." {
                match sig.get(i + 1).map(|t| t.text(text)) {
                    Some("unwrap")
                        if sig.get(i + 2).is_some_and(|t| t.text(text) == "(")
                            && sig.get(i + 3).is_some_and(|t| t.text(text) == ")") =>
                    {
                        Some((
                            sig[i + 1].line,
                            "`.unwrap()` on a daemon path; return an error (or \
                             lint:allow(no_panic, reason) if provably infallible)"
                                .to_owned(),
                        ))
                    }
                    Some("expect") if sig.get(i + 2).is_some_and(|t| t.text(text) == "(") => {
                        Some((
                            sig[i + 1].line,
                            "`.expect(…)` on a daemon path; return an error (or \
                             lint:allow(no_panic, reason) if provably infallible)"
                                .to_owned(),
                        ))
                    }
                    _ => None,
                }
            } else if sig[i].text(text) == "panic"
                && sig.get(i + 1).is_some_and(|t| t.text(text) == "!")
            {
                Some((
                    sig[i].line,
                    "`panic!` on a daemon path; return an error (or \
                     lint:allow(no_panic, reason) if unreachable by construction)"
                        .to_owned(),
                ))
            } else if is_literal_index(&sig, text, i) {
                Some((
                    sig[i].line,
                    format!(
                        "indexing with literal {} on a daemon path can panic; use \
                         `.get({})` (or lint:allow(no_panic, reason))",
                        sig[i + 1].text(text),
                        sig[i + 1].text(text)
                    ),
                ))
            } else {
                None
            };
            if let Some((line, message)) = hit {
                // The allow comment may sit on the hit line, the line
                // above, or at the head of a rustfmt-wrapped statement.
                findings.extend(gated_at(
                    f,
                    RULE,
                    &[line, stmt_line(&sig, text, i)],
                    message,
                ));
            }
        }
    }
    findings
}

/// `expr[<int>]`: an open bracket preceded by an expression tail (ident,
/// `)`, or `]`) whose bracket group is exactly one integer literal.
fn is_literal_index(sig: &[&crate::lexer::Token], text: &str, i: usize) -> bool {
    if sig[i].text(text) != "[" || i == 0 {
        return false;
    }
    let prev = sig[i - 1];
    let prev_is_expr_tail = matches!(prev.kind, crate::lexer::TokenKind::Ident)
        && !matches!(
            prev.text(text),
            "return" | "break" | "in" | "match" | "if" | "else"
        )
        || matches!(prev.text(text), ")" | "]");
    if !prev_is_expr_tail {
        return false;
    }
    matches!(
        sig.get(i + 1).map(|t| t.kind),
        Some(crate::lexer::TokenKind::Int)
    ) && sig.get(i + 2).is_some_and(|t| t.text(text) == "]")
}
