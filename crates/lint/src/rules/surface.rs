//! Rule `surface`: the versioned HTTP surface and the span registry stay
//! consistent across tiers.
//!
//! **Routes** — the served set is parsed from `crates/serve/src/routes.rs`
//! (exact `/v1/...` literals plus the `TRIPLE_ENDPOINTS` const, which
//! expands to `/v1/<endpoint>/<device>/<scale>/<workload>`) and
//! `crates/gateway/src/server.rs` (the routes the gateway answers
//! locally; everything else it forwards to the same serve surface).
//! Every `/v1` string a client, bin, bench, or test consumes must match:
//! an exact served literal, or a five-segment triple path whose endpoint
//! is in `TRIPLE_ENDPOINTS`. Query strings are ignored and `format!`
//! interpolations (`{device}`) are wildcards.
//!
//! **Spans** — every literal passed to `.child("...")` outside test code
//! must appear in `SPAN_NAMES` in `crates/obs/src/trace.rs`, the one
//! documented registry (its runtime twin is a `debug_assert!` in
//! `SpanCtx::child`).

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::rules::{gated, live_tokens, unquote};
use crate::scan::{SourceFile, Workspace};

const RULE: &str = "surface";

/// Files that *define* the surface; their literals are served, not
/// consumed.
const SERVED_FILES: &[&str] = &["crates/serve/src/routes.rs", "crates/gateway/src/server.rs"];

#[must_use]
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_routes(ws, &mut findings);
    check_spans(ws, &mut findings);
    findings
}

fn check_routes(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut served: BTreeSet<String> = BTreeSet::new();
    let mut endpoints: Vec<String> = Vec::new();
    for f in &ws.files {
        if !SERVED_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        let sig = live_tokens(f);
        let text = f.text.as_str();
        for (i, t) in sig.iter().enumerate() {
            if matches!(t.kind, TokenKind::Str) {
                let lit = unquote(t.text(text));
                if lit.starts_with("/v1") && !lit.contains(' ') {
                    served.insert(lit.to_owned());
                }
            }
            if t.text(text) == "TRIPLE_ENDPOINTS" && endpoints.is_empty() {
                endpoints = const_strings(&sig, text, i);
            }
        }
    }
    if served.is_empty() {
        // No serving tier in this workspace; nothing to cross-check.
        return;
    }

    for f in &ws.files {
        if SERVED_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        if !consumes_routes(f) {
            continue;
        }
        let text = f.text.as_str();
        for t in f.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Str)) {
            let lit = unquote(t.text(text));
            if !lit.starts_with("/v1") || lit.contains(' ') {
                continue;
            }
            let path = lit.split('?').next().unwrap_or(lit);
            if !is_served(path, &served, &endpoints) {
                findings.extend(gated(
                    f,
                    RULE,
                    t.line,
                    format!(
                        "path {lit:?} is not served by serve::routes or gateway::server \
                         (served: exact /v1 literals plus /v1/{{{}}}/<device>/<scale>/<workload>)",
                        endpoints.join("|")
                    ),
                ));
            }
        }
    }
}

/// Consumers of the `/v1` surface: the serving crates themselves (their
/// clients, bins, benches, and tests) and the top-level `tests/` and
/// `examples/` trees. `obs` is excluded — span tags there mention paths
/// without consuming them.
fn consumes_routes(f: &SourceFile) -> bool {
    matches!(
        f.crate_name.as_str(),
        "serve" | "gateway" | "tests" | "examples"
    )
}

/// Does `path` match the served surface?
fn is_served(path: &str, served: &BTreeSet<String>, endpoints: &[String]) -> bool {
    if served.contains(path) {
        return true;
    }
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    if segments.len() == 5 && segments.first() == Some(&"v1") {
        let endpoint = segments.get(1).copied().unwrap_or("");
        return endpoint.contains('{') || endpoints.iter().any(|e| e == endpoint);
    }
    // A non-triple path with interpolated segments may match any served
    // literal of the same shape.
    served.iter().any(|s| wildcard_eq(path, s))
}

/// Segment-wise equality where a `{…}` segment on either side matches
/// anything: consumers interpolate into concrete served paths, and served
/// route templates (`/v1/store/record/{key}`) cover concrete consumed
/// paths.
fn wildcard_eq(consumed: &str, served: &str) -> bool {
    let a: Vec<&str> = consumed.trim_matches('/').split('/').collect();
    let b: Vec<&str> = served.trim_matches('/').split('/').collect();
    a.len() == b.len()
        && a.iter()
            .zip(&b)
            .all(|(ca, cb)| ca == cb || ca.contains('{') || cb.contains('{'))
}

fn check_spans(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut registry: Vec<String> = Vec::new();
    for f in &ws.files {
        if f.rel.ends_with("obs/src/trace.rs") {
            let sig = live_tokens(f);
            let text = f.text.as_str();
            for (i, t) in sig.iter().enumerate() {
                if t.text(text) == "SPAN_NAMES" {
                    registry = const_strings(&sig, text, i);
                    break;
                }
            }
        }
    }
    if registry.is_empty() {
        // No registry in this workspace; nothing to enforce.
        return;
    }
    for f in ws.files.iter().filter(|f| !f.in_test_dir) {
        let sig = live_tokens(f);
        let text = f.text.as_str();
        for i in 0..sig.len() {
            if sig[i].text(text) == "."
                && sig.get(i + 1).is_some_and(|t| t.text(text) == "child")
                && sig.get(i + 2).is_some_and(|t| t.text(text) == "(")
                && sig
                    .get(i + 3)
                    .is_some_and(|t| matches!(t.kind, TokenKind::Str))
            {
                let name = unquote(sig[i + 3].text(text));
                if !registry.iter().any(|r| r == name) {
                    findings.extend(gated(
                        f,
                        RULE,
                        sig[i + 3].line,
                        format!(
                            "span name {name:?} is not in obs::trace::SPAN_NAMES; add it to \
                             the registry or reuse an existing name"
                        ),
                    ));
                }
            }
        }
    }
}

/// The string literals of a `const NAME: … = ["a", "b", …];` item, given
/// the significant-token index of `NAME`. Skips the type ascription
/// (which may itself contain `;`, as in `[&str; 4]`) by scanning to the
/// `=` first; returns empty for a *use* site (`NAME.contains(…)`), so
/// callers retry on the next occurrence.
fn const_strings(sig: &[&crate::lexer::Token], text: &str, name_idx: usize) -> Vec<String> {
    let mut i = name_idx + 1;
    // Find the initializer `=`; a `.` or `(` first means this is a use
    // site, not the definition.
    loop {
        match sig.get(i).map(|t| t.text(text)) {
            Some("=") => break,
            Some("." | "(") | None => return Vec::new(),
            _ => i += 1,
        }
    }
    let mut out = Vec::new();
    for t in sig.iter().skip(i + 1) {
        match t.kind {
            TokenKind::Str => out.push(unquote(t.text(text)).to_owned()),
            TokenKind::Punct if t.text(text) == ";" => break,
            _ => {}
        }
    }
    out
}
