//! `cactus-lint`: workspace static analyzer for the Cactus serving stack.
//!
//! Four rule families run over a lexed (not parsed) view of the workspace:
//!
//! * [`rules::no_panic`] — daemon paths (`serve`, `gateway`, `obs`, and
//!   the `gpu` cold-simulate files: `pool`, `engine`, `cache::sim`,
//!   `cache::trace`) must not `unwrap()`, `expect()`, `panic!`, or index by
//!   integer literal outside `#[cfg(test)]` code. The escape hatch is a
//!   `// lint:allow(no_panic, reason)` comment on the same or preceding
//!   line; the reason is mandatory.
//! * [`rules::lock_order`] — every `.lock()`/`.read()`/`.write()` site is
//!   an acquisition; `let`-bound guards live to the end of their brace
//!   scope (or an explicit `drop(guard)`). Nested acquisitions become
//!   edges in a workspace-wide lock graph, and any cycle — a potential
//!   deadlock — is a finding listing both sites. The runtime counterpart
//!   is [`cactus-obs`'s `RankedMutex`], which panics on rank inversion.
//! * [`rules::surface`] — every `/v1` path a client, bench, bin, or test
//!   consumes must be served by `serve::routes` or `gateway::server`, and
//!   every span name passed to `.child(...)` must come from the
//!   `SPAN_NAMES` registry in `cactus-obs`.
//! * [`rules::names`] — metric registrations are unique workspace-wide,
//!   match `^cactus_[a-z0-9_]+$` (after normalizing `{i}` interpolations),
//!   and counters end in `_total`.
//!
//! The library is dependency-free and never panics on arbitrary input;
//! the `cactus-lint` binary renders findings as text or JSON and exits
//! nonzero when any survive.
//!
//! [`cactus-obs`'s `RankedMutex`]: ../cactus_obs/lock/index.html

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::Finding;
pub use scan::Workspace;

/// Run every rule family over `ws` and return the sorted findings.
#[must_use]
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::no_panic::check(ws));
    findings.extend(rules::lock_order::check(ws));
    findings.extend(rules::surface::check(ws));
    findings.extend(rules::names::check(ws));
    report::sort(&mut findings);
    findings
}
