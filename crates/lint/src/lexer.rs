//! A small, panic-free Rust lexer.
//!
//! The rules downstream need token *shapes* — identifiers, punctuation,
//! string/comment boundaries, brace structure — not full parse trees, so
//! this lexer does exactly that much: it understands line and nested block
//! comments, plain/byte/raw strings, char-vs-lifetime disambiguation, and
//! nothing else. Every byte of input lands in exactly one token
//! (whitespace and comments are tokens too), so concatenating the token
//! spans reconstructs the source verbatim — the round-trip property the
//! proptest file pins down, and the reason rule code can trust spans as
//! line/column anchors.
//!
//! Totality is load-bearing: the lexer must accept *arbitrary* bytes
//! (truncated files, non-UTF-8 escapes inside strings, unterminated
//! literals) without panicking, because a linter that crashes on weird
//! input silently stops guarding the tree.

/// What a token is, as coarsely as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (newline not included).
    LineComment,
    /// `/* … */`, nesting-aware; unterminated runs to EOF.
    BlockComment,
    /// Identifier or keyword.
    Ident,
    /// `'a` in generics/references.
    Lifetime,
    /// Numeric literal chain (`0`, `42u64`, `0xFF`; `1.5` lexes as
    /// Int/Punct/Int, which is fine for span purposes).
    Int,
    /// `"…"` or `b"…"`, backslash-escape aware; unterminated runs to EOF.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#`; unterminated runs to EOF.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A single punctuation character.
    Punct,
    /// Anything else (stray non-UTF8-adjacent or unclassifiable byte).
    Unknown,
}

/// One token: a kind plus its byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text. Returns `""` rather than panicking if the span is
    /// somehow out of bounds.
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whitespace or comment — insignificant to every rule except the
    /// `lint:allow` scanner (which reads comments).
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// The character at byte offset `i`, if `i` is in bounds on a char
/// boundary.
fn char_at(src: &str, i: usize) -> Option<char> {
    src.get(i..).and_then(|s| s.chars().next())
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scan forward from `i` while `pred` holds; returns the first offset where
/// it does not.
fn scan_while(src: &str, mut i: usize, pred: impl Fn(char) -> bool) -> usize {
    while let Some(c) = char_at(src, i) {
        if !pred(c) {
            break;
        }
        i += c.len_utf8();
    }
    i
}

/// End of a `"`-delimited string whose opening quote is at `open` (the
/// offset *after* the quote is passed in); backslash escapes the next
/// character; unterminated strings run to EOF.
fn scan_string(src: &str, mut i: usize) -> usize {
    while let Some(c) = char_at(src, i) {
        i += c.len_utf8();
        match c {
            '\\' => {
                if let Some(esc) = char_at(src, i) {
                    i += esc.len_utf8();
                }
            }
            '"' => return i,
            _ => {}
        }
    }
    i
}

/// Try to match a raw-string opener (`r`, `br`, optionally `#`s, then `"`)
/// at `i`. Returns the offset past the closing delimiter on success.
fn scan_raw_string(src: &str, i: usize) -> Option<usize> {
    let mut j = i;
    match char_at(src, j)? {
        'r' => j += 1,
        'b' => {
            j += 1;
            if char_at(src, j)? != 'r' {
                return None;
            }
            j += 1;
        }
        _ => return None,
    }
    let mut hashes = 0usize;
    while char_at(src, j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    if char_at(src, j)? != '"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while let Some(c) = char_at(src, j) {
        j += c.len_utf8();
        if c == '"' {
            let mut k = j;
            let mut seen = 0usize;
            while seen < hashes && char_at(src, k) == Some('#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
    }
    Some(j) // unterminated: runs to EOF
}

/// End of a nested block comment whose `/*` opener starts at `i` (pass the
/// offset after the opener); unterminated comments run to EOF.
fn scan_block_comment(src: &str, mut i: usize) -> usize {
    let mut depth = 1usize;
    while let Some(c) = char_at(src, i) {
        if c == '*' && char_at(src, i + 1) == Some('/') {
            i += 2;
            depth -= 1;
            if depth == 0 {
                return i;
            }
        } else if c == '/' && char_at(src, i + 1) == Some('*') {
            i += 2;
            depth += 1;
        } else {
            i += c.len_utf8();
        }
    }
    i
}

/// Lex `src` completely. Total: never panics, and the returned tokens
/// tile the input exactly (`concat(token spans) == src`).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while let Some(c) = char_at(src, i) {
        let start = i;
        let start_line = line;
        let kind = match c {
            c if c.is_whitespace() => {
                i = scan_while(src, i, char::is_whitespace);
                TokenKind::Whitespace
            }
            '/' if char_at(src, i + 1) == Some('/') => {
                i = scan_while(src, i, |c| c != '\n');
                TokenKind::LineComment
            }
            '/' if char_at(src, i + 1) == Some('*') => {
                i = scan_block_comment(src, i + 2);
                TokenKind::BlockComment
            }
            '"' => {
                i = scan_string(src, i + 1);
                TokenKind::Str
            }
            'r' | 'b' if scan_raw_string(src, i).is_some() => {
                // Checked above; fall back to a single char if it vanished
                // (it cannot, but stay total).
                i = scan_raw_string(src, i).unwrap_or(i + 1);
                TokenKind::RawStr
            }
            'b' if char_at(src, i + 1) == Some('"') => {
                i = scan_string(src, i + 2);
                TokenKind::Str
            }
            'b' if char_at(src, i + 1) == Some('\'') => {
                i = scan_char_or_lifetime(src, i + 1).0;
                TokenKind::Char
            }
            '\'' => {
                let (end, kind) = scan_char_or_lifetime(src, i);
                i = end;
                kind
            }
            c if c.is_ascii_digit() => {
                i = scan_while(src, i, is_ident_continue);
                TokenKind::Int
            }
            c if is_ident_start(c) => {
                i = scan_while(src, i, is_ident_continue);
                TokenKind::Ident
            }
            c if c.is_ascii_punctuation() => {
                i += 1;
                TokenKind::Punct
            }
            c => {
                i += c.len_utf8();
                TokenKind::Unknown
            }
        };
        // Guarantee forward progress even if a scanner misbehaved.
        if i <= start {
            i = start + c.len_utf8();
        }
        line += src.get(start..i).map_or(0, |t| {
            u32::try_from(t.bytes().filter(|&b| b == b'\n').count()).unwrap_or(0)
        });
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// Disambiguate `'` at `i`: `'x'` / `'\n'` are [`TokenKind::Char`], `'a`
/// followed by more ident (and no closing quote) is a
/// [`TokenKind::Lifetime`]. Returns (end offset, kind).
fn scan_char_or_lifetime(src: &str, i: usize) -> (usize, TokenKind) {
    let mut j = i + 1; // past the opening quote
    match char_at(src, j) {
        Some('\\') => {
            j += 1;
            if let Some(esc) = char_at(src, j) {
                j += esc.len_utf8();
            }
            if char_at(src, j) == Some('\'') {
                j += 1;
            }
            (j, TokenKind::Char)
        }
        Some(c) if char_at(src, j + c.len_utf8()) == Some('\'') => {
            (j + c.len_utf8() + 1, TokenKind::Char)
        }
        Some(c) if is_ident_start(c) => {
            (scan_while(src, j, is_ident_continue), TokenKind::Lifetime)
        }
        _ => (j, TokenKind::Punct), // lone quote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn round_trips(src: &str) {
        let rebuilt: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn basic_items_round_trip() {
        let src = "fn main() { let x = 1; } // done\n";
        round_trips(src);
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "fn"));
        assert!(k.contains(&(TokenKind::Int, "1")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "not // a comment { } \" done";"#;
        round_trips(src);
        let strs: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("not // a comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"quote \" inside\"#; let b = br\"bytes\";";
        round_trips(src);
        let raws: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::RawStr)
            .collect();
        assert_eq!(raws.len(), 2);
        assert!(raws[0].1.contains("quote \" inside"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        round_trips(src);
        let k = kinds(src);
        assert_eq!(k, vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'x'; let e = '\\n'; fn f<'a>(v: &'a str) {}";
        round_trips(src);
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Char, "'x'")));
        assert!(k.contains(&(TokenKind::Char, "'\\n'")));
        assert!(k.contains(&(TokenKind::Lifetime, "'a")));
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panic() {
        for src in ["\"never closed", "r#\"raw forever", "/* open", "'", "b\"x"] {
            round_trips(src);
            assert!(!lex(src).is_empty());
        }
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let sig: Vec<_> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(sig[0].line, 1);
        assert_eq!(sig[1].line, 2);
        assert_eq!(sig[2].line, 3);
    }

    #[test]
    fn byte_strings_and_keywords_starting_with_b_and_r() {
        let src = "break; return; b\"bytes\"; r\"raw\";";
        round_trips(src);
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "break"));
        assert_eq!(k[2], (TokenKind::Ident, "return"));
        assert!(k.contains(&(TokenKind::Str, "b\"bytes\"")));
        assert!(k.contains(&(TokenKind::RawStr, "r\"raw\"")));
    }
}
