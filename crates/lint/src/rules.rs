//! The four rule families. Each module exposes
//! `check(&Workspace) -> Vec<Finding>`.

pub mod lock_order;
pub mod names;
pub mod no_panic;
pub mod surface;

use crate::lexer::Token;
use crate::report::Finding;
use crate::scan::{Allow, SourceFile};

/// Strip the quotes (and any raw-string `r#` sigils) off a string-literal
/// token's text, returning the payload between the outermost quotes.
#[must_use]
pub(crate) fn unquote(text: &str) -> &str {
    let Some(open) = text.find('"') else {
        return text;
    };
    let Some(close) = text.rfind('"') else {
        return text;
    };
    if close > open {
        text.get(open + 1..close).unwrap_or("")
    } else {
        ""
    }
}

/// Route a raw hit through the file's `lint:allow` comments: suppressed
/// hits return `None`, an allow comment without a reason becomes its own
/// finding, everything else reports as-is.
pub(crate) fn gated(
    f: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) -> Option<Finding> {
    gated_at(f, rule, &[line], message)
}

/// Like [`gated`], but the allow comment may sit at any of `lines` (or
/// the line above one) — pass both the hit line and the first line of the
/// enclosing statement so rustfmt-wrapped chains stay annotatable. The
/// finding reports at `lines[0]`.
pub(crate) fn gated_at(
    f: &SourceFile,
    rule: &'static str,
    lines: &[u32],
    message: String,
) -> Option<Finding> {
    let line = lines.first().copied().unwrap_or(0);
    let verdicts: Vec<Allow> = lines.iter().map(|&l| f.allow(rule, l)).collect();
    if verdicts.contains(&Allow::Granted) {
        return None;
    }
    if verdicts.contains(&Allow::MissingReason) {
        return Some(Finding::new(
            rule,
            &f.rel,
            line,
            format!("lint:allow({rule}) must give a reason: lint:allow({rule}, why-this-is-safe)"),
        ));
    }
    Some(Finding::new(rule, &f.rel, line, message))
}

/// Line of the first token of the statement containing significant-token
/// index `i`: the token after the closest preceding `;`, `{`, or `}`.
pub(crate) fn stmt_line(sig: &[&Token], text: &str, i: usize) -> u32 {
    let mut j = i;
    while j > 0 {
        if matches!(sig[j - 1].text(text), ";" | "{" | "}") {
            break;
        }
        j -= 1;
    }
    sig.get(j).map_or(0, |t| t.line)
}

/// Significant tokens of `f` outside `#[cfg(test)]` regions. Test items
/// are brace-balanced, so dropping them keeps the stream well-nested.
pub(crate) fn live_tokens(f: &SourceFile) -> Vec<&Token> {
    f.tokens
        .iter()
        .filter(|t| !t.is_trivia() && !f.in_test_region(t.start))
        .collect()
}
