//! Exact serialization of [`Profile`]s for the shared profile store.
//!
//! The fig/table binaries in `cactus-bench` all consume the same simulated
//! profiles; the store lets one run simulate the suite and every later
//! binary load the result instead of re-simulating. The format is a
//! line-oriented text format with **bit-exact** float round-tripping: every
//! `f64` is written as the 16-hex-digit encoding of its IEEE-754 bits, so a
//! loaded profile compares equal (`==`) to the profile that was saved —
//! including NaN payloads — and downstream figures are byte-identical
//! whether they came from a live simulation or from the store.
//!
//! Format (tab-separated where multi-field):
//!
//! ```text
//! cactus-profile v1
//! kernels <count>
//! k <name> <invocations> <total_time_s> <warp_instructions>
//!   <dram_transactions> <18 metric words>
//! ```
//!
//! Kernel names escape backslash, tab, and newline; all other bytes pass
//! through. Kernels appear in dominance order, matching
//! [`Profile::kernels`].

use crate::{KernelStats, Profile};
use cactus_gpu::metrics::KernelMetrics;

use std::fmt;

/// Magic first line; bump the version when the format changes.
pub const FORMAT_HEADER: &str = "cactus-profile v1";

/// Why a stored profile failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// First line was not [`FORMAT_HEADER`].
    BadHeader(String),
    /// A line did not match the expected shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Fewer kernel lines than the declared count.
    Truncated,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadHeader(got) => {
                write!(f, "bad profile header {got:?} (want {FORMAT_HEADER:?})")
            }
            StoreError::Malformed { line, reason } => {
                write!(f, "malformed profile at line {line}: {reason}")
            }
            StoreError::Truncated => write!(f, "profile ends before declared kernel count"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Serialize a profile. Inverse of [`read_profile`].
#[must_use]
pub fn write_profile(profile: &Profile) -> String {
    let kernels = profile.kernels();
    let mut out = String::with_capacity(64 + kernels.len() * 400);
    out.push_str(FORMAT_HEADER);
    out.push('\n');
    out.push_str(&format!("kernels {}\n", kernels.len()));
    for k in kernels {
        out.push('k');
        out.push('\t');
        out.push_str(&escape_name(&k.name));
        out.push('\t');
        out.push_str(&k.invocations.to_string());
        out.push('\t');
        push_f64(&mut out, k.total_time_s);
        out.push('\t');
        out.push_str(&k.warp_instructions.to_string());
        out.push('\t');
        push_f64(&mut out, k.dram_transactions);
        for word in metric_words(&k.metrics) {
            out.push('\t');
            out.push_str(&word);
        }
        out.push('\n');
    }
    out
}

/// Parse a profile serialized by [`write_profile`].
///
/// # Errors
///
/// Returns a [`StoreError`] describing the first structural problem found.
pub fn read_profile(text: &str) -> Result<Profile, StoreError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines.next().ok_or(StoreError::BadHeader(String::new()))?;
    if header != FORMAT_HEADER {
        return Err(StoreError::BadHeader(header.to_owned()));
    }

    let (line_no, count_line) = lines.next().ok_or(StoreError::Truncated)?;
    let count: usize = count_line
        .strip_prefix("kernels ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| StoreError::Malformed {
            line: line_no + 1,
            reason: format!("expected `kernels <count>`, got {count_line:?}"),
        })?;

    let mut kernels = Vec::with_capacity(count);
    for _ in 0..count {
        let (line_no, line) = lines.next().ok_or(StoreError::Truncated)?;
        kernels.push(parse_kernel_line(line, line_no + 1)?);
    }
    Ok(Profile::from_kernel_stats(kernels))
}

fn parse_kernel_line(line: &str, line_no: usize) -> Result<KernelStats, StoreError> {
    let err = |reason: String| StoreError::Malformed {
        line: line_no,
        reason,
    };
    let fields: Vec<&str> = line.split('\t').collect();
    // tag, name, invocations, total_time, warp_insts, dram_txns, 18 metrics.
    const EXPECTED: usize = 6 + 18;
    if fields.len() != EXPECTED || fields[0] != "k" {
        return Err(err(format!(
            "expected {EXPECTED} tab-separated kernel fields starting with `k`, got {}",
            fields.len()
        )));
    }
    let parse_u64 = |s: &str, what: &str| {
        s.parse::<u64>()
            .map_err(|_| err(format!("bad {what}: {s:?}")))
    };
    let parse_f64 = |s: &str, what: &str| {
        parse_f64_bits(s).ok_or_else(|| err(format!("bad {what} bits: {s:?}")))
    };

    let name = unescape_name(fields[1]);
    let invocations = parse_u64(fields[2], "invocation count")?;
    let total_time_s = parse_f64(fields[3], "total time")?;
    let warp_instructions = parse_u64(fields[4], "warp instructions")?;
    let dram_transactions = parse_f64(fields[5], "dram transactions")?;

    let m = &fields[6..];
    let metrics = KernelMetrics {
        duration_s: parse_f64(m[0], "duration_s")?,
        warp_instructions: parse_u64(m[1], "metric warp_instructions")?,
        dram_transactions: parse_f64(m[2], "metric dram_transactions")?,
        gips: parse_f64(m[3], "gips")?,
        instruction_intensity: parse_f64(m[4], "instruction_intensity")?,
        warp_occupancy: parse_f64(m[5], "warp_occupancy")?,
        sm_efficiency: parse_f64(m[6], "sm_efficiency")?,
        l1_hit_rate: parse_f64(m[7], "l1_hit_rate")?,
        l2_hit_rate: parse_f64(m[8], "l2_hit_rate")?,
        dram_read_throughput_gbps: parse_f64(m[9], "dram_read_throughput_gbps")?,
        ldst_utilization: parse_f64(m[10], "ldst_utilization")?,
        sp_utilization: parse_f64(m[11], "sp_utilization")?,
        fraction_branches: parse_f64(m[12], "fraction_branches")?,
        fraction_ldst: parse_f64(m[13], "fraction_ldst")?,
        execution_stall: parse_f64(m[14], "execution_stall")?,
        pipe_stall: parse_f64(m[15], "pipe_stall")?,
        sync_stall: parse_f64(m[16], "sync_stall")?,
        memory_stall: parse_f64(m[17], "memory_stall")?,
    };

    Ok(KernelStats {
        name,
        invocations,
        total_time_s,
        warp_instructions,
        dram_transactions,
        metrics,
    })
}

/// The 18 metric fields of [`KernelMetrics`], serialized in declaration
/// order.
fn metric_words(m: &KernelMetrics) -> [String; 18] {
    [
        f64_bits(m.duration_s),
        m.warp_instructions.to_string(),
        f64_bits(m.dram_transactions),
        f64_bits(m.gips),
        f64_bits(m.instruction_intensity),
        f64_bits(m.warp_occupancy),
        f64_bits(m.sm_efficiency),
        f64_bits(m.l1_hit_rate),
        f64_bits(m.l2_hit_rate),
        f64_bits(m.dram_read_throughput_gbps),
        f64_bits(m.ldst_utilization),
        f64_bits(m.sp_utilization),
        f64_bits(m.fraction_branches),
        f64_bits(m.fraction_ldst),
        f64_bits(m.execution_stall),
        f64_bits(m.pipe_stall),
        f64_bits(m.sync_stall),
        f64_bits(m.memory_stall),
    ]
}

fn f64_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn push_f64(out: &mut String, x: f64) {
    out.push_str(&f64_bits(x));
}

fn parse_f64_bits(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn escape_name(name: &str) -> String {
    name.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape_name(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_gpu::prelude::*;

    fn sample_profile() -> Profile {
        let mut gpu = Gpu::new(Device::rtx3080());
        for (name, n) in [("gemm", 1 << 22), ("reduce", 1 << 20), ("gemm", 1 << 22)] {
            let k = KernelDesc::builder(name)
                .launch(LaunchConfig::linear(n, 256))
                .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
                .stream(AccessStream::write(n, 4, AccessPattern::Streaming))
                .build();
            gpu.launch(&k);
        }
        Profile::from_records(gpu.records())
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let original = sample_profile();
        let text = write_profile(&original);
        let loaded = read_profile(&text).expect("roundtrip parse");
        assert_eq!(loaded, original);
        assert_eq!(
            loaded.total_time_s().to_bits(),
            original.total_time_s().to_bits()
        );
        // Re-serializing the loaded profile reproduces the bytes.
        assert_eq!(write_profile(&loaded), text);
    }

    #[test]
    fn empty_profile_roundtrips() {
        let empty = Profile::from_records(&[]);
        let loaded = read_profile(&write_profile(&empty)).expect("parse");
        assert_eq!(loaded, empty);
    }

    #[test]
    fn names_with_escapes_roundtrip() {
        assert_eq!(unescape_name(&escape_name("a\tb\\c\nd")), "a\tb\\c\nd");
        assert_eq!(unescape_name(&escape_name("plain_kernel")), "plain_kernel");
    }

    #[test]
    fn rejects_wrong_header() {
        let err = read_profile("something else\n").unwrap_err();
        assert!(matches!(err, StoreError::BadHeader(_)));
    }

    #[test]
    fn rejects_truncated_and_malformed() {
        let good = write_profile(&sample_profile());
        let mut lines: Vec<&str> = good.lines().collect();
        let dropped = lines.pop().expect("has kernel lines");
        let truncated = lines.join("\n");
        assert_eq!(read_profile(&truncated).unwrap_err(), StoreError::Truncated);

        let mangled = format!("{}\n{}", truncated, dropped.replace('\t', " "));
        assert!(matches!(
            read_profile(&mangled).unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }

    #[test]
    fn special_floats_roundtrip() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-300] {
            let bits = f64_bits(x);
            let back = parse_f64_bits(&bits).expect("parse bits");
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
