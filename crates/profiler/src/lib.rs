//! # cactus-profiler
//!
//! Turns a [`cactus_gpu::engine::Gpu`] execution trace into the aggregate
//! views the paper's methodology needs:
//!
//! * [`KernelStats`] — per-kernel-name aggregation across invocations; the
//!   paper ranks kernels by `rᵢ × tᵢ` (invocation count × per-invocation
//!   time), i.e. by *total* time, not per-invocation time (Section IV,
//!   "Dominant Kernels").
//! * [`Profile`] — the whole-application view: total GPU time, total warp
//!   instructions, dominant-kernel sets at a time-coverage threshold
//!   (the paper uses 70 %), and the cumulative time distribution behind
//!   Figures 2 and 3.
//! * [`report`] — Table I-style summary rows.
//! * [`store`] — bit-exact profile (de)serialization backing the shared
//!   profile store in `cactus-bench`.
//!
//! ## Example
//!
//! ```
//! use cactus_gpu::prelude::*;
//! use cactus_profiler::Profile;
//!
//! let mut gpu = Gpu::new(Device::rtx3080());
//! for _ in 0..3 {
//!     let k = KernelDesc::builder("step")
//!         .launch(LaunchConfig::linear(1 << 20, 256))
//!         .stream(AccessStream::read(1 << 20, 4, AccessPattern::Streaming))
//!         .build();
//!     gpu.launch(&k);
//! }
//! let profile = Profile::from_records(gpu.records());
//! assert_eq!(profile.kernel_count(), 1);
//! assert_eq!(profile.kernels()[0].invocations, 3);
//! assert_eq!(profile.kernels_for_fraction(0.7), 1);
//! ```

pub mod csv;
pub mod report;
pub mod store;

use std::collections::HashMap;

use cactus_gpu::engine::LaunchRecord;
use cactus_gpu::metrics::{KernelMetrics, MetricId};

/// Aggregated statistics for one kernel name across all its invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Number of invocations (`rᵢ` in the paper).
    pub invocations: u64,
    /// Total GPU time across invocations (`rᵢ × tᵢ`), in seconds.
    pub total_time_s: f64,
    /// Total warp instructions across invocations.
    pub warp_instructions: u64,
    /// Total DRAM transactions across invocations.
    pub dram_transactions: f64,
    /// Aggregated metric record: GIPS and instruction intensity are
    /// recomputed from the totals; the remaining metrics are time-weighted
    /// means over invocations.
    pub metrics: KernelMetrics,
}

impl KernelStats {
    /// Share of the application's total GPU time, given that total.
    #[must_use]
    pub fn time_share(&self, app_total_s: f64) -> f64 {
        if app_total_s <= 0.0 {
            0.0
        } else {
            self.total_time_s / app_total_s
        }
    }

    /// Mean time per invocation (`tᵢ`).
    #[must_use]
    pub fn mean_invocation_time_s(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_time_s / self.invocations as f64
        }
    }
}

/// A profiled application: kernels aggregated by name and ranked by total
/// GPU time (the paper's dominance order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    kernels: Vec<KernelStats>,
    total_time_s: f64,
}

impl Profile {
    /// Build a profile from an execution trace.
    #[must_use]
    pub fn from_records(records: &[LaunchRecord]) -> Self {
        struct Acc {
            invocations: u64,
            total_time: f64,
            insts: u64,
            txns: f64,
            weighted: Vec<f64>,
        }
        let mut by_name: HashMap<&str, Acc> = HashMap::new();
        let metric_ids = MetricId::ALL;

        for r in records {
            let acc = by_name.entry(r.name.as_str()).or_insert_with(|| Acc {
                invocations: 0,
                total_time: 0.0,
                insts: 0,
                txns: 0.0,
                weighted: vec![0.0; metric_ids.len()],
            });
            let dt = r.metrics.duration_s;
            acc.invocations += 1;
            acc.total_time += dt;
            acc.insts += r.metrics.warp_instructions;
            acc.txns += r.metrics.dram_transactions;
            for (slot, &id) in acc.weighted.iter_mut().zip(metric_ids.iter()) {
                *slot += r.metrics.get(id) * dt;
            }
        }

        let mut kernels: Vec<KernelStats> = by_name
            .into_iter()
            .map(|(name, acc)| {
                let mut metrics = KernelMetrics {
                    duration_s: acc.total_time,
                    warp_instructions: acc.insts,
                    dram_transactions: acc.txns,
                    ..KernelMetrics::default()
                };
                // Time-weighted means for the Table IV metrics.
                if acc.total_time > 0.0 {
                    let w = 1.0 / acc.total_time;
                    metrics.warp_occupancy = acc.weighted[2] * w;
                    metrics.sm_efficiency = acc.weighted[3] * w;
                    metrics.l1_hit_rate = acc.weighted[4] * w;
                    metrics.l2_hit_rate = acc.weighted[5] * w;
                    metrics.dram_read_throughput_gbps = acc.weighted[6] * w;
                    metrics.ldst_utilization = acc.weighted[7] * w;
                    metrics.sp_utilization = acc.weighted[8] * w;
                    metrics.fraction_branches = acc.weighted[9] * w;
                    metrics.fraction_ldst = acc.weighted[10] * w;
                    metrics.execution_stall = acc.weighted[11] * w;
                    metrics.pipe_stall = acc.weighted[12] * w;
                    metrics.sync_stall = acc.weighted[13] * w;
                    metrics.memory_stall = acc.weighted[14] * w;
                }
                // Recompute the roofline coordinates from totals.
                metrics.gips = if acc.total_time > 0.0 {
                    acc.insts as f64 / acc.total_time / 1e9
                } else {
                    0.0
                };
                metrics.instruction_intensity = acc.insts as f64 / acc.txns.max(1.0);

                KernelStats {
                    name: name.to_owned(),
                    invocations: acc.invocations,
                    total_time_s: acc.total_time,
                    warp_instructions: acc.insts,
                    dram_transactions: acc.txns,
                    metrics,
                }
            })
            .collect();

        // Dominance order: total time descending, name as tiebreaker for
        // determinism.
        kernels.sort_by(|a, b| {
            b.total_time_s
                .partial_cmp(&a.total_time_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let total_time_s = kernels.iter().map(|k| k.total_time_s).sum();
        Self {
            kernels,
            total_time_s,
        }
    }

    /// Build a profile from already-aggregated kernel statistics (the
    /// deserialization path of [`store`]). Kernels are (re-)sorted into
    /// dominance order and the total recomputed; feeding back
    /// [`Profile::kernels`] reproduces the original profile bit-exactly
    /// because the sort is stable and the summation order matches
    /// [`Profile::from_records`].
    #[must_use]
    pub fn from_kernel_stats(mut kernels: Vec<KernelStats>) -> Self {
        kernels.sort_by(|a, b| {
            b.total_time_s
                .partial_cmp(&a.total_time_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let total_time_s = kernels.iter().map(|k| k.total_time_s).sum();
        Self {
            kernels,
            total_time_s,
        }
    }

    /// Kernels in dominance order (total GPU time descending).
    #[must_use]
    pub fn kernels(&self) -> &[KernelStats] {
        &self.kernels
    }

    /// Number of distinct kernels executed (the paper's "No. kernels, 100 %
    /// execution time").
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Total GPU time, in seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Total warp instructions.
    #[must_use]
    pub fn total_warp_instructions(&self) -> u64 {
        self.kernels.iter().map(|k| k.warp_instructions).sum()
    }

    /// Total DRAM transactions.
    #[must_use]
    pub fn total_dram_transactions(&self) -> f64 {
        self.kernels.iter().map(|k| k.dram_transactions).sum()
    }

    /// The paper's Table I "weighted average no. warp instructions per
    /// kernel": per-kernel instruction totals weighted by the kernel's share
    /// of GPU time.
    #[must_use]
    pub fn weighted_avg_warp_instructions(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .map(|k| k.time_share(self.total_time_s) * k.warp_instructions as f64)
            .sum()
    }

    /// Minimum number of top-ranked kernels whose cumulative time reaches
    /// `fraction` of the total (the paper's "No. kernels, 70 % execution
    /// time" uses `fraction = 0.7`).
    #[must_use]
    pub fn kernels_for_fraction(&self, fraction: f64) -> usize {
        let target = fraction.clamp(0.0, 1.0) * self.total_time_s;
        let mut acc = 0.0;
        for (i, k) in self.kernels.iter().enumerate() {
            acc += k.total_time_s;
            if acc >= target - 1e-15 {
                return i + 1;
            }
        }
        self.kernels.len()
    }

    /// The dominant kernels: the smallest top-ranked set covering
    /// `fraction` of GPU time.
    #[must_use]
    pub fn dominant_kernels(&self, fraction: f64) -> &[KernelStats] {
        let n = self.kernels_for_fraction(fraction);
        &self.kernels[..n]
    }

    /// Cumulative GPU-time distribution over kernels in dominance order
    /// (the series behind Figures 2 and 3). Entry `i` is the fraction of
    /// total time covered by the `i + 1` most dominant kernels; the last
    /// entry is 1.
    #[must_use]
    pub fn cumulative_distribution(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.kernels
            .iter()
            .map(|k| {
                acc += k.time_share(self.total_time_s);
                acc.min(1.0)
            })
            .collect()
    }

    /// Application-level aggregate metrics (Figure 5's per-application
    /// roofline points): GIPS and instruction intensity from device totals,
    /// everything else time-weighted across kernels.
    #[must_use]
    pub fn aggregate_metrics(&self) -> KernelMetrics {
        let mut m = KernelMetrics {
            duration_s: self.total_time_s,
            warp_instructions: self.total_warp_instructions(),
            dram_transactions: self.total_dram_transactions(),
            ..KernelMetrics::default()
        };
        if self.total_time_s > 0.0 {
            m.gips = m.warp_instructions as f64 / self.total_time_s / 1e9;
            let w = 1.0 / self.total_time_s;
            for k in &self.kernels {
                let share = k.total_time_s * w;
                m.warp_occupancy += share * k.metrics.warp_occupancy;
                m.sm_efficiency += share * k.metrics.sm_efficiency;
                m.l1_hit_rate += share * k.metrics.l1_hit_rate;
                m.l2_hit_rate += share * k.metrics.l2_hit_rate;
                m.dram_read_throughput_gbps += share * k.metrics.dram_read_throughput_gbps;
                m.ldst_utilization += share * k.metrics.ldst_utilization;
                m.sp_utilization += share * k.metrics.sp_utilization;
                m.fraction_branches += share * k.metrics.fraction_branches;
                m.fraction_ldst += share * k.metrics.fraction_ldst;
                m.execution_stall += share * k.metrics.execution_stall;
                m.pipe_stall += share * k.metrics.pipe_stall;
                m.sync_stall += share * k.metrics.sync_stall;
                m.memory_stall += share * k.metrics.memory_stall;
            }
        }
        m.instruction_intensity = m.warp_instructions as f64 / m.dram_transactions.max(1.0);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_gpu::prelude::*;

    fn kernel(name: &str, n: u64) -> KernelDesc {
        KernelDesc::builder(name)
            .launch(LaunchConfig::linear(n, 256))
            .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
            .stream(AccessStream::write(n, 4, AccessPattern::Streaming))
            .build()
    }

    fn trace() -> Vec<cactus_gpu::engine::LaunchRecord> {
        let mut gpu = Gpu::new(Device::rtx3080());
        // "big" dominates, then "mid", then "small" × 3.
        gpu.launch(&kernel("big", 1 << 24));
        gpu.launch(&kernel("mid", 1 << 22));
        for _ in 0..3 {
            gpu.launch(&kernel("small", 1 << 18));
        }
        gpu.take_records()
    }

    #[test]
    fn aggregates_by_name_and_sorts_by_total_time() {
        let p = Profile::from_records(&trace());
        assert_eq!(p.kernel_count(), 3);
        assert_eq!(p.kernels()[0].name, "big");
        assert_eq!(p.kernels()[1].name, "mid");
        assert_eq!(p.kernels()[2].name, "small");
        assert_eq!(p.kernels()[2].invocations, 3);
    }

    #[test]
    fn frequent_small_kernel_can_dominate() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&kernel("one_shot", 1 << 22));
        for _ in 0..200 {
            gpu.launch(&kernel("hot_loop", 1 << 18));
        }
        let p = Profile::from_records(gpu.records());
        // ri × ti ranking: the frequently-invoked kernel wins.
        assert_eq!(p.kernels()[0].name, "hot_loop");
    }

    #[test]
    fn cumulative_distribution_is_monotone_and_ends_at_one() {
        let p = Profile::from_records(&trace());
        let cdf = p.cumulative_distribution();
        assert_eq!(cdf.len(), 3);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((cdf[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernels_for_fraction_is_minimal() {
        let p = Profile::from_records(&trace());
        let n70 = p.kernels_for_fraction(0.7);
        let cdf = p.cumulative_distribution();
        assert!(cdf[n70 - 1] >= 0.7 - 1e-12);
        if n70 > 1 {
            assert!(cdf[n70 - 2] < 0.7);
        }
        assert_eq!(p.kernels_for_fraction(1.0), p.kernel_count());
        assert_eq!(p.dominant_kernels(0.7).len(), n70);
    }

    #[test]
    fn totals_match_trace() {
        let records = trace();
        let p = Profile::from_records(&records);
        let t: f64 = records.iter().map(|r| r.metrics.duration_s).sum();
        let i: u64 = records.iter().map(|r| r.metrics.warp_instructions).sum();
        assert!((p.total_time_s() - t).abs() < 1e-12);
        assert_eq!(p.total_warp_instructions(), i);
    }

    #[test]
    fn aggregate_metrics_are_consistent() {
        let p = Profile::from_records(&trace());
        let m = p.aggregate_metrics();
        assert!(m.gips > 0.0);
        assert!(m.instruction_intensity > 0.0);
        assert!((0.0..=1.0).contains(&m.sm_efficiency));
        let expected_gips = p.total_warp_instructions() as f64 / p.total_time_s() / 1e9;
        assert!((m.gips - expected_gips).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_empty_profile() {
        let p = Profile::from_records(&[]);
        assert_eq!(p.kernel_count(), 0);
        assert_eq!(p.total_time_s(), 0.0);
        assert_eq!(p.kernels_for_fraction(0.7), 0);
        assert!(p.cumulative_distribution().is_empty());
    }

    #[test]
    fn weighted_avg_is_between_min_and_max_kernel_insts() {
        let p = Profile::from_records(&trace());
        let w = p.weighted_avg_warp_instructions();
        let min = p
            .kernels()
            .iter()
            .map(|k| k.warp_instructions)
            .min()
            .unwrap() as f64;
        let max = p
            .kernels()
            .iter()
            .map(|k| k.warp_instructions)
            .max()
            .unwrap() as f64;
        assert!(w >= min && w <= max, "{min} <= {w} <= {max}");
    }
}
