//! Table I-style summary rows and human-readable profile reports.

use cactus_gpu::engine::MemoStats;

use crate::Profile;

/// One Table I row: a benchmark's basic execution characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Benchmark abbreviation (e.g. `"GMS"`).
    pub abbr: String,
    /// Total warp instructions.
    pub total_warp_instructions: u64,
    /// Weighted average warp instructions per kernel.
    pub weighted_avg_warp_instructions: f64,
    /// Number of kernels accounting for 100 % of GPU time.
    pub kernels_100: usize,
    /// Number of kernels accounting for ≥70 % of GPU time.
    pub kernels_70: usize,
    /// Total GPU time in seconds.
    pub total_time_s: f64,
}

impl SummaryRow {
    /// Build the row for one benchmark's profile.
    #[must_use]
    pub fn from_profile(abbr: impl Into<String>, profile: &Profile) -> Self {
        Self {
            abbr: abbr.into(),
            total_warp_instructions: profile.total_warp_instructions(),
            weighted_avg_warp_instructions: profile.weighted_avg_warp_instructions(),
            kernels_100: profile.kernel_count(),
            kernels_70: profile.kernels_for_fraction(0.7),
            total_time_s: profile.total_time_s(),
        }
    }
}

/// Format an instruction count the way Table I does (e.g. `306 B`, `43 M`,
/// `40 K`).
#[must_use]
pub fn human_count(n: f64) -> String {
    let a = n.abs();
    if a >= 1e9 {
        format!("{:.1} B", n / 1e9)
    } else if a >= 1e6 {
        format!("{:.1} M", n / 1e6)
    } else if a >= 1e3 {
        format!("{:.1} K", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// Render a set of summary rows as a fixed-width text table.
#[must_use]
pub fn render_summary_table(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:>16} {:>22} {:>12} {:>12} {:>12}\n",
        "Bench", "Warp insts", "W.avg insts/kernel", "Kernels100%", "Kernels70%", "GPU time (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>16} {:>22} {:>12} {:>12} {:>12.4}\n",
            r.abbr,
            human_count(r.total_warp_instructions as f64),
            human_count(r.weighted_avg_warp_instructions),
            r.kernels_100,
            r.kernels_70,
            r.total_time_s,
        ));
    }
    out
}

/// Render a per-kernel breakdown of a profile (name, invocations, time
/// share, GIPS, instruction intensity), in dominance order.
#[must_use]
pub fn render_kernel_table(profile: &Profile) -> String {
    let total = profile.total_time_s();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>8} {:>9} {:>9} {:>9}\n",
        "Kernel", "Invoc.", "Time %", "GIPS", "II"
    ));
    for k in profile.kernels() {
        out.push_str(&format!(
            "{:<44} {:>8} {:>8.2}% {:>9.2} {:>9.2}\n",
            truncate(&k.name, 44),
            k.invocations,
            100.0 * k.time_share(total),
            k.metrics.gips,
            k.metrics.instruction_intensity,
        ));
    }
    out
}

/// Render per-workload launch-memoization effectiveness as a fixed-width
/// table: launches simulated vs replayed from the engine's memo cache.
/// Workloads whose profiles were loaded from the store carry no counters
/// (`None`) and report as `store`.
#[must_use]
pub fn render_memo_table(rows: &[(String, Option<MemoStats>)]) -> String {
    let name_w = rows
        .iter()
        .map(|(name, _)| name.len())
        .chain(std::iter::once("Workload".len()))
        .max()
        .unwrap_or(8);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} {:>10} {:>10} {:>10} {:>9}\n",
        "Workload", "Launches", "Memo hits", "Misses", "Hit rate"
    ));
    for (name, stats) in rows {
        match stats {
            Some(s) => out.push_str(&format!(
                "{:<name_w$} {:>10} {:>10} {:>10} {:>8.1}%\n",
                name,
                s.launches(),
                s.hits,
                s.misses,
                100.0 * s.hit_rate(),
            )),
            None => out.push_str(&format!(
                "{:<name_w$} {:>10} {:>10} {:>10} {:>9}\n",
                name, "store", "-", "-", "-"
            )),
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_gpu::prelude::*;

    fn profile() -> Profile {
        let mut gpu = Gpu::new(Device::rtx3080());
        for (name, n) in [("alpha", 1u64 << 24), ("beta", 1 << 20)] {
            let k = KernelDesc::builder(name)
                .launch(LaunchConfig::linear(n, 256))
                .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
                .build();
            gpu.launch(&k);
        }
        Profile::from_records(gpu.records())
    }

    #[test]
    fn summary_row_reflects_profile() {
        let p = profile();
        let row = SummaryRow::from_profile("TST", &p);
        assert_eq!(row.abbr, "TST");
        assert_eq!(row.kernels_100, 2);
        assert!(row.kernels_70 <= 2);
        assert_eq!(row.total_warp_instructions, p.total_warp_instructions());
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(306e9), "306.0 B");
        assert_eq!(human_count(43e6), "43.0 M");
        assert_eq!(human_count(40e3), "40.0 K");
        assert_eq!(human_count(17.0), "17");
    }

    #[test]
    fn tables_render_every_row() {
        let p = profile();
        let row = SummaryRow::from_profile("TST", &p);
        let t = render_summary_table(&[row]);
        assert!(t.contains("TST"));
        let kt = render_kernel_table(&p);
        assert!(kt.contains("alpha"));
        assert!(kt.contains("beta"));
    }

    #[test]
    fn memo_table_renders_simulated_and_store_rows() {
        let rows = vec![
            (
                "GMS".to_owned(),
                Some(MemoStats {
                    hits: 90,
                    misses: 10,
                }),
            ),
            ("LMR".to_owned(), None),
        ];
        let t = render_memo_table(&rows);
        assert!(t.contains("GMS"));
        assert!(t.contains("90.0%"), "{t}");
        assert!(t.contains("store"), "{t}");
    }

    #[test]
    fn truncate_handles_long_names() {
        let long = "k".repeat(100);
        let t = truncate(&long, 10);
        assert!(t.chars().count() <= 10);
    }
}
