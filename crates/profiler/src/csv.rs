//! CSV emission for profiles — the counterpart of the paper artifact's
//! `data/` files that its Python/R plotting scripts consume.

use cactus_gpu::metrics::MetricId;

use crate::Profile;

/// CSV header for [`kernel_rows`]: kernel identity, totals, and the full
/// metric vector in [`MetricId::ALL`] order.
#[must_use]
pub fn kernel_header() -> String {
    let mut cols = vec![
        "workload".to_owned(),
        "kernel".to_owned(),
        "invocations".to_owned(),
        "total_time_s".to_owned(),
        "time_share".to_owned(),
        "warp_instructions".to_owned(),
        "dram_transactions".to_owned(),
    ];
    cols.extend(
        MetricId::ALL
            .iter()
            .map(|id| id.name().to_lowercase().replace([' ', '/'], "_")),
    );
    cols.join(",")
}

/// One CSV row per kernel of `profile`, in dominance order.
#[must_use]
pub fn kernel_rows(workload: &str, profile: &Profile) -> Vec<String> {
    let total = profile.total_time_s();
    profile
        .kernels()
        .iter()
        .map(|k| {
            let mut fields = vec![
                escape(workload),
                escape(&k.name),
                k.invocations.to_string(),
                format!("{:e}", k.total_time_s),
                format!("{:.6}", k.time_share(total)),
                k.warp_instructions.to_string(),
                format!("{:e}", k.dram_transactions),
            ];
            fields.extend(
                MetricId::ALL
                    .iter()
                    .map(|&id| format!("{:e}", k.metrics.get(id))),
            );
            fields.join(",")
        })
        .collect()
}

/// A complete CSV document (header + rows) for one profiled workload.
#[must_use]
pub fn to_csv(workload: &str, profile: &Profile) -> String {
    let mut out = kernel_header();
    out.push('\n');
    for row in kernel_rows(workload, profile) {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// CSV header for [`memo_row`]: per-workload launch-memoization counters.
#[must_use]
pub fn memo_header() -> String {
    "workload,source,launches,memo_hits,memo_misses,memo_hit_rate".to_owned()
}

/// One CSV row of launch-memoization effectiveness for `workload`.
/// `stats = None` means the profile came from the store without
/// simulating; the counter columns are left empty and the source reads
/// `store` instead of `simulated`.
#[must_use]
pub fn memo_row(workload: &str, stats: Option<&cactus_gpu::engine::MemoStats>) -> String {
    match stats {
        Some(s) => format!(
            "{},simulated,{},{},{},{:.6}",
            escape(workload),
            s.launches(),
            s.hits,
            s.misses,
            s.hit_rate()
        ),
        None => format!("{},store,,,,", escape(workload)),
    }
}

fn escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_gpu::prelude::*;

    fn profile() -> Profile {
        let mut gpu = Gpu::new(Device::rtx3080());
        for name in ["plain", "with,comma"] {
            let k = KernelDesc::builder(name)
                .launch(LaunchConfig::linear(1 << 16, 256))
                .stream(AccessStream::read(1 << 16, 4, AccessPattern::Streaming))
                .build();
            gpu.launch(&k);
        }
        Profile::from_records(gpu.records())
    }

    #[test]
    fn header_and_rows_have_matching_arity() {
        let p = profile();
        let header_cols = kernel_header().split(',').count();
        for row in kernel_rows("T", &p) {
            // Quoted commas are escaped, so a naive split works only on
            // rows without them; count via the csv-aware splitter below.
            let cols = split_csv(&row).len();
            assert_eq!(cols, header_cols, "{row}");
        }
    }

    #[test]
    fn commas_in_kernel_names_are_quoted() {
        let p = profile();
        let doc = to_csv("T", &p);
        assert!(doc.contains("\"with,comma\""));
        // Every line parses back to the header arity.
        let header_cols = kernel_header().split(',').count();
        for line in doc.lines().skip(1) {
            assert_eq!(split_csv(line).len(), header_cols);
        }
    }

    #[test]
    fn time_shares_sum_to_one() {
        let p = profile();
        let total: f64 = kernel_rows("T", &p)
            .iter()
            .map(|row| split_csv(row)[4].parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "shares sum to {total}");
    }

    #[test]
    fn memo_rows_match_header_arity() {
        let header_cols = memo_header().split(',').count();
        let stats = cactus_gpu::engine::MemoStats { hits: 3, misses: 1 };
        for row in [memo_row("GMS", Some(&stats)), memo_row("LMR", None)] {
            assert_eq!(split_csv(&row).len(), header_cols, "{row}");
        }
        assert!(memo_row("GMS", Some(&stats)).contains(",simulated,4,3,1,0.750000"));
        assert!(memo_row("LMR", None).contains(",store,,,,"));
    }

    /// Minimal RFC-4180 splitter for the tests.
    fn split_csv(line: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted && chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => quoted = !quoted,
                ',' if !quoted => {
                    out.push(std::mem::take(&mut cur));
                }
                other => cur.push(other),
            }
        }
        out.push(cur);
        out
    }
}
