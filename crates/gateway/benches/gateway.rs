//! Gateway proxy benchmarks: does hedging actually cut tail latency?
//!
//! The fixture is a two-backend fleet of raw stub servers: the routing
//! primary for the benched key is **bimodal** (fast, but every 10th request
//! stalls ~25 ms — a shard with an occasional slow path), its ring
//! neighbour is steadily fast. Two gateways front the same pair, one with
//! hedging enabled (2 ms floor) and one without; the bench sweeps the same
//! key through both and reports p50/p99 plus hedge launches and wins.
//!
//! Expected shape: unhedged p99 ≈ the stall (~25 ms) because 1-in-10
//! requests eats it in full; hedged p99 ≈ hedge threshold + the fast
//! neighbour's response time (a few ms). Mean latency barely moves — the
//! win is purely in the tail, which is the point of hedging.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cactus_gateway::server::routing_key;
use cactus_gateway::{Gateway, GatewayConfig, HashRing, RoutePolicy};
use cactus_serve::metrics::quantile;
use cactus_serve::Connection;
use criterion::{criterion_group, criterion_main, Criterion};

/// A raw stub backend answering every `GET` with `200 stub`, optionally
/// stalling every `slow_every`-th request.
struct Stub {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Stub {
    fn spawn(slow_every: Option<u64>, stall: Duration) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("stub bind");
        listener.set_nonblocking(true).expect("stub nonblocking");
        let addr = listener.local_addr().expect("stub addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let hits = Arc::new(AtomicU64::new(0));
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let hits = Arc::clone(&hits);
                            // One thread per connection so an abandoned
                            // hedge loser can't serialize later requests.
                            std::thread::spawn(move || {
                                serve_stub(stream, &hits, slow_every, stall);
                            });
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
        };
        Self {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_stub(mut stream: TcpStream, hits: &AtomicU64, slow_every: Option<u64>, stall: Duration) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(n) if n > 0 => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => return,
        }
    }
    let n = hits.fetch_add(1, Ordering::Relaxed);
    if slow_every.is_some_and(|every| n.is_multiple_of(every)) {
        std::thread::sleep(stall);
    }
    let body = "stub\n";
    // Single write_all so Nagle + delayed-ACK can't stall the reply.
    let wire = format!(
        "HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(wire.as_bytes());
}

/// Find a request path whose consistent-hash primary is backend 0 (the
/// bimodal stub), using the same ring the gateway builds.
fn path_routed_to_primary(addrs: &[SocketAddr]) -> String {
    let labels: Vec<String> = addrs.iter().map(ToString::to_string).collect();
    let ring = HashRing::new(&labels);
    (0..10_000)
        .map(|i| format!("/bench/key-{i}"))
        .find(|path| ring.primary(&routing_key(path)) == 0)
        .expect("some key routes to backend 0")
}

fn gateway_config(hedge: bool) -> GatewayConfig {
    GatewayConfig {
        workers: 4,
        queue: 64,
        // Passive health only: probes would add jitter to the measurement.
        probe_interval: None,
        backend_timeout: Duration::from_secs(5),
        policy: RoutePolicy {
            hedge,
            hedge_floor: Duration::from_millis(2),
            ..RoutePolicy::default()
        },
        ..GatewayConfig::default()
    }
}

const STALL: Duration = Duration::from_millis(25);
const SLOW_EVERY: u64 = 10;
const SWEEP: usize = 300;

fn sweep(conn: &mut Connection, path: &str, n: usize) -> Vec<u64> {
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let reply = conn.get(path).expect("gateway reply");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        latencies.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    latencies.sort_unstable();
    latencies
}

fn bench_hedging(c: &mut Criterion) {
    let bimodal = Stub::spawn(Some(SLOW_EVERY), STALL);
    let fast = Stub::spawn(None, STALL);
    let addrs = vec![bimodal.addr, fast.addr];
    let path = path_routed_to_primary(&addrs);

    let hedged = Gateway::start(gateway_config(true), addrs.clone()).expect("hedged gateway");
    let unhedged = Gateway::start(gateway_config(false), addrs.clone()).expect("unhedged gateway");

    let timeout = Duration::from_secs(10);
    let mut hedged_conn = Connection::new(hedged.addr(), timeout);
    let mut unhedged_conn = Connection::new(unhedged.addr(), timeout);

    // Warm the primary's latency window so the hedge threshold reflects its
    // typical (fast) behaviour rather than the floor default alone.
    let _ = sweep(&mut hedged_conn, &path, 50);
    let _ = sweep(&mut unhedged_conn, &path, 50);

    let hedged_lat = sweep(&mut hedged_conn, &path, SWEEP);
    let unhedged_lat = sweep(&mut unhedged_conn, &path, SWEEP);
    let hedges = hedged.router().metrics.hedges.get();
    let hedge_wins = hedged.router().metrics.hedge_wins.get();

    println!("--- hedging tail-latency comparison ({SWEEP} requests, 1-in-{SLOW_EVERY} stalls {STALL:?}) ---");
    println!(
        "unhedged: p50 {:>6} us  p99 {:>6} us",
        quantile(&unhedged_lat, 0.50),
        quantile(&unhedged_lat, 0.99),
    );
    println!(
        "hedged:   p50 {:>6} us  p99 {:>6} us  ({hedges} hedges, {hedge_wins} wins)",
        quantile(&hedged_lat, 0.50),
        quantile(&hedged_lat, 0.99),
    );
    assert!(
        quantile(&hedged_lat, 0.99) < quantile(&unhedged_lat, 0.99),
        "hedging should cut p99: hedged {} us vs unhedged {} us",
        quantile(&hedged_lat, 0.99),
        quantile(&unhedged_lat, 0.99),
    );

    let mut group = c.benchmark_group("gateway");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("proxied_get_hedged", |b| {
        b.iter(|| hedged_conn.get(&path).expect("reply"));
    });
    group.bench_function("proxied_get_unhedged", |b| {
        b.iter(|| unhedged_conn.get(&path).expect("reply"));
    });
    group.finish();

    drop(hedged_conn);
    drop(unhedged_conn);
    hedged.join();
    unhedged.join();
    bimodal.stop();
    fast.stop();
}

criterion_group!(benches, bench_hedging);
criterion_main!(benches);
