//! End-to-end tracing and versioned-surface acceptance: one gateway-routed
//! request must yield exactly one trace id, visible with its span tree in
//! BOTH tiers' `/v1/tracez`, and both tiers' `/v1/metricsz` must round-trip
//! through the shared strict exposition parser.

use std::time::Duration;

use cactus_bench::store::save_set_in;
use cactus_bench::ProfiledWorkload;
use cactus_core::SuiteScale;
use cactus_gateway::{Gateway, GatewayConfig, RoutePolicy};
use cactus_obs::{expo, SpanRecord, TraceId, TRACE_HEADER};
use cactus_serve::{Client, DeviceId, ServeConfig, Server};

/// Resolve a catalog id for query literals.
fn dev(slug: &str) -> DeviceId {
    DeviceId::resolve(slug).expect("catalog id")
}

/// One in-process serve backend (store-seeded so requests are cheap) behind
/// one gateway. In-process rather than supervised, so the test can read the
/// backend's tracer directly.
fn start_pair() -> (Gateway, Server, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("cactus-trace-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let profile = cactus_core::run("GMS", SuiteScale::Tiny);
    save_set_in(
        &dir,
        "cactus",
        &[ProfiledWorkload {
            name: "GMS".to_owned(),
            suite: "Cactus".to_owned(),
            profile,
            memo: None,
        }],
    )
    .expect("seed store");

    let backend = Server::start(ServeConfig {
        workers: 2,
        queue: 16,
        store_dir: Some(dir.clone()),
        // Disable the response cache (and with it the startup warmer) so a
        // routed request exercises the store path and files its span tree.
        cache_capacity: 0,
        ..ServeConfig::default()
    })
    .expect("start backend");

    let gateway = Gateway::start(
        GatewayConfig {
            workers: 2,
            probe_interval: None,
            policy: RoutePolicy {
                hedge: false,
                ..RoutePolicy::default()
            },
            ..GatewayConfig::default()
        },
        vec![backend.addr()],
    )
    .expect("start gateway");

    (gateway, backend, dir)
}

/// Parse the trace ids out of a `/v1/tracez` ndjson body.
fn trace_ids(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("{\"trace\":\"")?;
            Some(rest[..16].to_owned())
        })
        .collect()
}

#[test]
fn one_request_yields_one_trace_across_both_tiers() {
    let (gateway, backend, dir) = start_pair();
    let client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(60));

    // Pin the trace id client-side so the assertion is deterministic even
    // if unrelated requests (none here) share the ring.
    let trace = TraceId::parse("00000000deadbeef").expect("valid id");
    let reply = client
        .get_traced("/v1/profile/rtx-3080/profile/GMS", Some(trace))
        .expect("routed request");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(
        reply.header(TRACE_HEADER),
        Some(trace.to_string().as_str()),
        "gateway must echo the propagated trace id"
    );

    // The same single id appears in the gateway's ring...
    let gw_spans = gateway.tracer().spans_for(trace);
    assert!(
        !gw_spans.is_empty(),
        "gateway recorded no spans for the trace"
    );
    let route = find(&gw_spans, "gateway.route");
    let attempt = find(&gw_spans, "proxy.attempt");
    assert_eq!(route.parent_id, 0, "gateway.route is the root span");
    assert_eq!(
        attempt.parent_id, route.span_id,
        "proxy.attempt hangs off gateway.route"
    );

    // ...and in the backend's ring, with the serve-side stages under it.
    let be_spans = backend.state().tracer.spans_for(trace);
    let request = find(&be_spans, "serve.request");
    let cache = find(&be_spans, "serve.cache");
    let store = find(&be_spans, "serve.profile");
    assert_eq!(request.parent_id, 0, "serve.request roots the backend tree");
    assert_eq!(cache.parent_id, request.span_id);
    assert_eq!(store.parent_id, request.span_id);
    assert!(
        find(&be_spans, "serve.store").parent_id == store.span_id,
        "store load nested under serve.profile"
    );

    // Exactly one distinct id flowed through both tiers.
    let gw_page = gateway.tracer().render(Some(trace));
    let be_page = backend.state().tracer.render(Some(trace));
    for page in [&gw_page, &be_page] {
        let ids = trace_ids(page);
        assert!(!ids.is_empty());
        assert!(
            ids.iter().all(|id| id == &trace.to_string()),
            "foreign ids leaked into the filtered view: {ids:?}"
        );
    }

    // /v1/tracez serves the same filtered view over HTTP on both tiers.
    let gw_tracez = client
        .get(&format!("/v1/tracez?trace={trace}"))
        .expect("gateway tracez");
    assert_eq!(gw_tracez.status, 200);
    assert!(gw_tracez.body.contains("gateway.route"));
    let be_client = Client::new(backend.addr()).with_timeout(Duration::from_secs(10));
    let be_tracez = be_client
        .get(&format!("/v1/tracez?trace={trace}"))
        .expect("backend tracez");
    assert_eq!(be_tracez.status, 200);
    assert!(be_tracez.body.contains("serve.request"));

    gateway.join();
    backend.join();
    let _ = std::fs::remove_dir_all(&dir);
}

fn find<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("span {name} missing in {spans:?}"))
}

#[test]
fn both_metricsz_pages_parse_with_the_shared_parser() {
    let (gateway, backend, dir) = start_pair();
    let gw_client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(60));
    let be_client = Client::new(backend.addr()).with_timeout(Duration::from_secs(10));

    let reply = gw_client
        .get("/v1/profile/rtx-3080/profile/GMS")
        .expect("routed request");
    assert_eq!(reply.status, 200);

    // Client::metrics goes through cactus_obs::expo::parse — strict.
    let gw = gw_client.metrics().expect("gateway page parses strictly");
    assert_eq!(gw.get("cactus_gateway_requests_forwarded_total"), Some(1.0));
    assert_eq!(gw.get("cactus_gateway_backend_0_routed_total"), Some(1.0));
    let be = be_client.metrics().expect("backend page parses strictly");
    assert!(be.get("cactus_serve_requests_total").unwrap_or(0.0) >= 1.0);
    assert_eq!(be.get("cactus_serve_store_hits_total"), Some(1.0));

    // Raw pages parse through the same free function (what obs-check runs).
    for (client, tier) in [(&gw_client, "gateway"), (&be_client, "serve")] {
        for path in ["/v1/metricsz", "/metricsz"] {
            let page = client.get(path).expect("scrape");
            assert_eq!(page.status, 200, "{tier} {path}");
            expo::parse(&page.body)
                .unwrap_or_else(|e| panic!("{tier} {path} failed strict parse: {e}"));
        }
        // Legacy and versioned health aliases both answer.
        for path in ["/healthz", "/v1/healthz"] {
            assert_eq!(client.get(path).expect("healthz").status, 200, "{tier}");
        }
    }

    gateway.join();
    backend.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gateway_maps_unroutable_requests_onto_the_envelope() {
    let (gateway, backend, dir) = start_pair();
    // Kill the backend so every attempt fails.
    backend.shutdown();
    backend.join();

    let client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(30));
    let err = client
        .profile(cactus_serve::ProfileQuery {
            device: dev("rtx-3080"),
            scale: "profile",
            workload: "GMS",
        })
        .expect_err("dead fleet cannot serve");
    match err {
        cactus_serve::client::ClientError::Api(e) => {
            assert_eq!(e.code, 502);
            assert!(e.retryable, "502 from the gateway is retryable");
            assert!(e.message.contains("all backends failed"), "{}", e.message);
        }
        other => panic!("expected the JSON envelope, got {other:?}"),
    }

    gateway.join();
    let _ = std::fs::remove_dir_all(&dir);
}
