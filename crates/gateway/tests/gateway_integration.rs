//! End-to-end failover: a 3-backend supervised fleet behind one gateway.
//!
//! The acceptance sequence, in one test (the phases share expensive fleet
//! state and must happen in order):
//!
//! 1. **Balance** — a sweep over every store-backed profile key returns
//!    `200` and spreads across all three shards, with no shard owning more
//!    than half the sweep.
//! 2. **Failover** — one backend is killed mid-run; re-sweeping every key
//!    still returns `200` for every request (retries re-route around the
//!    dead shard), the gateway records at least one retry and one ejection,
//!    and per-backend route counts keep summing to the forwarded total.
//! 3. **Recovery** — the killed backend restarts on its pinned port; the
//!    half-open trial re-admits it and traffic lands on it again.
//!
//! The fleet serves entirely from a seeded profile store (no simulations),
//! so the test exercises routing machinery, not simulator throughput. The
//! gateway runs passive-only health (no active probes) so the retry and
//! ejection counts asserted below are deterministic consequences of the
//! data path, not races against a prober.

use std::time::{Duration, Instant};

use cactus_bench::store::save_set_in;
use cactus_bench::ProfiledWorkload;
use cactus_core::{workloads, SuiteScale};
use cactus_gateway::{Gateway, GatewayConfig, HealthState, RoutePolicy, Supervisor};
use cactus_serve::{Connection, ServeConfig};

/// Seed a store directory where every Cactus workload and 20 PRT
/// benchmarks resolve at `rtx-3080/profile` scale without simulating. The
/// profile *content* is shared (one cheap tiny simulation) — the routing
/// tier never looks inside it.
fn seed_store(dir: &std::path::Path) -> Vec<String> {
    let profile = cactus_core::run("GMS", SuiteScale::Tiny);
    let mut names = Vec::new();

    let cactus_set: Vec<ProfiledWorkload> = workloads::suite()
        .into_iter()
        .map(|w| {
            names.push(w.abbr.to_owned());
            ProfiledWorkload {
                name: w.abbr.to_owned(),
                suite: "Cactus".to_owned(),
                profile: profile.clone(),
                memo: None,
            }
        })
        .collect();
    save_set_in(dir, "cactus", &cactus_set).expect("seed cactus set");

    let prt_set: Vec<ProfiledWorkload> = cactus_suites::all()
        .into_iter()
        .take(20)
        .map(|b| {
            names.push(b.name.to_owned());
            ProfiledWorkload {
                name: b.name.to_owned(),
                suite: format!("{:?}", b.suite),
                profile: profile.clone(),
                memo: None,
            }
        })
        .collect();
    save_set_in(dir, "prt", &prt_set).expect("seed prt set");

    names
}

/// The request sweep: every seeded workload through every read endpoint,
/// all resolving against the store.
fn sweep_paths(names: &[String]) -> Vec<String> {
    let mut paths = Vec::new();
    for endpoint in ["profile", "kernels", "roofline", "dominant"] {
        for name in names {
            paths.push(format!("/v1/{endpoint}/rtx-3080/profile/{name}"));
        }
    }
    paths
}

fn routed_counts(gateway: &Gateway) -> Vec<u64> {
    gateway
        .router()
        .metrics
        .backends
        .iter()
        .map(|b| b.routed.get())
        .collect()
}

#[test]
fn failover_balance_and_recovery() {
    let dir = std::env::temp_dir().join(format!("cactus-gateway-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let names = seed_store(&dir);
    let paths = sweep_paths(&names);
    assert!(paths.len() >= 30, "sweep must cover at least 30 keys");

    let fleet = Supervisor::spawn_fleet(
        3,
        &ServeConfig {
            workers: 2,
            queue: 32,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fleet");
    let addrs = fleet.addrs();

    let gateway = Gateway::start(
        GatewayConfig {
            workers: 4,
            queue: 64,
            eject_after: 2,
            // Long enough that the victim stays Ejected through the phase-2
            // sweep and assertions; short enough that recovery is quick.
            cooldown: Duration::from_secs(2),
            probe_interval: None, // passive-only: see module docs
            backend_timeout: Duration::from_secs(30),
            policy: RoutePolicy {
                hedge: false,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(10),
                ..RoutePolicy::default()
            },
            ..GatewayConfig::default()
        },
        addrs.clone(),
    )
    .expect("start gateway");
    let mut conn = Connection::new(gateway.addr(), Duration::from_secs(60));

    // --- Phase 1: balance. Every key answers 200 through the gateway and
    // the ring spreads the sweep across all three shards.
    for path in &paths {
        let reply = conn.get(path).expect("sweep reply");
        assert_eq!(reply.status, 200, "{path} -> {}", reply.body);
    }
    let routed = routed_counts(&gateway);
    let total: u64 = routed.iter().sum();
    assert_eq!(
        total,
        paths.len() as u64,
        "route counts must sum to the forwarded total: {routed:?}"
    );
    assert_eq!(total, gateway.router().metrics.forwarded.get());
    for (i, &count) in routed.iter().enumerate() {
        assert!(count > 0, "backend {i} received no traffic: {routed:?}");
        assert!(
            count * 2 < total,
            "backend {i} owns over half the sweep ({count}/{total}): ring is skewed"
        );
    }

    // --- Phase 2: failover. Kill the busiest backend mid-run; every key
    // must still answer 200 via ejection + re-routing.
    let victim = routed
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .expect("non-empty fleet");
    fleet.kill(victim);

    for path in &paths {
        let reply = conn.get(path).expect("failover sweep reply");
        assert_eq!(
            reply.status, 200,
            "{path} must survive a dead backend -> {}",
            reply.body
        );
    }
    let metrics = &gateway.router().metrics;
    assert!(
        metrics.retries.get() >= 1,
        "the first failed attempt on the dead backend must be retried"
    );
    assert!(
        gateway.router().health.ejections() >= 1,
        "repeated failures must eject the dead backend"
    );
    assert_eq!(
        gateway.router().health.state(victim),
        HealthState::Ejected,
        "victim must be out of rotation"
    );
    let routed_after = routed_counts(&gateway);
    assert_eq!(
        routed_after.iter().sum::<u64>(),
        metrics.forwarded.get(),
        "route counts must keep summing to the forwarded total"
    );

    // The gateway's own scrape endpoint reports the same story.
    let scrape = conn.get("/metricsz").expect("metricsz");
    assert_eq!(scrape.status, 200);
    let field = |name: &str| -> u64 {
        scrape
            .body
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{}", scrape.body))
    };
    assert!(field("cactus_gateway_ejections_total ") >= 1);
    assert!(field("cactus_gateway_retries_total ") >= 1);
    assert_eq!(
        field(&format!("cactus_gateway_backend_{victim}_state ")),
        1,
        "victim must scrape as ejected"
    );

    // --- Phase 3: recovery. Restart the victim on its pinned port; the
    // cooldown opens a half-open trial and routed traffic re-admits it.
    fleet
        .restart(victim)
        .expect("restart victim on pinned port");
    let victim_routed_before = routed_after[victim];
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut readmitted = false;
    while Instant::now() < deadline {
        for path in &paths {
            let reply = conn.get(path).expect("recovery sweep reply");
            assert_eq!(reply.status, 200, "{path} during recovery");
        }
        if gateway.router().health.state(victim) == HealthState::Healthy {
            readmitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        readmitted,
        "restarted backend must pass its half-open trial and return to rotation"
    );
    assert!(
        routed_counts(&gateway)[victim] > victim_routed_before,
        "re-admitted backend must receive traffic again"
    );

    gateway.join();
    fleet.shutdown_all();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Non-profile routes proxy through verbatim: a backend 404 reaches the
/// client as a 404 with the backend's body, and the catalog endpoint works
/// end to end.
#[test]
fn gateway_proxies_non_shard_routes_verbatim() {
    let dir = std::env::temp_dir().join(format!("cactus-gateway-it-misc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fleet = Supervisor::spawn_fleet(
        2,
        &ServeConfig {
            workers: 1,
            queue: 8,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fleet");

    let gateway = Gateway::start(
        GatewayConfig {
            workers: 2,
            probe_interval: None,
            ..GatewayConfig::default()
        },
        fleet.addrs(),
    )
    .expect("start gateway");
    let mut conn = Connection::new(gateway.addr(), Duration::from_secs(30));

    let catalog = conn.get("/v1/workloads").expect("catalog via gateway");
    assert_eq!(catalog.status, 200);
    assert!(
        catalog.body.contains("Cactus,GMS"),
        "catalog proxied intact"
    );

    let missing = conn.get("/nope").expect("404 via gateway");
    assert_eq!(missing.status, 404, "backend 404 forwarded verbatim");
    assert!(missing.body.contains("unknown route"));

    let health = conn.get("/healthz").expect("gateway healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n", "healthz is answered locally");

    gateway.join();
    fleet.shutdown_all();
    let _ = std::fs::remove_dir_all(&dir);
}
