//! End-to-end acceptance for submitted IR workloads: a definition posted
//! once through the gateway becomes servable on every backend (the
//! broadcast persists it fleet-wide), its profile is deterministic across
//! repeated reads, and a seeded-defect definition is refused at the edge
//! with the validator's line-accurate findings.

use std::time::Duration;

use cactus_gateway::{Gateway, GatewayConfig, RoutePolicy, Supervisor};
use cactus_serve::{Client, ServeConfig};

fn gnn_source() -> String {
    std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../wir/defs/gnn.wir"),
    )
    .expect("read shipped gnn definition")
}

#[test]
fn gateway_submission_is_fleet_wide_and_deterministic() {
    let dir = std::env::temp_dir().join(format!("cactus-wir-submit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fleet = Supervisor::spawn_fleet(
        2,
        &ServeConfig {
            workers: 2,
            queue: 16,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fleet");
    let gateway = Gateway::start(
        GatewayConfig {
            workers: 2,
            policy: RoutePolicy {
                hedge: false,
                ..RoutePolicy::default()
            },
            ..GatewayConfig::default()
        },
        fleet.addrs(),
    )
    .expect("start gateway");
    let client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(120));

    // A seeded defect is rejected at the edge with the findings envelope —
    // the broadcast returns the first backend's deterministic verdict.
    let bad = "workload \"bad\" {\n  run { launch ghost; }\n}\n";
    let reply = client
        .post_traced("/v1/workloads", bad, None)
        .expect("post invalid via gateway");
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert!(reply.body.contains("\"pass\":\"types\""), "{}", reply.body);
    assert!(reply.body.contains("\"line\":2"), "{}", reply.body);

    // One POST through the gateway registers the GNN family fleet-wide.
    let gnn = gnn_source();
    let reply = client
        .post_traced("/v1/workloads", &gnn, None)
        .expect("post gnn via gateway");
    assert_eq!(reply.status, 200, "{}", reply.body);

    // Every backend now lists and serves the workload — whatever backend
    // the ring picks, the profile must come back, and repeated reads must
    // be byte-identical (the determinism acceptance criterion).
    for (i, addr) in fleet.addrs().iter().enumerate() {
        let direct = Client::new(*addr).with_timeout(Duration::from_secs(120));
        let catalog = direct.get("/v1/workloads").expect("backend catalog");
        assert!(
            catalog.body.contains("WIR,gnn"),
            "backend {i} missing gnn:\n{}",
            catalog.body
        );
    }
    let first = client
        .get("/v1/profile/rtx-3080/small/gnn")
        .expect("gnn profile via gateway");
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(
        first.body.contains("gnn_gather_scatter"),
        "small scale must take the high-degree arm:\n{}",
        first.body
    );
    let second = client
        .get("/v1/profile/rtx-3080/small/gnn")
        .expect("gnn profile again");
    assert_eq!(second.status, 200);
    assert_eq!(first.body, second.body, "profiles must be deterministic");

    // The kernel CSV routes work for submitted workloads too.
    let kernels = client
        .get("/v1/kernels/rtx-3080/tiny/gnn")
        .expect("gnn kernels");
    assert_eq!(kernels.status, 200, "{}", kernels.body);
    assert!(
        kernels.body.contains("gnn_gather_local"),
        "{}",
        kernels.body
    );

    gateway.join();
    fleet.shutdown_all();
    let _ = std::fs::remove_dir_all(&dir);
}
