//! End-to-end heterogeneous routing: a 3-backend fleet where the slots
//! model different catalog devices, behind one device-aware gateway.
//!
//! The acceptance claims, in one test (the phases share fleet state and
//! must happen in order):
//!
//! 1. **Placement** — requests for a device land only on backends that
//!    model it; the incapable shard's routed counter never moves.
//! 2. **Catalog surfaces** — the gateway's `/v1/devices` reports the fleet
//!    union; unknown devices answer the JSON envelope at the edge without
//!    burning a backend attempt; catalog devices nobody models answer the
//!    router's synthesized `404`.
//! 3. **Compare** — `/v1/compare` across two devices answers one table
//!    whose per-device rows are byte-identical to each backend's own
//!    `/v1/roofline` rows, and the typed client parses it.
//! 4. **Capable-only failover** — killing one of two capable shards
//!    re-routes onto the surviving capable shard only; the incapable shard
//!    still receives nothing.
//!
//! The fleet serves entirely from seeded profile stores and runs
//! passive-only health, so every asserted counter is a deterministic
//! consequence of the data path.

use std::time::Duration;

use cactus_bench::store::save_set_for;
use cactus_bench::ProfiledWorkload;
use cactus_core::{workloads, SuiteScale};
use cactus_gateway::{Gateway, GatewayConfig, HealthState, RoutePolicy, Supervisor};
use cactus_serve::{Client, Connection, DeviceId, ServeConfig};

fn dev(slug: &str) -> DeviceId {
    DeviceId::resolve(slug).expect("catalog id")
}

/// Seed `dir/slot-<i>` with one profile set per device the slot models, so
/// every request resolves from the store without simulating.
fn seed_slots(dir: &std::path::Path, slot_devices: &[Vec<String>]) -> Vec<String> {
    let profile = cactus_core::run("GMS", SuiteScale::Tiny);
    let names: Vec<String> = workloads::suite()
        .into_iter()
        .map(|w| w.abbr.to_owned())
        .collect();
    let set: Vec<ProfiledWorkload> = names
        .iter()
        .map(|name| ProfiledWorkload {
            name: name.clone(),
            suite: "Cactus".to_owned(),
            profile: profile.clone(),
            memo: None,
        })
        .collect();
    for (i, devices) in slot_devices.iter().enumerate() {
        let slot_dir = dir.join(format!("slot-{i}"));
        for id in devices {
            let entry = cactus_gpu::by_id(id).expect("catalog id");
            save_set_for(&slot_dir, entry, "cactus", &set).expect("seed slot store");
        }
    }
    names
}

fn routed_counts(gateway: &Gateway) -> Vec<u64> {
    gateway
        .router()
        .metrics
        .backends
        .iter()
        .map(|b| b.routed.get())
        .collect()
}

#[test]
fn heterogeneous_fleet_routes_compares_and_fails_over_by_capability() {
    let dir = std::env::temp_dir().join(format!("cactus-hetero-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Slot 2 is the only home of uhd-630; rtx-3080 has two homes so it can
    // fail over. rtx-3060 rides along on slot 0. a100 stays unmodeled.
    let slot_devices: Vec<Vec<String>> = vec![
        vec!["rtx-3080".to_owned(), "rtx-3060".to_owned()],
        vec!["rtx-3080".to_owned()],
        vec!["uhd-630".to_owned()],
    ];
    let names = seed_slots(&dir, &slot_devices);

    let fleet = Supervisor::spawn_heterogeneous(
        &slot_devices,
        &ServeConfig {
            workers: 2,
            queue: 32,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fleet");

    let gateway = Gateway::start(
        GatewayConfig {
            workers: 4,
            queue: 64,
            eject_after: 2,
            cooldown: Duration::from_secs(5),
            probe_interval: None, // capabilities come from startup discovery
            backend_timeout: Duration::from_secs(30),
            policy: RoutePolicy {
                hedge: false,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(10),
                ..RoutePolicy::default()
            },
            ..GatewayConfig::default()
        },
        fleet.addrs(),
    )
    .expect("start gateway");
    let mut conn = Connection::new(gateway.addr(), Duration::from_secs(60));
    let client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(60));

    // Startup discovery saw all three healthy backends.
    for (i, devices) in slot_devices.iter().enumerate() {
        let mut want = devices.clone();
        want.sort();
        assert_eq!(
            gateway.router().capabilities.devices(i),
            Some(want),
            "backend {i} capabilities discovered at startup"
        );
    }

    // --- Phase 1: placement. rtx-3080 traffic never reaches slot 2;
    // uhd-630 traffic reaches only slot 2.
    for endpoint in ["profile", "kernels", "roofline", "dominant"] {
        for name in &names {
            let reply = conn
                .get(&format!("/v1/{endpoint}/rtx-3080/profile/{name}"))
                .expect("rtx sweep");
            assert_eq!(reply.status, 200, "{endpoint}/{name}: {}", reply.body);
        }
    }
    let after_rtx = routed_counts(&gateway);
    assert_eq!(
        after_rtx[2], 0,
        "slot 2 does not model rtx-3080 and must receive none of its sweep"
    );
    assert!(after_rtx[0] > 0 && after_rtx[1] > 0, "{after_rtx:?}");

    for name in &names {
        let reply = conn
            .get(&format!("/v1/profile/uhd-630/profile/{name}"))
            .expect("uhd sweep");
        assert_eq!(reply.status, 200, "uhd-630/{name}: {}", reply.body);
    }
    let after_uhd = routed_counts(&gateway);
    assert_eq!(after_uhd[0], after_rtx[0], "slot 0 got no uhd-630 traffic");
    assert_eq!(after_uhd[1], after_rtx[1], "slot 1 got no uhd-630 traffic");
    assert_eq!(
        after_uhd[2],
        names.len() as u64,
        "slot 2 owns the whole uhd-630 sweep"
    );

    // --- Phase 2: catalog surfaces. The fleet /v1/devices view parses
    // with the same typed client as a single backend's.
    let entries = client.devices().expect("fleet devices page");
    assert_eq!(entries.len(), cactus_gpu::CATALOG.len());
    let modeled: Vec<&str> = entries
        .iter()
        .filter(|e| e.modeled)
        .map(|e| e.id.as_str())
        .collect();
    assert_eq!(modeled, vec!["rtx-3080", "rtx-3060", "uhd-630"]);

    // Unknown device: answered at the edge, no backend attempt spent.
    let forwarded_before = gateway.router().metrics.forwarded.get();
    let unknown = conn
        .get("/v1/profile/rtx-9090/profile/GMS")
        .expect("unknown device");
    assert_eq!(unknown.status, 404);
    assert!(
        unknown.body.contains("unknown device") && unknown.body.contains("\"code\":404"),
        "edge envelope, got {}",
        unknown.body
    );
    assert_eq!(gateway.router().metrics.forwarded.get(), forwarded_before);

    // Catalog device nobody models: the router's synthesized 404.
    let orphan = conn
        .get("/v1/profile/a100/profile/GMS")
        .expect("unmodeled device");
    assert_eq!(orphan.status, 404);
    assert!(
        orphan
            .body
            .contains("no backend in the fleet models device"),
        "got {}",
        orphan.body
    );

    // --- Phase 3: compare. Per-device rows are byte-identical to each
    // backend's own /v1/roofline answer for the same triple.
    let compare_csv = conn
        .get("/v1/compare/profile/GMS?devices=rtx-3080,uhd-630&format=csv")
        .expect("compare csv");
    assert_eq!(compare_csv.status, 200, "{}", compare_csv.body);
    for device in ["rtx-3080", "uhd-630"] {
        let roofline = conn
            .get(&format!("/v1/roofline/{device}/profile/GMS"))
            .expect("single-device roofline");
        assert_eq!(roofline.status, 200);
        let single_rows: Vec<&str> = roofline
            .body
            .lines()
            .skip(1) // header
            .collect();
        let compare_rows: Vec<String> = compare_csv
            .body
            .lines()
            .filter(|l| l.starts_with(&format!("{device},")))
            .map(|l| {
                // Strip the leading device column and the trailing
                // bottleneck_shift column; what remains is a roofline row.
                let rest = &l[device.len() + 1..];
                rest.rsplit_once(',').expect("shift column").0.to_owned()
            })
            .collect();
        assert_eq!(
            compare_rows, single_rows,
            "{device} rows in /v1/compare must be byte-identical to /v1/roofline"
        );
    }
    assert!(compare_csv.body.contains("# baseline: rtx-3080"));
    assert!(compare_csv
        .body
        .contains("# speedup_vs_baseline rtx-3080 1.000000"));

    // The typed client parses the same table.
    let rows = client
        .compare("profile", "GMS", &[dev("rtx-3080"), dev("uhd-630")])
        .expect("typed compare");
    assert!(!rows.is_empty());
    assert!(rows.iter().any(|r| r.device.as_str() == "uhd-630"));
    // The seeded profile is identical on both devices, but the rooflines
    // differ enormously (discrete vs integrated): every kernel's placement
    // is computed per device, so at least one boundedness class shifts.
    assert!(
        rows.iter().any(|r| r.bottleneck_shift),
        "rtx-3080 vs uhd-630 must shift at least one kernel's bottleneck"
    );

    // Compare input errors: unknown device, too few devices.
    let bad = conn
        .get("/v1/compare/profile/GMS?devices=rtx-3080,rtx-9090")
        .expect("compare unknown device");
    assert_eq!(bad.status, 404);
    assert!(bad.body.contains("unknown device"));
    let lonely = conn
        .get("/v1/compare/profile/GMS?devices=rtx-3080")
        .expect("compare one device");
    assert_eq!(lonely.status, 400);
    assert!(lonely.body.contains("at least two"));
    // A device nobody models fails the leg with the router's 404.
    let orphan_cmp = conn
        .get("/v1/compare/profile/GMS?devices=rtx-3080,a100")
        .expect("compare unmodeled device");
    assert_eq!(orphan_cmp.status, 404);
    assert!(orphan_cmp.body.contains("no backend in the fleet models"));

    // --- Phase 4: capable-only failover. Kill one rtx-3080 home; the
    // other absorbs the sweep; the incapable slot still gets nothing.
    let before_kill = routed_counts(&gateway);
    fleet.kill(1);
    for endpoint in ["profile", "kernels", "roofline", "dominant"] {
        for name in &names {
            let reply = conn
                .get(&format!("/v1/{endpoint}/rtx-3080/profile/{name}"))
                .expect("failover sweep");
            assert_eq!(
                reply.status, 200,
                "{endpoint}/{name} must survive a dead capable backend: {}",
                reply.body
            );
        }
    }
    let after_kill = routed_counts(&gateway);
    assert_eq!(
        after_kill[2], before_kill[2],
        "failover must stay within capable backends; slot 2 got traffic"
    );
    assert!(
        after_kill[0] > before_kill[0],
        "the surviving rtx-3080 home absorbs the sweep"
    );
    assert_eq!(
        gateway.router().health.state(1),
        HealthState::Ejected,
        "the dead capable backend is ejected"
    );
    // uhd-630 is untouched by the rtx-3080 failover.
    let reply = conn
        .get("/v1/profile/uhd-630/profile/GMS")
        .expect("uhd after kill");
    assert_eq!(reply.status, 200);

    gateway.join();
    fleet.shutdown_all();
    let _ = std::fs::remove_dir_all(&dir);
}
