//! Store replication and anti-entropy acceptance: a 3-backend fleet must
//! survive losing a profile's owning shard with zero client-visible errors
//! (the follower replica holds the record), and a restarted owner must be
//! repaired back to a converged fleet manifest by one anti-entropy pass.

use std::time::{Duration, Instant};

use cactus_gateway::{Gateway, GatewayConfig, RoutePolicy, Supervisor};
use cactus_serve::{Client, ServeConfig};

fn fleet_config(store_dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue: 16,
        store_dir: Some(store_dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn gateway_config() -> GatewayConfig {
    GatewayConfig {
        workers: 2,
        // Fast failure detection and recovery so the test converges in
        // seconds: probes every 100ms, one failure ejects, 200ms cooldown.
        eject_after: 1,
        cooldown: Duration::from_millis(200),
        probe_interval: Some(Duration::from_millis(100)),
        probe_timeout: Duration::from_millis(500),
        policy: RoutePolicy {
            hedge: false,
            ..RoutePolicy::default()
        },
        ..GatewayConfig::default()
    }
}

/// The `replicas=` list of the manifest `k` line for `key`.
fn replicas_of(manifest: &str, key: &str) -> Vec<usize> {
    let line = manifest
        .lines()
        .find(|l| l.starts_with(&format!("k {key} ")))
        .unwrap_or_else(|| panic!("key {key} missing from manifest:\n{manifest}"));
    let replicas = line
        .split_whitespace()
        .find_map(|f| f.strip_prefix("replicas="))
        .expect("replicas field");
    replicas
        .split(',')
        .map(|i| i.parse().expect("replica index"))
        .collect()
}

/// The `have=` list of the manifest `k` line for `key`.
fn holders_of(manifest: &str, key: &str) -> Vec<usize> {
    let line = manifest
        .lines()
        .find(|l| l.starts_with(&format!("k {key} ")))
        .unwrap_or_else(|| panic!("key {key} missing from manifest:\n{manifest}"));
    let have = line
        .split_whitespace()
        .find_map(|f| f.strip_prefix("have="))
        .expect("have field");
    if have == "-" {
        return Vec::new();
    }
    have.split(',').map(|i| i.parse().expect("index")).collect()
}

#[test]
fn killed_owner_serves_from_follower_and_antientropy_repairs_it() {
    let dir = std::env::temp_dir().join(format!("cactus-store-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fleet = Supervisor::spawn_fleet(3, &fleet_config(&dir)).expect("spawn fleet");
    let gateway = Gateway::start(gateway_config(), fleet.addrs()).expect("start gateway");
    let client = Client::new(gateway.addr()).with_timeout(Duration::from_secs(120));

    // Write one profile through the gateway: the owning shard simulates and
    // stores it, and the gateway synchronously copies the record to the
    // follower replica before the 200 reaches us.
    let key = "rtx-3080/tiny/GMS";
    let first = client
        .get("/v1/profile/rtx-3080/tiny/GMS")
        .expect("initial write-through");
    assert_eq!(first.status, 200, "body: {}", first.body);

    let manifest = client
        .get("/v1/store/manifest")
        .expect("fleet manifest")
        .body;
    assert!(
        manifest.starts_with("cactus-gateway store manifest v1\n"),
        "unexpected manifest:\n{manifest}"
    );
    let replicas = replicas_of(&manifest, key);
    assert_eq!(replicas.len(), 2, "two-way replication: {manifest}");
    let holders = holders_of(&manifest, key);
    for r in &replicas {
        assert!(
            holders.contains(r),
            "replica {r} lacks the record right after the write:\n{manifest}"
        );
    }
    assert!(
        manifest.contains("\nmissing 0\n"),
        "fleet not converged after the first write:\n{manifest}"
    );
    let owner = replicas[0];

    // Lose the owner. Every read must still succeed: the ring retries onto
    // the follower, whose store holds the replicated record.
    fleet.kill(owner);
    for i in 0..10 {
        let reply = client
            .get("/v1/profile/rtx-3080/tiny/GMS")
            .unwrap_or_else(|e| panic!("read {i} with dead owner: {e:?}"));
        assert_eq!(reply.status, 200, "read {i}: {}", reply.body);
    }

    // Write more profiles while the owner is down — some of their replica
    // sets will name the dead backend, which anti-entropy must repair.
    for device in ["rtx-2080-ti", "a100", "gtx-1080"] {
        let reply = client
            .get(&format!("/v1/profile/{device}/tiny/GMS"))
            .expect("write with one backend down");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
    }

    // Restart the owner and wait for the gateway to re-admit and repair it:
    // half-open trial passes -> anti-entropy streams the missed records ->
    // the fleet manifest reports every replica slot filled.
    fleet.restart(owner).expect("restart owner");
    let deadline = Instant::now() + Duration::from_secs(30);
    let converged = loop {
        let manifest = client
            .get("/v1/store/manifest")
            .expect("fleet manifest")
            .body;
        let all_reachable = !manifest.contains("digest=-");
        if all_reachable && manifest.contains("\nmissing 0\n") {
            break manifest;
        }
        assert!(
            Instant::now() < deadline,
            "fleet did not converge:\n{manifest}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    let holders = holders_of(&converged, key);
    assert!(
        holders.contains(&owner),
        "restarted owner not repaired:\n{converged}"
    );

    // The repair is visible in the gateway's own counters.
    let metrics = client.metrics().expect("gateway metrics");
    assert!(
        metrics
            .get("cactus_gateway_store_replications_total")
            .unwrap_or(0.0)
            >= 1.0,
        "write-path replication counted"
    );
    assert!(
        metrics
            .get("cactus_gateway_store_syncs_total")
            .unwrap_or(0.0)
            >= 1.0,
        "anti-entropy pass counted"
    );

    gateway.join();
    fleet.shutdown_all();
    let _ = std::fs::remove_dir_all(&dir);
}
