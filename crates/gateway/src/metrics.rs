//! Gateway observability: registry-backed counters, per-backend route
//! accounting, and the sliding latency windows that feed the hedging policy.
//!
//! Counters and the end-to-end latency histogram are handles into one
//! [`MetricsRegistry`] — `/v1/metricsz` renders through the same exposition
//! code as `cactus-serve`, so one scraper (and the shared strict parser)
//! handles the whole stack. Per-backend latency stays in a [`LatencyRing`]
//! rather than a histogram: the hedging policy needs exact sliding-window
//! quantiles of *recent* exchanges, which a cumulative histogram cannot
//! provide; its p90 is copied into a gauge at scrape time. The invariant a
//! scraper can assert: `cactus_gateway_requests_forwarded_total` equals the
//! sum of all `cactus_gateway_backend_<i>_routed_total`.

use std::net::SocketAddr;

use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::{Counter, Gauge, Histogram, MetricsRegistry, RegistryError};
use cactus_serve::metrics::quantile;

use crate::connpool::ConnPool;
use crate::health::{HealthState, HealthTracker};

/// Samples kept per sliding latency window.
pub const LATENCY_WINDOW: usize = 512;

/// A fixed-size sliding window of microsecond latencies; old samples are
/// overwritten, quantiles are computed over whatever is present.
#[derive(Debug)]
pub struct LatencyRing {
    samples: RankedMutex<(Vec<u64>, usize)>,
}

impl Default for LatencyRing {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRing {
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: RankedMutex::new(
                rank::LATENCY_WINDOW,
                "gateway.latency_ring",
                (Vec::with_capacity(LATENCY_WINDOW), 0),
            ),
        }
    }

    /// Record one latency sample in microseconds.
    pub fn record(&self, us: u64) {
        let mut guard = self.samples.lock();
        let (samples, next) = &mut *guard;
        if samples.len() < LATENCY_WINDOW {
            samples.push(us);
        } else {
            samples[*next] = us;
            *next = (*next + 1) % LATENCY_WINDOW;
        }
    }

    /// The `q`-quantile (0.0..=1.0) of the current window, in microseconds;
    /// `None` while the window is empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let guard = self.samples.lock();
        if guard.0.is_empty() {
            return None;
        }
        let mut sorted = guard.0.clone();
        sorted.sort_unstable();
        Some(quantile(&sorted, q))
    }

    /// Number of samples currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().0.len()
    }

    /// True when no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-backend route accounting.
#[derive(Debug)]
pub struct BackendMetrics {
    /// Requests whose winning response came from this backend.
    pub routed: Counter,
    /// Transport-level failures attempting this backend.
    pub failures: Counter,
    /// Latencies of successful exchanges with this backend (sliding window;
    /// feeds the hedge threshold).
    pub latency: LatencyRing,
}

/// Gauges whose sources live outside the registry (health tracker, conn
/// pool, latency rings); copied in at scrape time by [`render_metrics`].
#[derive(Debug)]
struct Scraped {
    ejections: Gauge,
    pool_dials: Gauge,
    pool_reuses: Gauge,
    backend_state: Vec<Gauge>,
    backend_latency_p90: Vec<Gauge>,
}

/// All gateway-level counters, shared across workers and registered in one
/// [`MetricsRegistry`] under `cactus_gateway_*` names.
#[derive(Debug)]
pub struct GatewayMetrics {
    registry: MetricsRegistry,
    /// Requests accepted by the gateway listener.
    pub requests: Counter,
    /// Responses by class: 2xx, 4xx, 5xx.
    pub responses_2xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
    /// Requests forwarded to some backend and answered (any status).
    pub forwarded: Counter,
    /// Attempts re-routed to another ring candidate after a retryable
    /// failure.
    pub retries: Counter,
    /// Hedge requests launched.
    pub hedges: Counter,
    /// Hedge requests whose response won the race.
    pub hedge_wins: Counter,
    /// Store records pushed to follower replicas after a profile forward.
    pub store_replications: Counter,
    /// Replica pushes that failed (transport error or non-200).
    pub store_replication_failures: Counter,
    /// Anti-entropy passes run for re-admitted backends.
    pub store_syncs: Counter,
    /// Records copied to re-admitted backends by anti-entropy.
    pub store_sync_records: Counter,
    /// `/v1/compare` requests answered (any status).
    pub compare_requests: Counter,
    /// Per-device profile fetches fanned out by `/v1/compare`.
    pub compare_fanout: Counter,
    /// `/v1/compare` requests that failed (bad input or a failed leg).
    pub compare_failures: Counter,
    /// End-to-end gateway latency (request read to response written), µs.
    pub latency: Histogram,
    /// Per-backend accounting, indexed by ring position.
    pub backends: Vec<BackendMetrics>,
    scraped: Scraped,
}

impl GatewayMetrics {
    /// Register every gateway metric for a fleet of `backends` in a fresh
    /// private registry.
    #[must_use]
    pub fn new(backends: usize) -> Self {
        // lint:allow(no_panic, fresh private registry cannot collide)
        Self::register(&MetricsRegistry::new(), backends).expect("fresh registry has no collisions")
    }

    /// Register every gateway metric in `registry`.
    ///
    /// # Errors
    ///
    /// Fails if any `cactus_gateway_*` name is already registered (one
    /// gateway per registry).
    pub fn register(registry: &MetricsRegistry, backends: usize) -> Result<Self, RegistryError> {
        let backend_metrics = (0..backends)
            .map(|i| {
                Ok(BackendMetrics {
                    routed: registry.counter(
                        &format!("cactus_gateway_backend_{i}_routed_total"),
                        "requests whose winning response came from this backend",
                    )?,
                    failures: registry.counter(
                        &format!("cactus_gateway_backend_{i}_failures_total"),
                        "transport-level failures attempting this backend",
                    )?,
                    latency: LatencyRing::new(),
                })
            })
            .collect::<Result<Vec<_>, RegistryError>>()?;
        let scraped = Scraped {
            ejections: registry.gauge(
                "cactus_gateway_ejections_total",
                "backends ejected from rotation so far",
            )?,
            pool_dials: registry.gauge(
                "cactus_gateway_pool_dials_total",
                "backend connections dialed by the pool",
            )?,
            pool_reuses: registry.gauge(
                "cactus_gateway_pool_reuses_total",
                "backend exchanges served over a pooled connection",
            )?,
            backend_state: (0..backends)
                .map(|i| {
                    registry.gauge(
                        &format!("cactus_gateway_backend_{i}_state"),
                        "0 healthy, 1 ejected, 2 half-open",
                    )
                })
                .collect::<Result<Vec<_>, RegistryError>>()?,
            backend_latency_p90: (0..backends)
                .map(|i| {
                    registry.gauge(
                        &format!("cactus_gateway_backend_{i}_latency_p90_us"),
                        "p90 of this backend's sliding latency window, microseconds",
                    )
                })
                .collect::<Result<Vec<_>, RegistryError>>()?,
        };
        Ok(Self {
            registry: registry.clone(),
            requests: registry.counter(
                "cactus_gateway_requests_total",
                "requests accepted by the gateway listener",
            )?,
            responses_2xx: registry
                .counter("cactus_gateway_responses_2xx_total", "2xx responses")?,
            responses_4xx: registry
                .counter("cactus_gateway_responses_4xx_total", "4xx responses")?,
            responses_5xx: registry
                .counter("cactus_gateway_responses_5xx_total", "5xx responses")?,
            forwarded: registry.counter(
                "cactus_gateway_requests_forwarded_total",
                "requests forwarded to some backend and answered",
            )?,
            retries: registry.counter(
                "cactus_gateway_retries_total",
                "attempts re-routed after a retryable failure",
            )?,
            hedges: registry.counter("cactus_gateway_hedges_total", "hedge requests launched")?,
            hedge_wins: registry.counter(
                "cactus_gateway_hedge_wins_total",
                "hedge requests whose response won the race",
            )?,
            store_replications: registry.counter(
                "cactus_gateway_store_replications_total",
                "store records pushed to follower replicas",
            )?,
            store_replication_failures: registry.counter(
                "cactus_gateway_store_replication_failures_total",
                "replica pushes that failed",
            )?,
            store_syncs: registry.counter(
                "cactus_gateway_store_syncs_total",
                "anti-entropy passes for re-admitted backends",
            )?,
            store_sync_records: registry.counter(
                "cactus_gateway_store_sync_records_total",
                "records copied by anti-entropy",
            )?,
            compare_requests: registry.counter(
                "cactus_gateway_compare_requests_total",
                "cross-device compare requests answered",
            )?,
            compare_fanout: registry.counter(
                "cactus_gateway_compare_fanout_total",
                "per-device profile fetches fanned out by compare",
            )?,
            compare_failures: registry.counter(
                "cactus_gateway_compare_failures_total",
                "compare requests that failed",
            )?,
            latency: registry.histogram(
                "cactus_gateway_latency",
                "end-to-end gateway latency in microseconds",
            )?,
            backends: backend_metrics,
            scraped,
        })
    }

    /// The registry these metrics render through.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Bump the response-class counter for `status`.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.inc();
    }
}

fn state_code(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Ejected => 1,
        HealthState::HalfOpen => 2,
    }
}

/// Render the `/v1/metricsz` body: copy the externally-owned values (health
/// states, pool counters, ring quantiles) into their scrape gauges, then
/// hand the page to the shared registry renderer. The `# backend i = addr`
/// comment lines map ring indices to fleet addresses (comments are skipped
/// by the exposition parser).
#[must_use]
pub fn render_metrics(
    metrics: &GatewayMetrics,
    health: &HealthTracker,
    pool: &ConnPool,
    addrs: &[SocketAddr],
) -> String {
    metrics.scraped.ejections.set(health.ejections() as f64);
    metrics.scraped.pool_dials.set(pool.dials() as f64);
    metrics.scraped.pool_reuses.set(pool.reuses() as f64);
    for (i, b) in metrics.backends.iter().enumerate() {
        metrics.scraped.backend_state[i].set(f64::from(state_code(health.state(i))));
        metrics.scraped.backend_latency_p90[i].set(b.latency.quantile_us(0.90).unwrap_or(0) as f64);
    }
    let mut out = String::with_capacity(4096);
    for (i, addr) in addrs.iter().enumerate() {
        out.push_str(&format!("# backend {i} = {addr}\n"));
    }
    out.push_str(&metrics.registry.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn latency_ring_slides() {
        let ring = LatencyRing::new();
        assert!(ring.quantile_us(0.5).is_none());
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            ring.record(i);
        }
        assert_eq!(ring.len(), LATENCY_WINDOW);
        // Oldest samples (0..10) were overwritten, so the minimum survives
        // the slide.
        let p0 = ring.quantile_us(0.0).expect("non-empty");
        assert!(p0 >= 10, "old samples evicted, min is {p0}");
    }

    #[test]
    fn forwarded_equals_sum_of_routed_in_render() {
        let m = GatewayMetrics::new(2);
        m.forwarded.add(3);
        m.backends[0].routed.add(2);
        m.backends[1].routed.inc();
        m.count_response(200);
        m.count_response(502);
        let health = HealthTracker::new(2, 2, Duration::from_secs(1));
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:7001".parse().expect("addr"),
            "127.0.0.1:7002".parse().expect("addr"),
        ];
        let pool = ConnPool::new(addrs.clone(), Duration::from_secs(1), 4);
        let body = render_metrics(&m, &health, &pool, &addrs);
        assert!(body.contains("cactus_gateway_requests_forwarded_total 3"));
        assert!(body.contains("cactus_gateway_backend_0_routed_total 2"));
        assert!(body.contains("cactus_gateway_backend_1_routed_total 1"));
        assert!(body.contains("cactus_gateway_responses_2xx_total 1"));
        assert!(body.contains("cactus_gateway_responses_5xx_total 1"));
        assert!(body.contains("# backend 0 = 127.0.0.1:7001"));
    }

    /// The page must round-trip through the shared strict parser — the
    /// acceptance criterion for one exposition code path across both tiers.
    #[test]
    fn rendered_page_parses_strictly() {
        let m = GatewayMetrics::new(2);
        m.requests.add(7);
        m.latency.observe_us(1200);
        let health = HealthTracker::new(2, 2, Duration::from_secs(1));
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:7001".parse().expect("addr"),
            "127.0.0.1:7002".parse().expect("addr"),
        ];
        let pool = ConnPool::new(addrs.clone(), Duration::from_secs(1), 4);
        let page = render_metrics(&m, &health, &pool, &addrs);
        let expo = cactus_obs::parse(&page).expect("strict parse of own page");
        assert_eq!(expo.get("cactus_gateway_requests_total"), Some(7.0));
        assert_eq!(expo.get("cactus_gateway_latency_count"), Some(1.0));
        assert_eq!(expo.get("cactus_gateway_backend_1_state"), Some(0.0));
    }

    #[test]
    fn double_registration_collides() {
        let registry = MetricsRegistry::new();
        let _first = GatewayMetrics::register(&registry, 1).expect("first");
        assert!(
            GatewayMetrics::register(&registry, 1).is_err(),
            "one gateway per registry"
        );
    }
}
