//! Gateway observability: counters, per-backend route accounting, and the
//! sliding latency windows that feed the hedging policy.
//!
//! Rendered at `/metricsz` in the same flat `name value` text format as
//! `cactus-serve`, so one scraper handles the whole stack. The invariant a
//! scraper can assert: `cactus_gateway_requests_forwarded_total` equals the
//! sum of all `cactus_gateway_backend_<i>_routed_total`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cactus_serve::metrics::quantile;

use crate::connpool::ConnPool;
use crate::health::{HealthState, HealthTracker};

/// Samples kept per sliding latency window.
pub const LATENCY_WINDOW: usize = 512;

/// A fixed-size sliding window of microsecond latencies; old samples are
/// overwritten, quantiles are computed over whatever is present.
#[derive(Debug)]
pub struct LatencyRing {
    samples: Mutex<(Vec<u64>, usize)>,
}

impl Default for LatencyRing {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRing {
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: Mutex::new((Vec::with_capacity(LATENCY_WINDOW), 0)),
        }
    }

    /// Record one latency sample in microseconds.
    pub fn record(&self, us: u64) {
        let mut guard = self.samples.lock().expect("latency ring poisoned");
        let (samples, next) = &mut *guard;
        if samples.len() < LATENCY_WINDOW {
            samples.push(us);
        } else {
            samples[*next] = us;
            *next = (*next + 1) % LATENCY_WINDOW;
        }
    }

    /// The `q`-quantile (0.0..=1.0) of the current window, in microseconds;
    /// `None` while the window is empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let guard = self.samples.lock().expect("latency ring poisoned");
        if guard.0.is_empty() {
            return None;
        }
        let mut sorted = guard.0.clone();
        sorted.sort_unstable();
        Some(quantile(&sorted, q))
    }

    /// Number of samples currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().expect("latency ring poisoned").0.len()
    }

    /// True when no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-backend route accounting.
#[derive(Debug, Default)]
pub struct BackendMetrics {
    /// Requests whose winning response came from this backend.
    pub routed: AtomicU64,
    /// Transport-level failures attempting this backend.
    pub failures: AtomicU64,
    /// Latencies of successful exchanges with this backend.
    pub latency: LatencyRing,
}

/// All gateway-level counters, shared across workers.
#[derive(Debug)]
pub struct GatewayMetrics {
    /// Requests accepted by the gateway listener.
    pub requests: AtomicU64,
    /// Responses by class: 2xx, 4xx, 5xx.
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    /// Requests forwarded to some backend and answered (any status).
    pub forwarded: AtomicU64,
    /// Attempts re-routed to another ring candidate after a retryable
    /// failure.
    pub retries: AtomicU64,
    /// Hedge requests launched.
    pub hedges: AtomicU64,
    /// Hedge requests whose response won the race.
    pub hedge_wins: AtomicU64,
    /// End-to-end gateway latency (request read to response written).
    pub latency: LatencyRing,
    /// Per-backend accounting, indexed by ring position.
    pub backends: Vec<BackendMetrics>,
}

impl GatewayMetrics {
    #[must_use]
    pub fn new(backends: usize) -> Self {
        Self {
            requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            latency: LatencyRing::new(),
            backends: (0..backends).map(|_| BackendMetrics::default()).collect(),
        }
    }

    /// Bump the response-class counter for `status`.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

fn state_code(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Ejected => 1,
        HealthState::HalfOpen => 2,
    }
}

/// Render the `/metricsz` body.
#[must_use]
pub fn render_metrics(
    metrics: &GatewayMetrics,
    health: &HealthTracker,
    pool: &ConnPool,
    addrs: &[SocketAddr],
) -> String {
    let mut out = String::with_capacity(1024);
    let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
    out.push_str(&format!(
        "cactus_gateway_requests_total {}\n",
        r(&metrics.requests)
    ));
    out.push_str(&format!(
        "cactus_gateway_requests_forwarded_total {}\n",
        r(&metrics.forwarded)
    ));
    out.push_str(&format!(
        "cactus_gateway_responses_2xx_total {}\n",
        r(&metrics.responses_2xx)
    ));
    out.push_str(&format!(
        "cactus_gateway_responses_4xx_total {}\n",
        r(&metrics.responses_4xx)
    ));
    out.push_str(&format!(
        "cactus_gateway_responses_5xx_total {}\n",
        r(&metrics.responses_5xx)
    ));
    out.push_str(&format!(
        "cactus_gateway_retries_total {}\n",
        r(&metrics.retries)
    ));
    out.push_str(&format!(
        "cactus_gateway_hedges_total {}\n",
        r(&metrics.hedges)
    ));
    out.push_str(&format!(
        "cactus_gateway_hedge_wins_total {}\n",
        r(&metrics.hedge_wins)
    ));
    out.push_str(&format!(
        "cactus_gateway_ejections_total {}\n",
        health.ejections()
    ));
    out.push_str(&format!(
        "cactus_gateway_pool_dials_total {}\n",
        pool.dials()
    ));
    out.push_str(&format!(
        "cactus_gateway_pool_reuses_total {}\n",
        pool.reuses()
    ));
    for q in [0.50, 0.90, 0.99] {
        out.push_str(&format!(
            "cactus_gateway_latency_p{:02}_us {}\n",
            (q * 100.0) as u32,
            metrics.latency.quantile_us(q).unwrap_or(0)
        ));
    }
    for (i, b) in metrics.backends.iter().enumerate() {
        // `# ` lines are comments in the flat format; they map index -> addr.
        out.push_str(&format!("# backend {i} = {}\n", addrs[i]));
        out.push_str(&format!(
            "cactus_gateway_backend_{i}_routed_total {}\n",
            r(&b.routed)
        ));
        out.push_str(&format!(
            "cactus_gateway_backend_{i}_failures_total {}\n",
            r(&b.failures)
        ));
        out.push_str(&format!(
            "cactus_gateway_backend_{i}_state {}\n",
            state_code(health.state(i))
        ));
        out.push_str(&format!(
            "cactus_gateway_backend_{i}_latency_p90_us {}\n",
            b.latency.quantile_us(0.90).unwrap_or(0)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn latency_ring_slides() {
        let ring = LatencyRing::new();
        assert!(ring.quantile_us(0.5).is_none());
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            ring.record(i);
        }
        assert_eq!(ring.len(), LATENCY_WINDOW);
        // Oldest samples (0..10) were overwritten, so the minimum survives
        // the slide.
        let p0 = ring.quantile_us(0.0).expect("non-empty");
        assert!(p0 >= 10, "old samples evicted, min is {p0}");
    }

    #[test]
    fn forwarded_equals_sum_of_routed_in_render() {
        let m = GatewayMetrics::new(2);
        m.forwarded.fetch_add(3, Ordering::Relaxed);
        m.backends[0].routed.fetch_add(2, Ordering::Relaxed);
        m.backends[1].routed.fetch_add(1, Ordering::Relaxed);
        m.count_response(200);
        m.count_response(502);
        let health = HealthTracker::new(2, 2, Duration::from_secs(1));
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:7001".parse().expect("addr"),
            "127.0.0.1:7002".parse().expect("addr"),
        ];
        let pool = ConnPool::new(addrs.clone(), Duration::from_secs(1), 4);
        let body = render_metrics(&m, &health, &pool, &addrs);
        assert!(body.contains("cactus_gateway_requests_forwarded_total 3"));
        assert!(body.contains("cactus_gateway_backend_0_routed_total 2"));
        assert!(body.contains("cactus_gateway_backend_1_routed_total 1"));
        assert!(body.contains("cactus_gateway_responses_2xx_total 1"));
        assert!(body.contains("cactus_gateway_responses_5xx_total 1"));
        assert!(body.contains("# backend 0 = 127.0.0.1:7001"));
    }
}
