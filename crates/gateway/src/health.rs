//! Backend health tracking: consecutive-failure ejection with half-open
//! recovery.
//!
//! Each backend moves through a three-state machine driven by data-path
//! outcomes (and, optionally, active probes — both report through the same
//! two entry points):
//!
//! ```text
//!            eject_after consecutive failures
//!   Healthy ────────────────────────────────────▶ Ejected
//!      ▲                                            │ cooldown elapses
//!      │ trial request succeeds                     ▼ (via tick())
//!      └──────────────────────────────────────── HalfOpen
//!                         │ trial request fails
//!                         └───────▶ Ejected (cooldown restarts)
//! ```
//!
//! `Ejected` backends are skipped by the router; `HalfOpen` backends are
//! routable again, so the next real (or probe) request doubles as the
//! recovery trial — one success re-admits the backend, one failure re-ejects
//! it for another cooldown. This keeps recovery cheap: no separate trial
//! machinery, just routing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cactus_obs::lock::{rank, RankedMutex};

/// One backend's position in the ejection state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving traffic normally.
    Healthy,
    /// Skipped by the router until the cooldown elapses.
    Ejected,
    /// Routable again; the next outcome decides re-admission or re-ejection.
    HalfOpen,
}

#[derive(Debug)]
struct Backend {
    state: HealthState,
    consecutive_failures: u32,
    ejected_at: Option<Instant>,
    /// Set when a `HalfOpen` trial succeeds; drained by
    /// [`HealthTracker::take_readmitted`] so the health thread can run one
    /// anti-entropy sync per re-admission.
    readmit_pending: bool,
}

/// Tracks health for a fixed fleet of backends, indexed by ring position.
#[derive(Debug)]
pub struct HealthTracker {
    backends: RankedMutex<Vec<Backend>>,
    eject_after: u32,
    cooldown: Duration,
    ejections: AtomicU64,
}

impl HealthTracker {
    /// All backends start `Healthy`. `eject_after` consecutive failures
    /// eject a backend; it becomes `HalfOpen` once `cooldown` has elapsed
    /// (checked by [`tick`](Self::tick)).
    #[must_use]
    pub fn new(backends: usize, eject_after: u32, cooldown: Duration) -> Self {
        Self {
            backends: RankedMutex::new(
                rank::HEALTH,
                "gateway.health",
                (0..backends)
                    .map(|_| Backend {
                        state: HealthState::Healthy,
                        consecutive_failures: 0,
                        ejected_at: None,
                        readmit_pending: false,
                    })
                    .collect(),
            ),
            eject_after: eject_after.max(1),
            cooldown,
            ejections: AtomicU64::new(0),
        }
    }

    /// Record a successful exchange with backend `i`. A `HalfOpen` backend
    /// passes its trial and returns to `Healthy`.
    pub fn report_success(&self, i: usize) {
        let mut backends = self.backends.lock();
        let b = &mut backends[i];
        if b.state == HealthState::HalfOpen {
            // The backend was away and may have missed writes; flag it for
            // an anti-entropy sync pass.
            b.readmit_pending = true;
        }
        b.consecutive_failures = 0;
        b.ejected_at = None;
        b.state = HealthState::Healthy;
    }

    /// Backends re-admitted (HalfOpen → Healthy) since the last call,
    /// draining the pending flags. The health thread feeds these to the
    /// store anti-entropy sync.
    #[must_use]
    pub fn take_readmitted(&self) -> Vec<usize> {
        let mut backends = self.backends.lock();
        let mut out = Vec::new();
        for (i, b) in backends.iter_mut().enumerate() {
            if b.readmit_pending {
                b.readmit_pending = false;
                out.push(i);
            }
        }
        out
    }

    /// Record a failed exchange (transport error) with backend `i`.
    /// `Healthy` backends eject after `eject_after` consecutive failures;
    /// a `HalfOpen` backend fails its trial and re-ejects immediately.
    pub fn report_failure(&self, i: usize) {
        let mut backends = self.backends.lock();
        let b = &mut backends[i];
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        let eject = match b.state {
            HealthState::Healthy => b.consecutive_failures >= self.eject_after,
            HealthState::HalfOpen => true,
            HealthState::Ejected => false,
        };
        if eject {
            b.state = HealthState::Ejected;
            b.ejected_at = Some(Instant::now());
            self.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Move every `Ejected` backend whose cooldown has elapsed to
    /// `HalfOpen`. Called periodically by the gateway's health thread.
    pub fn tick(&self) {
        let mut backends = self.backends.lock();
        for b in backends.iter_mut() {
            if b.state == HealthState::Ejected
                && b.ejected_at.is_some_and(|t| t.elapsed() >= self.cooldown)
            {
                b.state = HealthState::HalfOpen;
            }
        }
    }

    /// Whether backend `i` may receive traffic (`Healthy` or `HalfOpen`).
    #[must_use]
    pub fn available(&self, i: usize) -> bool {
        self.state(i) != HealthState::Ejected
    }

    /// Backend `i`'s current state.
    #[must_use]
    pub fn state(&self, i: usize) -> HealthState {
        self.backends.lock()[i].state
    }

    /// Total transitions into `Ejected` since startup.
    #[must_use]
    pub fn ejections(&self) -> u64 {
        self.ejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejects_after_consecutive_failures_only() {
        let h = HealthTracker::new(2, 3, Duration::from_secs(60));
        h.report_failure(0);
        h.report_failure(0);
        assert_eq!(h.state(0), HealthState::Healthy, "below threshold");
        h.report_success(0);
        h.report_failure(0);
        h.report_failure(0);
        assert_eq!(h.state(0), HealthState::Healthy, "success reset the run");
        h.report_failure(0);
        assert_eq!(h.state(0), HealthState::Ejected);
        assert!(!h.available(0));
        assert_eq!(h.state(1), HealthState::Healthy, "peers unaffected");
        assert_eq!(h.ejections(), 1);
    }

    #[test]
    fn cooldown_opens_trial_and_success_readmits() {
        let h = HealthTracker::new(1, 1, Duration::from_millis(0));
        h.report_failure(0);
        assert_eq!(h.state(0), HealthState::Ejected);
        h.tick();
        assert_eq!(h.state(0), HealthState::HalfOpen);
        assert!(h.available(0), "half-open backends are routable");
        h.report_success(0);
        assert_eq!(h.state(0), HealthState::Healthy);
        assert_eq!(h.ejections(), 1);
    }

    #[test]
    fn failed_trial_reejects_and_counts() {
        let h = HealthTracker::new(1, 2, Duration::from_millis(0));
        h.report_failure(0);
        h.report_failure(0);
        h.tick();
        assert_eq!(h.state(0), HealthState::HalfOpen);
        h.report_failure(0);
        assert_eq!(
            h.state(0),
            HealthState::Ejected,
            "one trial failure re-ejects"
        );
        assert_eq!(h.ejections(), 2);
    }

    #[test]
    fn readmission_is_flagged_once_and_drained() {
        let h = HealthTracker::new(2, 1, Duration::from_millis(0));
        assert!(h.take_readmitted().is_empty(), "nothing pending at start");
        // Ordinary successes on healthy backends never flag a sync.
        h.report_success(0);
        assert!(h.take_readmitted().is_empty());
        h.report_failure(0);
        h.tick();
        h.report_success(0);
        assert_eq!(h.take_readmitted(), vec![0], "trial success flags a sync");
        assert!(h.take_readmitted().is_empty(), "flag drained");
    }

    #[test]
    fn tick_respects_cooldown() {
        let h = HealthTracker::new(1, 1, Duration::from_secs(3600));
        h.report_failure(0);
        h.tick();
        assert_eq!(h.state(0), HealthState::Ejected, "cooldown not elapsed");
    }
}
