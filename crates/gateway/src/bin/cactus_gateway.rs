//! The `cactus-gateway` daemon.
//!
//! ```text
//! cactus-gateway [--addr HOST:PORT]
//!                (--backend HOST:PORT ... | --fleet N [--store-dir PATH]
//!                 [--fleet-devices SETS])
//!                [--workers N] [--queue N] [--no-hedge]
//!                [--hedge-floor-ms MS] [--eject-after N] [--cooldown-ms MS]
//!                [--health-interval-ms MS] [--port-file PATH]
//!                [--span-log PATH]
//! ```
//!
//! Fronts either an externally-managed fleet (repeated `--backend`) or an
//! in-process supervised one (`--fleet N` spawns N `cactus-serve` backends
//! on ephemeral ports). Optionally writes the gateway's bound port to
//! `--port-file`, then routes until `SIGINT`/`SIGTERM`; shutdown drains the
//! gateway first (every accepted request is answered), then the supervised
//! backends, and exits 0.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use cactus_gateway::{Gateway, GatewayConfig, Supervisor};
use cactus_serve::{signal, ServeConfig};

const USAGE: &str = "\
usage: cactus-gateway [options]

  --addr HOST:PORT          bind address (default 127.0.0.1:7080; port 0 = ephemeral)
  --backend HOST:PORT       backend to route to; repeat for a fleet
  --fleet N                 spawn N in-process cactus-serve backends instead
  --fleet-devices SETS      per-backend modeled-device sets for --fleet:
                            semicolon-separated slots of comma-separated
                            catalog ids, e.g. \"rtx-3080,a100;uhd-630\"
                            (empty slot = full catalog; slot count must
                            match --fleet N)
  --store-dir PATH          profile-store directory for --fleet backends
  --workers N               gateway worker threads (default 8)
  --queue N                 accepted connections allowed to wait (default 128)
  --no-hedge                disable hedged requests
  --hedge-floor-ms MS       minimum hedge delay (default 20)
  --eject-after N           consecutive failures before ejection (default 2)
  --cooldown-ms MS          ejection cooldown before half-open (default 1000)
  --health-interval-ms MS   active /healthz probe interval, 0 = passive only
                            (default 500)
  --port-file PATH          write the bound port here once listening
  --span-log PATH           append every finished span as a JSON line here
  --help                    show this help
";

struct Args {
    config: GatewayConfig,
    backends: Vec<SocketAddr>,
    fleet: usize,
    fleet_devices: Option<Vec<Vec<String>>>,
    store_dir: Option<String>,
    port_file: Option<String>,
}

enum Parsed {
    Run(Box<Args>),
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut parsed = Args {
        config: GatewayConfig {
            addr: "127.0.0.1:7080".to_owned(),
            ..GatewayConfig::default()
        },
        backends: Vec::new(),
        fleet: 0,
        fleet_devices: None,
        store_dir: None,
        port_file: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(Parsed::Help);
        }
        if flag == "--no-hedge" {
            parsed.config.policy.hedge = false;
            continue;
        }
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => parsed.config.addr = value()?,
            "--backend" => parsed.backends.push(
                value()?
                    .parse()
                    .map_err(|_| "--backend: invalid address".to_string())?,
            ),
            "--fleet" => parsed.fleet = parse_num(&flag, &value()?)?,
            "--fleet-devices" => {
                parsed.fleet_devices = Some(
                    value()?
                        .split(';')
                        .map(|slot| {
                            slot.split(',')
                                .map(str::trim)
                                .filter(|id| !id.is_empty())
                                .map(ToOwned::to_owned)
                                .collect()
                        })
                        .collect(),
                );
            }
            "--store-dir" => parsed.store_dir = Some(value()?),
            "--workers" => parsed.config.workers = parse_num(&flag, &value()?)?,
            "--queue" => parsed.config.queue = parse_num(&flag, &value()?)?,
            "--hedge-floor-ms" => {
                parsed.config.policy.hedge_floor =
                    Duration::from_millis(parse_num(&flag, &value()?)?);
            }
            "--eject-after" => parsed.config.eject_after = parse_num(&flag, &value()?)?,
            "--cooldown-ms" => {
                parsed.config.cooldown = Duration::from_millis(parse_num(&flag, &value()?)?);
            }
            "--health-interval-ms" => {
                let ms: u64 = parse_num(&flag, &value()?)?;
                parsed.config.probe_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--port-file" => parsed.port_file = Some(value()?),
            "--span-log" => parsed.config.span_log = Some(value()?.into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if parsed.backends.is_empty() && parsed.fleet == 0 {
        return Err("need --backend (repeatable) or --fleet N".to_owned());
    }
    if !parsed.backends.is_empty() && parsed.fleet > 0 {
        return Err("--backend and --fleet are mutually exclusive".to_owned());
    }
    if let Some(sets) = &parsed.fleet_devices {
        if parsed.fleet == 0 {
            return Err("--fleet-devices requires --fleet".to_owned());
        }
        if sets.len() != parsed.fleet {
            return Err(format!(
                "--fleet-devices names {} slot(s) but --fleet is {}",
                sets.len(),
                parsed.fleet
            ));
        }
    }
    Ok(Parsed::Run(Box::new(parsed)))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(args)) => run(*args),
        Ok(Parsed::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("cactus-gateway: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> ExitCode {
    signal::install_handlers();

    // Supervised fleet first, so its addresses exist before the ring forms.
    let mut supervisor = None;
    let backends = if args.fleet > 0 {
        let base = ServeConfig {
            store_dir: args.store_dir.as_ref().map(Into::into),
            ..ServeConfig::default()
        };
        let spawned = match &args.fleet_devices {
            Some(sets) => Supervisor::spawn_heterogeneous(sets, &base),
            None => Supervisor::spawn_fleet(args.fleet, &base),
        };
        match spawned {
            Ok(fleet) => {
                let addrs = fleet.addrs();
                for (i, addr) in addrs.iter().enumerate() {
                    let devices = match &args.fleet_devices {
                        Some(sets) if !sets[i].is_empty() => sets[i].join(","),
                        _ => "full catalog".to_owned(),
                    };
                    eprintln!(
                        "cactus-gateway: backend[{i}] listening on http://{addr}/ ({devices})"
                    );
                }
                supervisor = Some(fleet);
                addrs
            }
            Err(e) => {
                eprintln!("cactus-gateway: fleet spawn failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args.backends
    };

    let gateway = match Gateway::start(args.config, backends) {
        Ok(gateway) => gateway,
        Err(e) => {
            eprintln!("cactus-gateway: bind failed: {e}");
            if let Some(fleet) = supervisor {
                fleet.shutdown_all();
            }
            return ExitCode::FAILURE;
        }
    };
    let addr = gateway.addr();
    eprintln!(
        "cactus-gateway: routing on http://{addr}/ (try /v1/healthz, /v1/devices, /v1/compare)"
    );
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("cactus-gateway: cannot write port file {path}: {e}");
            gateway.join();
            if let Some(fleet) = supervisor {
                fleet.shutdown_all();
            }
            return ExitCode::FAILURE;
        }
    }

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cactus-gateway: shutdown requested, draining in-flight requests");
    // Drain the gateway before the backends so every accepted request can
    // still be forwarded somewhere.
    gateway.join();
    if let Some(fleet) = supervisor {
        fleet.shutdown_all();
    }
    eprintln!("cactus-gateway: drained, exiting");
    ExitCode::SUCCESS
}
