//! Cross-device comparison: `GET /v1/compare/<scale>/<workload>?devices=a,b`.
//!
//! The gateway fans one profile fetch per requested device out to the
//! owning backends in parallel (each leg goes through the full
//! device-aware [`Router::forward`] machinery — capability filtering,
//! failover, hedging — and feeds replication exactly like a direct client
//! request), then synthesizes one cross-device table:
//!
//! * per-kernel roofline placement on every device (intensity class and
//!   boundedness, computed against each device's own roofline);
//! * whole-workload speedup ratios against the first requested device;
//! * **bottleneck shifts** — kernels whose boundedness class differs
//!   between devices, i.e. where moving hardware moves the wall.
//!
//! Rendered as JSON (default) or CSV (`format=csv`). The CSV's per-kernel
//! columns are formatted by the same `{:.6}` rules as a single backend's
//! `/v1/roofline` rows, so a device's slice of the comparison is
//! byte-identical to asking that backend directly — the comparison adds
//! information, it never re-derives it.
//!
//! Failure semantics: any leg that does not answer `200` fails the whole
//! comparison, and the first failing leg's response (in requested device
//! order) is returned verbatim — so an unknown workload surfaces the
//! backend's own `404` envelope, and a fleet that models neither device
//! surfaces the router's synthesized `404`.

use std::sync::Arc;

use cactus_analysis::roofline::Roofline;
use cactus_gpu::by_id;
use cactus_obs::{ApiError, SpanCtx};
use cactus_profiler::{store as profile_store, Profile};
use cactus_serve::http::Request;

use crate::proxy::{Forwarded, Router};
use crate::server::routing_key;
use crate::sync;

/// One device's leg of the comparison.
struct Leg {
    id: &'static str,
    profile: Profile,
    roofline: Roofline,
}

/// Answer `/v1/compare/<scale>/<workload>`. See the module docs.
pub fn compare(router: &Arc<Router>, request: &Request, ctx: SpanCtx<'_>) -> Forwarded {
    router.metrics.compare_requests.inc();
    let response = compare_inner(router, request, ctx);
    if response.status != 200 {
        router.metrics.compare_failures.inc();
    }
    response
}

fn compare_inner(router: &Arc<Router>, request: &Request, ctx: SpanCtx<'_>) -> Forwarded {
    let rest = request
        .path
        .strip_prefix("/v1/compare/")
        .unwrap_or_default();
    let segs: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
    let [scale, workload] = segs.as_slice() else {
        return envelope(
            404,
            "compare expects /v1/compare/<scale>/<workload>?devices=a,b",
        );
    };

    let param = |name: &str| {
        request.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name && !v.is_empty()).then_some(v)
        })
    };
    let format = param("format").unwrap_or("json");
    if format != "json" && format != "csv" {
        return envelope(400, &format!("unknown format {format:?}; use json or csv"));
    }
    let Some(raw_devices) = param("devices") else {
        return envelope(400, "compare requires ?devices=<id>,<id>[,...]");
    };

    // Resolve every requested slug against the catalog up front (the same
    // edge check forwarded requests get), de-duplicating while preserving
    // request order — the first device is the speedup baseline.
    let mut ids: Vec<&'static str> = Vec::new();
    for slug in raw_devices.split(',').filter(|s| !s.is_empty()) {
        let Some(entry) = by_id(slug) else {
            let known = cactus_gpu::catalog::device_ids().join(", ");
            return envelope(
                404,
                &format!("unknown device {slug:?}; the catalog has: {known}"),
            );
        };
        if !ids.contains(&entry.id) {
            ids.push(entry.id);
        }
    }
    if ids.len() < 2 {
        return envelope(400, "compare needs at least two distinct devices");
    }

    let mut span = ctx.child("gateway.compare");
    span.tag("scale", (*scale).to_owned());
    span.tag("workload", (*workload).to_owned());
    span.tag("devices", ids.join(","));
    let leg_ctx = span.ctx();

    // One leg per device, raced in parallel. Each leg is an ordinary
    // routed profile fetch: capability filtering keeps it on backends that
    // model the device, and a 200 feeds replication as usual.
    let outcomes: Vec<(usize, Forwarded)> = std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let target = format!("/v1/profile/{id}/{scale}/{workload}");
                let router = Arc::clone(router);
                s.spawn(move || {
                    router.metrics.compare_fanout.inc();
                    let reply = router.forward(&target, &routing_key(&target), Some(leg_ctx));
                    if reply.status == 200 {
                        if let Some(winner) = reply.backend {
                            sync::replicate_after_forward(&router, &target, winner, Some(leg_ctx));
                        }
                    }
                    (i, reply)
                })
            })
            .collect();
        let mut outcomes: Vec<(usize, Forwarded)> =
            handles.into_iter().filter_map(|h| h.join().ok()).collect();
        outcomes.sort_by_key(|(i, _)| *i);
        outcomes
    });

    // A failed leg fails the comparison; its response explains why.
    if let Some((i, bad)) = outcomes.iter().find(|(_, r)| r.status != 200) {
        span.tag("failed_device", ids[*i].to_owned());
        return Forwarded {
            status: bad.status,
            content_type: bad.content_type.clone(),
            body: bad.body.clone(),
            backend: bad.backend,
        };
    }

    let mut legs = Vec::with_capacity(ids.len());
    for (i, reply) in &outcomes {
        let id = ids[*i];
        let Ok(profile) = profile_store::read_profile(&reply.body) else {
            return envelope(
                502,
                &format!("backend returned an unparseable profile for device {id:?}"),
            );
        };
        // `by_id` succeeded above; the entry is still there.
        let Some(entry) = by_id(id) else {
            return envelope(502, &format!("device {id:?} vanished from the catalog"));
        };
        legs.push(Leg {
            id,
            roofline: Roofline::for_device(&entry.device()),
            profile,
        });
    }

    let body = match format {
        "csv" => render_csv(scale, workload, &legs),
        _ => render_json(scale, workload, &legs),
    };
    span.tag("status", "200");
    Forwarded {
        status: 200,
        content_type: if format == "csv" {
            "text/csv; charset=utf-8".to_owned()
        } else {
            "application/json".to_owned()
        },
        body,
        backend: None,
    }
}

/// Kernel names in presentation order: the baseline device's profile order,
/// then any kernel the baseline lacks, in the order other devices list it.
fn kernel_order(legs: &[Leg]) -> Vec<String> {
    let mut order: Vec<String> = Vec::new();
    for leg in legs {
        for k in leg.profile.kernels() {
            if !order.contains(&k.name) {
                order.push(k.name.clone());
            }
        }
    }
    order
}

/// The boundedness label for `kernel` on `leg`, if the leg ran it.
fn boundedness_of(leg: &Leg, kernel: &str) -> Option<&'static str> {
    let k = leg.profile.kernels().iter().find(|k| k.name == kernel)?;
    Some(leg.roofline.boundedness_class(k.metrics.gips).label())
}

/// Did `kernel`'s boundedness class change between any two devices that ran
/// it? That is the comparison's headline signal: the kernel hits a
/// different wall on different hardware.
fn shifted(legs: &[Leg], kernel: &str) -> bool {
    let mut labels = legs.iter().filter_map(|l| boundedness_of(l, kernel));
    match labels.next() {
        Some(first) => labels.any(|l| l != first),
        None => false,
    }
}

/// The leg's dominant kernel: largest total time, ties broken by name so
/// the answer is deterministic.
fn dominant(leg: &Leg) -> Option<&cactus_profiler::KernelStats> {
    leg.profile.kernels().iter().min_by(|a, b| {
        b.total_time_s
            .partial_cmp(&a.total_time_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    })
}

fn render_csv(scale: &str, workload: &str, legs: &[Leg]) -> String {
    let Some(baseline) = legs.first() else {
        return String::new();
    };
    let baseline_total = baseline.profile.total_time_s();
    let mut out = format!("# compare: {scale}/{workload}\n");
    out.push_str(&format!(
        "# devices: {}\n# baseline: {}\n",
        legs.iter().map(|l| l.id).collect::<Vec<_>>().join(" "),
        baseline.id
    ));
    for leg in legs {
        let total = leg.profile.total_time_s();
        out.push_str(&format!("# total_time_s {} {:e}\n", leg.id, total));
        out.push_str(&format!(
            "# speedup_vs_baseline {} {:.6}\n",
            leg.id,
            speedup(baseline_total, total)
        ));
        if let Some(k) = dominant(leg) {
            out.push_str(&format!("# dominant_kernel {} {}\n", leg.id, k.name));
        }
    }
    out.push_str(
        "device,kernel,instruction_intensity,gips,time_share,intensity_class,\
         boundedness,bottleneck_shift\n",
    );
    // Per-device rows in that device's own profile order: columns 2–7 are
    // formatted exactly like the backend's /v1/roofline rows, so one
    // device's slice of this table is byte-identical to asking it directly.
    for leg in legs {
        let total = leg.profile.total_time_s();
        for k in leg.profile.kernels() {
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{},{},{}\n",
                leg.id,
                csv_escape(&k.name),
                k.metrics.instruction_intensity,
                k.metrics.gips,
                k.time_share(total),
                leg.roofline
                    .intensity_class(k.metrics.instruction_intensity)
                    .label(),
                leg.roofline.boundedness_class(k.metrics.gips).label(),
                shifted(legs, &k.name),
            ));
        }
    }
    out
}

fn render_json(scale: &str, workload: &str, legs: &[Leg]) -> String {
    let Some(baseline) = legs.first() else {
        return "{}".to_owned();
    };
    let baseline_total = baseline.profile.total_time_s();
    let mut out = format!(
        "{{\"scale\":{},\"workload\":{},\"baseline\":{},\"devices\":[",
        json_str(scale),
        json_str(workload),
        json_str(baseline.id)
    );
    for (i, leg) in legs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let total = leg.profile.total_time_s();
        out.push_str(&format!(
            "{{\"device\":{},\"total_time_s\":{:e},\"speedup_vs_baseline\":{:.6},\
             \"dominant_kernel\":{}}}",
            json_str(leg.id),
            total,
            speedup(baseline_total, total),
            dominant(leg).map_or_else(|| "null".to_owned(), |k| json_str(&k.name)),
        ));
    }
    out.push_str("],\"kernels\":[");
    for (ki, kernel) in kernel_order(legs).iter().enumerate() {
        if ki > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"kernel\":{},\"bottleneck_shift\":{},\"per_device\":[",
            json_str(kernel),
            shifted(legs, kernel)
        ));
        let mut first = true;
        for leg in legs {
            let Some(k) = leg.profile.kernels().iter().find(|k| &k.name == kernel) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let total = leg.profile.total_time_s();
            out.push_str(&format!(
                "{{\"device\":{},\"instruction_intensity\":{:.6},\"gips\":{:.6},\
                 \"time_share\":{:.6},\"intensity_class\":{},\"boundedness\":{}}}",
                json_str(leg.id),
                k.metrics.instruction_intensity,
                k.metrics.gips,
                k.time_share(total),
                json_str(
                    leg.roofline
                        .intensity_class(k.metrics.instruction_intensity)
                        .label()
                ),
                json_str(leg.roofline.boundedness_class(k.metrics.gips).label()),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Whole-workload speedup of `total` relative to `baseline` (>1 = faster
/// than the baseline device).
fn speedup(baseline: f64, total: f64) -> f64 {
    if total > 0.0 {
        baseline / total
    } else {
        0.0
    }
}

/// Same quoting rule as the backends' CSV renderers.
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Minimal JSON string rendering (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn envelope(status: u16, message: &str) -> Forwarded {
    Forwarded {
        status,
        content_type: "application/json".to_owned(),
        body: ApiError::new(status, message).to_json(),
        backend: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(id: &'static str, workload: &str) -> Leg {
        let entry = by_id(id).expect("catalog id");
        Leg {
            id,
            roofline: Roofline::for_device(&entry.device()),
            profile: cactus_core::run(workload, cactus_core::SuiteScale::Tiny),
        }
    }

    #[test]
    fn csv_rows_mirror_the_roofline_format() {
        let legs = [leg("rtx-3080", "GMS"), leg("uhd-630", "GMS")];
        let body = render_csv("tiny", "GMS", &legs);
        assert!(body.starts_with("# compare: tiny/GMS\n"));
        assert!(body.contains("# baseline: rtx-3080\n"));
        assert!(body.contains("# speedup_vs_baseline rtx-3080 1.000000\n"));
        let header = body
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("header line");
        assert_eq!(
            header,
            "device,kernel,instruction_intensity,gips,time_share,intensity_class,\
             boundedness,bottleneck_shift"
        );
        // Every kernel of every device appears exactly once.
        let rows: Vec<&str> = body
            .lines()
            .filter(|l| !l.starts_with('#') && *l != header)
            .collect();
        let kernels = legs[0].profile.kernels().len() + legs[1].profile.kernels().len();
        assert_eq!(rows.len(), kernels);
        for row in rows {
            assert_eq!(row.split(',').count(), 8, "8 columns in {row:?}");
        }
    }

    #[test]
    fn json_carries_speedups_and_shifts() {
        let legs = [leg("rtx-3080", "GMS"), leg("uhd-630", "GMS")];
        let body = render_json("tiny", "GMS", &legs);
        assert!(body.starts_with("{\"scale\":\"tiny\",\"workload\":\"GMS\""));
        assert!(body.contains("\"baseline\":\"rtx-3080\""));
        assert!(body.contains("\"speedup_vs_baseline\":1.000000"));
        assert!(body.contains("\"bottleneck_shift\":"));
        assert!(body.ends_with("]}"));
    }

    #[test]
    fn identical_legs_never_shift() {
        let legs = [leg("rtx-3080", "GMS"), leg("rtx-3080", "GMS")];
        for k in legs[0].profile.kernels() {
            assert!(
                !shifted(&legs, &k.name),
                "{} shifted against itself",
                k.name
            );
        }
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
