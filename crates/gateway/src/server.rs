//! The gateway daemon: listener, worker pool, health thread, and the glue
//! between incoming connections and the [`Router`](crate::proxy::Router).
//!
//! ```text
//!                    ┌────────────── health thread ───────────────┐
//!                    │ tick(): Ejected → HalfOpen after cooldown  │
//!                    │ active probes: GET /v1/healthz per backend │
//!                    │ (each probe refreshes the capability map)  │
//!                    └───────────────────┬────────────────────────┘
//!                                        ▼
//! accept ──try_send──► bounded queue ──► workers ──► Router::forward
//!    │                                     │           ring → health →
//!    └── full: 503 Retry-After ◄───────────┘           pool → hedge/retry
//! ```
//!
//! The listener/queue/worker skeleton deliberately mirrors `cactus-serve`'s
//! server (same backpressure and graceful-drain semantics); what differs is
//! the work each request does — a proxied exchange instead of a local
//! simulation. The gateway serves its own `/v1/healthz`, `/v1/metricsz`,
//! `/v1/tracez`, a fleet-wide `/v1/devices` catalog view, and the
//! cross-device `/v1/compare` synthesis locally (legacy unversioned
//! spellings stay as aliases); every other `GET` is forwarded — after an
//! edge catalog check, so a request for a device the catalog has never
//! heard of is answered `404` here instead of burning a backend attempt.
//!
//! Each request gets one trace id: propagated from the client's
//! `x-cactus-trace` header when present, minted here otherwise. The id is
//! echoed back to the client, forwarded to the chosen backend, and roots a
//! `gateway.route` span whose `proxy.attempt` children record the failover
//! path — so one request yields one id visible in both tiers' `/v1/tracez`.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::{ApiError, TraceId, Tracer, TRACE_HEADER};
use cactus_serve::http::{self, HttpError, Request};
use cactus_serve::net;
use cactus_serve::server::KEEP_ALIVE_MAX;
use cactus_serve::{parse_health_devices, Client};

use crate::capability::device_for_target;
use crate::compare;
use crate::connpool::ConnPool;
use crate::health::{HealthState, HealthTracker};
use crate::metrics::{render_metrics, GatewayMetrics};
use crate::proxy::{Forwarded, RoutePolicy, Router};
use crate::ring::HashRing;
use crate::sync;

const ACCEPT_POLL: Duration = Duration::from_millis(1);
const HEALTH_TICK: Duration = Duration::from_millis(50);

/// The cross-device comparison route (`cactus-lint` checks served routes
/// against client-consumed paths, so the pattern lives here as a literal).
pub const COMPARE_ROUTE: &str = "/v1/compare/{scale}/{workload}";

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads proxying requests.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the gateway
    /// answers `503`.
    pub queue: usize,
    /// Client-side read timeout (also the keep-alive idle timeout).
    pub read_timeout: Duration,
    /// Per-exchange timeout toward a backend (connect + request + reply).
    /// Cold profile simulations can be slow; keep this generous.
    pub backend_timeout: Duration,
    /// Consecutive failures before a backend is ejected.
    pub eject_after: u32,
    /// How long an ejected backend sits out before a half-open trial.
    pub cooldown: Duration,
    /// Interval between active `/healthz` probes; `None` disables probing
    /// (health is then driven purely by data-path outcomes).
    pub probe_interval: Option<Duration>,
    /// Timeout for one active probe.
    pub probe_timeout: Duration,
    /// Idle keep-alive connections pooled per backend.
    pub max_idle_conns: usize,
    /// `Retry-After` seconds advertised on a local `503`.
    pub retry_after_s: u32,
    /// Retry and hedging policy.
    pub policy: RoutePolicy,
    /// Finished spans kept in the `/v1/tracez` ring buffer.
    pub trace_capacity: usize,
    /// Optional JSONL span log: every finished span is appended here.
    pub span_log: Option<PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 8,
            queue: 128,
            read_timeout: Duration::from_secs(5),
            backend_timeout: Duration::from_secs(60),
            eject_after: 2,
            cooldown: Duration::from_secs(1),
            probe_interval: Some(Duration::from_millis(500)),
            probe_timeout: Duration::from_millis(500),
            max_idle_conns: 8,
            retry_after_s: 1,
            policy: RoutePolicy::default(),
            trace_capacity: 2048,
            span_log: None,
        }
    }
}

/// A running gateway. Call [`Gateway::shutdown`] then [`Gateway::join`] to
/// stop it; dropping the handle alone does not.
pub struct Gateway {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    router: Arc<Router>,
    tracer: Arc<Tracer>,
    backend_addrs: Vec<SocketAddr>,
}

impl Gateway {
    /// Bind the listener, build the ring over `backends`, and spawn the
    /// worker pool and health thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects an empty backend list.
    pub fn start(config: GatewayConfig, backends: Vec<SocketAddr>) -> io::Result<Self> {
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one backend",
            ));
        }
        let listener = net::bind_reusable(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Ring labels are the backend address strings: stable across
        // restarts of the same fleet layout, independent of list order.
        let labels: Vec<String> = backends.iter().map(ToString::to_string).collect();
        let health = Arc::new(HealthTracker::new(
            backends.len(),
            config.eject_after,
            config.cooldown,
        ));
        let pool = Arc::new(ConnPool::new(
            backends.clone(),
            config.backend_timeout,
            config.max_idle_conns,
        ));
        let metrics = Arc::new(GatewayMetrics::new(backends.len()));
        let router = Arc::new(Router::new(
            HashRing::new(&labels),
            Arc::clone(&health),
            pool,
            metrics,
            config.policy.clone(),
        ));

        // One synchronous capability-discovery pass before traffic flows:
        // each backend that answers `/v1/healthz` tells us which catalog
        // devices it models. Backends that don't answer stay "unknown"
        // (optimistically routable); active probes refresh the map later,
        // so a backend restarted with a different device set is re-learned.
        for (i, &backend) in backends.iter().enumerate() {
            let probe = Client::new(backend)
                .with_timeout(config.probe_timeout)
                .get("/v1/healthz");
            if let Ok(reply) = probe {
                if reply.status == 200 {
                    if let Some(devices) = parse_health_devices(&reply.body) {
                        router.capabilities.record(i, devices);
                    }
                }
            }
        }

        let mut tracer = Tracer::new(config.trace_capacity);
        if let Some(path) = &config.span_log {
            tracer = tracer.with_span_log(path)?;
        }
        let tracer = Arc::new(tracer);

        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue.max(1));
        let rx = Arc::new(RankedMutex::new(
            rank::WORKER_QUEUE,
            "gateway.worker_queue",
            rx,
        ));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let router = Arc::clone(&router);
                let tracer = Arc::clone(&tracer);
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                let backend_addrs = backends.clone();
                std::thread::spawn(move || {
                    worker_loop(&router, &tracer, &rx, &config, &backend_addrs, &shutdown);
                })
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let router = Arc::clone(&router);
            let retry_after_s = config.retry_after_s;
            std::thread::spawn(move || {
                accept_loop(&listener, &tx, &router, retry_after_s, &shutdown)
            })
        };

        let health_thread = {
            let shutdown = Arc::clone(&shutdown);
            let router = Arc::clone(&router);
            let tracer = Arc::clone(&tracer);
            let probe_interval = config.probe_interval;
            let probe_timeout = config.probe_timeout;
            let backend_addrs = backends.clone();
            std::thread::spawn(move || {
                health_loop(
                    &router,
                    &tracer,
                    &backend_addrs,
                    probe_interval,
                    probe_timeout,
                    &shutdown,
                );
            })
        };

        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            health_thread: Some(health_thread),
            router,
            tracer,
            backend_addrs: backends,
        })
    }

    /// The bound listener address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared routing state (tests read health and counters through it).
    #[must_use]
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The gateway's span sink (tests read span trees through it).
    #[must_use]
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The fleet addresses the ring was built over, in ring-index order.
    #[must_use]
    pub fn backend_addrs(&self) -> &[SocketAddr] {
        &self.backend_addrs
    }

    /// Begin graceful shutdown: stop accepting, let workers drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Shut down (if not already requested) and wait for every queued and
    /// in-flight request to be answered and all threads to exit.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(health) = self.health_thread.take() {
            let _ = health.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    router: &Router,
    retry_after_s: u32,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => reject_busy(router, stream, retry_after_s),
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping `tx` closes the queue; workers drain and exit.
}

/// Answer `503 + Retry-After` without occupying a worker.
fn reject_busy(router: &Router, mut stream: TcpStream, retry_after_s: u32) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    // Drain the request head so closing does not RST away the 503.
    let mut buf = [0u8; 1024];
    loop {
        match io::Read::read(&mut stream, &mut buf) {
            Ok(n) if n > 0 => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    router.metrics.requests.inc();
    router.metrics.count_response(503);
    let body = ApiError::new(503, "gateway saturated").to_json();
    let wire = format!(
        "HTTP/1.1 503 {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nretry-after: {}\r\nconnection: close\r\n\r\n{}",
        http::reason_phrase(503),
        body.len(),
        retry_after_s,
        body
    );
    let _ = stream.write_all(wire.as_bytes());
}

fn worker_loop(
    router: &Arc<Router>,
    tracer: &Tracer,
    rx: &RankedMutex<Receiver<TcpStream>>,
    config: &GatewayConfig,
    backend_addrs: &[SocketAddr],
    shutdown: &AtomicBool,
) {
    loop {
        let next = rx.lock().recv();
        let Ok(stream) = next else { break };
        handle_connection(router, tracer, &stream, config, backend_addrs, shutdown);
    }
}

/// Serve sequential keep-alive requests from one client connection.
fn handle_connection(
    router: &Arc<Router>,
    tracer: &Tracer,
    stream: &TcpStream,
    config: &GatewayConfig,
    backend_addrs: &[SocketAddr],
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    loop {
        let request = http::read_request(&mut reader);
        let start = Instant::now();
        let (response, trace, client_close) = match request {
            Ok(request) => {
                router.metrics.requests.inc();
                // Propagate the caller's trace id, or mint one at the edge.
                let trace = request.trace_id().unwrap_or_else(TraceId::mint);
                let response = {
                    let mut span = tracer.ctx(trace).child("gateway.route");
                    span.tag("path", request.path.clone());
                    let response = respond(router, backend_addrs, &request, span.ctx());
                    span.tag("status", response.status.to_string());
                    response
                };
                (response, Some(trace), request.wants_close())
            }
            Err(HttpError::ClosedEarly | HttpError::Io(_)) => return,
            Err(e) => {
                router.metrics.requests.inc();
                router.metrics.count_response(400);
                let mut out = stream;
                let _ = write_response(
                    &mut out,
                    &Forwarded {
                        status: 400,
                        content_type: "application/json".to_owned(),
                        body: ApiError::new(400, format!("bad request: {e}")).to_json(),
                        backend: None,
                    },
                    false,
                    None,
                );
                return;
            }
        };

        served += 1;
        let keep_alive =
            !client_close && served < KEEP_ALIVE_MAX && !shutdown.load(Ordering::SeqCst);
        let mut out = stream;
        let write_result = write_response(&mut out, &response, keep_alive, trace);
        let _ = out.flush();
        router.metrics.count_response(response.status);
        let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        router.metrics.latency.observe_us(elapsed_us);
        if !keep_alive || write_result.is_err() {
            return;
        }
    }
}

/// Dispatch one request: local endpoints (`/v1/healthz`, `/v1/metricsz`,
/// `/v1/tracez`, and their legacy aliases) are answered by the gateway
/// itself; everything else is forwarded under the request's span context.
fn respond(
    router: &Arc<Router>,
    backend_addrs: &[SocketAddr],
    request: &Request,
    ctx: cactus_obs::SpanCtx<'_>,
) -> Forwarded {
    if request.method == "POST" && request.path == "/v1/workloads" {
        return broadcast_workload(backend_addrs, request, ctx);
    }
    if request.method != "GET" {
        return Forwarded {
            status: 405,
            content_type: "application/json".to_owned(),
            body: ApiError::new(405, "only GET is supported (POST only on /v1/workloads)")
                .to_json(),
            backend: None,
        };
    }
    match request.path.as_str() {
        "/healthz" | "/v1/healthz" => Forwarded {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: "ok\n".to_owned(),
            backend: None,
        },
        "/metricsz" | "/v1/metricsz" => Forwarded {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: render_metrics(&router.metrics, &router.health, &router.pool, backend_addrs),
            backend: None,
        },
        "/v1/tracez" => tracez(ctx, request.query.as_deref()),
        "/v1/store/manifest" => Forwarded {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: sync::fleet_manifest(router, backend_addrs),
            backend: None,
        },
        "/v1/devices" => Forwarded {
            status: 200,
            content_type: "text/csv; charset=utf-8".to_owned(),
            body: fleet_devices(router, backend_addrs),
            backend: None,
        },
        path if path.starts_with("/v1/compare/") => compare::compare(router, request, ctx),
        _ => {
            // Re-assemble the full target so query strings survive the
            // trip to the backend.
            let target = match &request.query {
                Some(q) => format!("{}?{q}", request.path),
                None => request.path.clone(),
            };
            // Edge catalog check: a device id the catalog has never heard
            // of can't be answered by any backend — reject here with the
            // envelope instead of spending fleet attempts on it.
            if let Some(device) = device_for_target(&target) {
                if cactus_gpu::by_id(&device).is_none() {
                    let known = cactus_gpu::catalog::device_ids().join(", ");
                    return Forwarded {
                        status: 404,
                        content_type: "application/json".to_owned(),
                        body: ApiError::new(
                            404,
                            format!("unknown device {device:?}; the catalog has: {known}"),
                        )
                        .to_json(),
                        backend: None,
                    };
                }
            }
            let response = router.forward(&target, &routing_key(&target), Some(ctx));
            // A 200 profile answer means the winning backend durably holds
            // the record; copy it to the key's follower replica while the
            // request is still warm (deduped per key per process).
            if response.status == 200 {
                if let Some(winner) = response.backend {
                    sync::replicate_after_forward(router, &target, winner, Some(ctx));
                }
            }
            response
        }
    }
}

/// `POST /v1/workloads`: validate the submitted IR definition at the edge,
/// then broadcast it to every backend so the workload becomes routable
/// wherever the hash ring may land its profile requests.
///
/// Pre-validation runs the exact stack every backend runs
/// ([`cactus_serve::service::validate_submission`]), so a deterministic
/// rejection (`422` with the findings envelope, or a `400` name conflict)
/// is answered here before any backend persists anything — the fleet never
/// ends up half-registered over a verdict the gateway could have reached
/// itself. During the fan-out, any backend that is unreachable or answers
/// non-200 leaves the fleet divergent, and the client is told so: a `200`
/// is returned only when *every* backend accepted; otherwise the gateway
/// answers a retryable `502` naming the split (re-POSTing the same
/// definition is idempotent and converges the stragglers, and anti-entropy
/// replays `wir/` records into re-admitted backends as well).
fn broadcast_workload(
    backend_addrs: &[SocketAddr],
    request: &Request,
    ctx: cactus_obs::SpanCtx<'_>,
) -> Forwarded {
    use cactus_serve::service::{validate_submission, WorkloadRejection};
    match validate_submission(&request.body) {
        Ok(_) => {}
        Err(WorkloadRejection::Invalid(findings)) => {
            return Forwarded {
                status: 422,
                content_type: "application/json".to_owned(),
                body: cactus_serve::routes::workload_rejection_body(&findings),
                backend: None,
            }
        }
        Err(WorkloadRejection::Conflict(msg)) => {
            return Forwarded {
                status: 400,
                content_type: "application/json".to_owned(),
                body: ApiError::new(400, msg).to_json(),
                backend: None,
            }
        }
        Err(WorkloadRejection::Store(msg)) => {
            return Forwarded {
                status: 500,
                content_type: "application/json".to_owned(),
                body: ApiError::new(500, msg).to_json(),
                backend: None,
            }
        }
    }
    let mut accepted: Option<Forwarded> = None;
    let mut rejected: Option<Forwarded> = None;
    let mut accepts = 0usize;
    let mut failures = 0usize;
    for (index, addr) in backend_addrs.iter().enumerate() {
        let mut span = ctx.child("proxy.attempt");
        span.tag("backend", addr.to_string());
        match Client::new(*addr).post_traced("/v1/workloads", &request.body, Some(ctx.trace())) {
            Ok(reply) => {
                span.tag("status", reply.status.to_string());
                let content_type = reply
                    .header("content-type")
                    .unwrap_or("text/plain; charset=utf-8")
                    .to_owned();
                let forwarded = Forwarded {
                    status: reply.status,
                    content_type,
                    body: reply.body,
                    backend: Some(index),
                };
                if reply.status == 200 {
                    accepts += 1;
                    accepted.get_or_insert(forwarded);
                } else {
                    failures += 1;
                    rejected.get_or_insert(forwarded);
                }
            }
            Err(e) => {
                span.tag("error", e.to_string());
                failures += 1;
            }
        }
    }
    match (accepted, failures) {
        (Some(ok), 0) => ok,
        (Some(_), _) => Forwarded {
            status: 502,
            content_type: "application/json".to_owned(),
            body: ApiError::new(
                502,
                format!(
                    "workload accepted by {accepts} of {} backend(s); the rest were \
                     unreachable or refused it — resubmit to converge the fleet",
                    backend_addrs.len()
                ),
            )
            .to_json(),
            backend: None,
        },
        // Nothing accepted: a deterministic backend verdict (unexpected
        // after edge pre-validation, e.g. a version-skewed backend) beats
        // a generic 502.
        (None, _) => rejected.unwrap_or_else(|| Forwarded {
            status: 502,
            content_type: "application/json".to_owned(),
            body: ApiError::new(502, "no backend accepted the workload submission").to_json(),
            backend: None,
        }),
    }
}

/// `/v1/tracez[?trace=ID]`: the gateway's span ring as JSON lines. The
/// tracer is reached through the request's own span context.
fn tracez(ctx: cactus_obs::SpanCtx<'_>, query: Option<&str>) -> Forwarded {
    let filter = match query.and_then(|q| {
        q.split('&')
            .find_map(|pair| pair.strip_prefix("trace="))
            .map(|v| TraceId::parse(v).ok_or(v))
    }) {
        Some(Err(bad)) => {
            return Forwarded {
                status: 400,
                content_type: "application/json".to_owned(),
                body: ApiError::new(
                    400,
                    format!("invalid trace id {bad:?}; expected 16 hex digits"),
                )
                .to_json(),
                backend: None,
            }
        }
        Some(Ok(id)) => Some(id),
        None => None,
    };
    Forwarded {
        status: 200,
        content_type: "application/x-ndjson".to_owned(),
        body: ctx.tracer().render(filter),
        backend: None,
    }
}

/// The fleet-wide device catalog: the same 10-column CSV shape a single
/// backend's `/v1/devices` serves (so the typed client parses both), with
/// `modeled` meaning "at least one backend models it", prefixed by one
/// comment line per backend naming its observed device set.
fn fleet_devices(router: &Router, backend_addrs: &[SocketAddr]) -> String {
    let mut out = String::new();
    for (i, addr) in backend_addrs.iter().enumerate() {
        let set = router
            .capabilities
            .devices(i)
            .map_or_else(|| "unknown".to_owned(), |d| d.join(" "));
        out.push_str(&format!("# backend {i} = {addr}: {set}\n"));
    }
    // `None` = no backend observed yet: report the whole catalog as modeled,
    // matching the router's optimistic treatment of unknown backends.
    let fleet = router.capabilities.fleet_devices();
    out.push_str(
        "device,modeled,name,store_version,sm_count,peak_gips,peak_gtxn_per_s,\
         elbow_intensity,dram_bandwidth_gbps,l2_bytes\n",
    );
    for entry in cactus_gpu::CATALOG {
        let device = entry.device();
        let modeled = fleet
            .as_ref()
            .is_none_or(|ids| ids.iter().any(|id| id == entry.id));
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
            entry.id,
            modeled,
            device.name,
            entry.store_version(),
            device.sm_count,
            device.peak_gips(),
            device.peak_gtxn_per_s(),
            device.elbow_intensity(),
            device.dram_bandwidth_gbps,
            device.l2.size_bytes,
        ));
    }
    out
}

/// The shard key for a request path. Profile endpoints
/// (`/v1/<endpoint>/<device>/<scale>/<workload>`) key on the full tuple so
/// every view of one profile lands on the same shard cache; similarity
/// reference queries (`/v1/similar?device=&scale=&workload=`) key on that
/// triple so repeated queries about one profile land on the backend whose
/// index already ingested it; anything else keys on the whole path
/// (inline-vector and stats queries thereby share one backend's index).
#[must_use]
pub fn routing_key(target: &str) -> String {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let trimmed = path.trim_matches('/');
    if trimmed == "v1/similar" || trimmed == "v1/similar/stats" {
        let param = |name: &str| {
            query?.split('&').find_map(|pair| {
                let (k, v) = pair.split_once('=')?;
                (k == name).then_some(v)
            })
        };
        if let (Some(d), Some(s), Some(w)) = (param("device"), param("scale"), param("workload")) {
            return format!("similar/{d}/{s}/{w}");
        }
        return trimmed.to_owned();
    }
    let parts: Vec<&str> = trimmed.split('/').collect();
    if let ["v1", rest @ ..] = parts.as_slice() {
        if rest.len() == 4 {
            return rest.join("/");
        }
    }
    trimmed.to_owned()
}

/// Write a forwarded (or locally produced) response in the same wire shape
/// `cactus-serve` uses, echoing the request's trace id. The gateway keeps
/// its own writer because forwarded bodies carry the backend's content type
/// verbatim.
fn write_response<W: Write>(
    out: &mut W,
    response: &Forwarded,
    keep_alive: bool,
    trace: Option<TraceId>,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let trace_header = trace.map_or(String::new(), |t| format!("{TRACE_HEADER}: {t}\r\n"));
    // One write_all: fragment-per-write on a raw socket triggers Nagle +
    // delayed-ACK stalls (~40 ms) on the peer.
    let wire = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n{}",
        response.status,
        http::reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        trace_header,
        connection,
        response.body
    );
    out.write_all(wire.as_bytes())
}

/// The health thread: promote cooled-down ejections to half-open,
/// (optionally) actively probe routable backends so failures are noticed
/// even when no traffic is flowing, and run one store anti-entropy pass
/// for every backend that just passed its half-open trial — a re-admitted
/// backend may have missed replicated writes while it was away.
fn health_loop(
    router: &Arc<Router>,
    tracer: &Tracer,
    backend_addrs: &[SocketAddr],
    probe_interval: Option<Duration>,
    probe_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let health = &router.health;
    let mut last_probe = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        health.tick();
        if let Some(interval) = probe_interval {
            if last_probe.elapsed() >= interval {
                last_probe = Instant::now();
                for (i, &addr) in backend_addrs.iter().enumerate() {
                    // Ejected backends sit out their cooldown; probing them
                    // early would tell us nothing tick() doesn't.
                    if health.state(i) == HealthState::Ejected {
                        continue;
                    }
                    let probe = Client::new(addr)
                        .with_timeout(probe_timeout)
                        .get("/v1/healthz");
                    match probe {
                        Ok(reply) if reply.status == 200 => {
                            health.report_success(i);
                            // The body advertises the backend's modeled
                            // devices; refreshing on every probe keeps the
                            // capability map right across restarts that
                            // change a backend's device set.
                            if let Some(devices) = parse_health_devices(&reply.body) {
                                router.capabilities.record(i, devices);
                            }
                        }
                        _ => health.report_failure(i),
                    }
                }
            }
        }
        // Re-admissions are flagged by the data path and the probes alike;
        // each one gets exactly one repair pass here, off the request path.
        for i in router.health.take_readmitted() {
            let _ = sync::anti_entropy(router, tracer, i);
        }
        std::thread::sleep(HEALTH_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_key_extracts_profile_tuple() {
        assert_eq!(
            routing_key("/v1/profile/rtx-3080/tiny/GMS"),
            "profile/rtx-3080/tiny/GMS"
        );
        assert_eq!(
            routing_key("/v1/kernels/a100/small/PRT"),
            "kernels/a100/small/PRT"
        );
        assert_eq!(routing_key("/v1/workloads"), "v1/workloads");
        assert_eq!(routing_key("/other/path"), "other/path");
    }

    #[test]
    fn routing_key_shards_similar_queries_on_the_triple() {
        assert_eq!(
            routing_key("/v1/similar?device=rtx-3080&scale=tiny&workload=GMS&k=3"),
            "similar/rtx-3080/tiny/GMS"
        );
        assert_eq!(
            routing_key("/v1/similar/stats?device=rtx-3080&scale=tiny&workload=GMS"),
            "similar/rtx-3080/tiny/GMS"
        );
        // Vector and stats queries without a triple share the path key so
        // they reach one backend's (seeded) index consistently.
        assert_eq!(routing_key("/v1/similar?vector=1,2,3&k=2"), "v1/similar");
        assert_eq!(routing_key("/v1/similar/stats"), "v1/similar/stats");
    }

    #[test]
    fn gateway_requires_backends() {
        let err = Gateway::start(GatewayConfig::default(), Vec::new());
        assert!(err.is_err());
    }
}
