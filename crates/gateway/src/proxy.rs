//! The forwarding engine: candidate selection, retries with jittered
//! backoff, and latency-triggered hedging.
//!
//! Every request resolves to a routing key; the ring orders the fleet into
//! a failover list for that key (primary first). The proxy then:
//!
//! 1. **Filters by health** — ejected backends sink to the end of the list
//!    as a last resort (if every backend is ejected, trying one anyway beats
//!    a guaranteed 502, and doubles as an extra recovery probe).
//! 2. **Hedges the first attempt** — if the primary has not answered within
//!    a threshold derived from its own recent latency window (p-quantile
//!    clamped to a floor/cap), a second identical request races it on the
//!    next candidate. First response wins; the loser is abandoned.
//! 3. **Retries retryable outcomes** — transport errors (which also feed the
//!    ejection tracker) and `503` backpressure move to the next candidate
//!    after a jittered exponential backoff. Any other status is the
//!    backend's answer and is forwarded verbatim.
//!
//! Retries are only safe because the data plane is GET-only (idempotent);
//! the gateway rejects other methods before reaching this module.
//!
//! Tracing: [`Router::forward`] takes the request's span context and files
//! one `proxy.attempt` span per backend attempt (tagged with the target,
//! whether it was hedged, and the outcome), and propagates the trace id to
//! the backend in the `x-cactus-trace` header so both tiers' span logs
//! carry the same id. Synthesized errors (`no backends`, `all attempts
//! failed`) are the shared JSON envelope.

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::{ApiError, SpanCtx, TraceId};
use cactus_serve::client::{ClientError, HttpReply};

use crate::capability::{device_for_target, CapabilityMap};
use crate::connpool::ConnPool;
use crate::health::HealthTracker;
use crate::metrics::GatewayMetrics;
use crate::ring::{hash_str, HashRing};

/// Retry/hedge tuning; embedded in the gateway config.
#[derive(Debug, Clone)]
pub struct RoutePolicy {
    /// Total backend attempts per request (first try + retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff delay.
    pub backoff_cap: Duration,
    /// Master switch for hedged requests.
    pub hedge: bool,
    /// Latency quantile of the primary's window that arms the hedge timer.
    pub hedge_quantile: f64,
    /// Minimum hedge delay (also the default while the window is empty).
    pub hedge_floor: Duration,
    /// Maximum hedge delay.
    pub hedge_cap: Duration,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            hedge: true,
            hedge_quantile: 0.9,
            hedge_floor: Duration::from_millis(20),
            hedge_cap: Duration::from_secs(2),
        }
    }
}

/// What the proxy hands back to the connection handler.
#[derive(Debug)]
pub struct Forwarded {
    pub status: u16,
    pub content_type: String,
    pub body: String,
    /// Ring index of the backend whose reply this is; `None` for
    /// gateway-local and synthesized responses.
    pub backend: Option<usize>,
}

/// The shared routing state: ring + health + pool + counters.
#[derive(Debug)]
pub struct Router {
    ring: HashRing,
    pub health: Arc<HealthTracker>,
    pub pool: Arc<ConnPool>,
    pub metrics: Arc<GatewayMetrics>,
    /// Which catalog devices each backend models; consulted before the
    /// ring's failover order so requests never reach an incapable backend.
    pub capabilities: CapabilityMap,
    policy: RoutePolicy,
    /// Routing keys whose profile record has already been pushed to its
    /// follower replica this process lifetime — replication is idempotent,
    /// so this is purely a de-duplication of repeat reads.
    replicated: RankedMutex<HashSet<String>>,
}

enum Attempt {
    /// A backend answered; forward its reply.
    Reply(HttpReply),
    /// Backend saturated (503): retryable, no health penalty.
    Saturated(HttpReply),
    /// Transport or parse failure: retryable, counts toward ejection.
    Failed,
}

impl Router {
    #[must_use]
    pub fn new(
        ring: HashRing,
        health: Arc<HealthTracker>,
        pool: Arc<ConnPool>,
        metrics: Arc<GatewayMetrics>,
        policy: RoutePolicy,
    ) -> Self {
        let n = metrics.backends.len();
        Self {
            ring,
            health,
            pool,
            metrics,
            capabilities: CapabilityMap::new(n),
            policy,
            replicated: RankedMutex::new(
                rank::REPLICATED_KEYS,
                "gateway.replicated_keys",
                HashSet::new(),
            ),
        }
    }

    /// The replica set for `key`: the first two *capable* backends in raw
    /// ring order, independent of current health. Health-independence is
    /// the point — the set names where a record *should* live, so
    /// anti-entropy can repair a backend that was down when the record was
    /// written. Capability-dependence is equally the point: a backend that
    /// does not model the key's device could never serve (or re-derive) the
    /// record, so it is not a legitimate replica home.
    #[must_use]
    pub fn replica_set(&self, key: &str) -> Vec<usize> {
        // Replication keys are `profile/<device>/<scale>/<workload>`.
        let device = {
            let segs: Vec<&str> = key.split('/').collect();
            match segs.as_slice() {
                ["profile", device, _, _] => Some((*device).to_owned()),
                _ => None,
            }
        };
        self.ring
            .candidates(key)
            .into_iter()
            .filter(|&i| {
                device
                    .as_deref()
                    .is_none_or(|d| self.capabilities.capable(i, d))
            })
            .take(2)
            .collect()
    }

    /// True when `key`'s record was already pushed to its follower this
    /// process lifetime; marks it when not. One CAS-style check so repeat
    /// reads don't re-push.
    pub fn mark_replicated(&self, key: &str) -> bool {
        !self.replicated.lock().insert(key.to_owned())
    }

    /// Forget a [`mark_replicated`](Self::mark_replicated) claim — used
    /// when the copy that claimed the key could not read the source record,
    /// so a later read retries the replication.
    pub fn unmark_replicated(&self, key: &str) {
        self.replicated.lock().remove(key);
    }

    /// One `GET path` exchange with backend `i` over the pool, outside the
    /// retry/hedge machinery — the control-plane primitive replication and
    /// anti-entropy build on. `Some(body)` on a 200, `None` otherwise.
    #[must_use]
    pub fn fetch(&self, i: usize, path: &str, trace: Option<TraceId>) -> Option<String> {
        let mut conn = self.pool.checkout(i);
        match conn.get_traced(path, trace) {
            Ok(reply) if reply.status == 200 => {
                self.pool.checkin(i, conn);
                Some(reply.body)
            }
            Ok(_) => {
                self.pool.checkin(i, conn);
                None
            }
            Err(_) => None,
        }
    }

    /// Push one store record to backend `i` via
    /// `POST /v1/store/record/<key>`. True when the backend stored it.
    #[must_use]
    pub fn push_record(&self, i: usize, key: &str, body: &str, trace: Option<TraceId>) -> bool {
        let mut conn = self.pool.checkout(i);
        match conn.post_traced(&format!("/v1/store/record/{key}"), body, trace) {
            Ok(reply) if reply.status == 200 => {
                self.pool.checkin(i, conn);
                true
            }
            Ok(_) => {
                self.pool.checkin(i, conn);
                false
            }
            Err(_) => false,
        }
    }

    /// The ring's failover order for `key`, with currently-ejected backends
    /// moved to the back (kept as last resorts rather than dropped).
    #[must_use]
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        self.candidates_for(key, None)
    }

    /// [`candidates`](Self::candidates) restricted to backends that model
    /// `device`. Incapable backends are *dropped*, not demoted: a backend
    /// without the device's model answers a guaranteed 404, so routing to
    /// it is never better than failing over — and "last resort" semantics
    /// would let a capable-but-slow shard's traffic leak onto a shard that
    /// cannot answer it at all.
    #[must_use]
    pub fn candidates_for(&self, key: &str, device: Option<&str>) -> Vec<usize> {
        let order = self.ring.candidates(key);
        let (up, down): (Vec<usize>, Vec<usize>) = order
            .into_iter()
            .filter(|&i| device.is_none_or(|d| self.capabilities.capable(i, d)))
            .partition(|&i| self.health.available(i));
        let mut all = up;
        all.extend(down);
        all
    }

    /// Forward `GET path` for routing key `key` through the fleet,
    /// applying hedging and retries. Always produces a response: the
    /// backend's verbatim reply, or a synthesized `502` envelope when every
    /// attempt failed. `ctx` (when present) receives one `proxy.attempt`
    /// span per attempt and supplies the trace id forwarded to backends.
    pub fn forward(self: &Arc<Self>, path: &str, key: &str, ctx: Option<SpanCtx<'_>>) -> Forwarded {
        let trace = ctx.map(|c| c.trace());
        let device = device_for_target(path);
        let candidates = self.candidates_for(key, device.as_deref());
        if candidates.is_empty() {
            return match device {
                Some(d) if !self.ring.is_empty() => synth(
                    404,
                    &format!("no backend in the fleet models device {d:?} (see /v1/devices)"),
                ),
                _ => synth(502, "no backends configured"),
            };
        }
        let mut rng = hash_str(key) | 1;
        let mut last_saturated: Option<HttpReply> = None;
        let attempts = (self.policy.max_attempts as usize).max(1);
        for attempt in 0..attempts {
            let target = candidates[attempt % candidates.len()];
            if attempt > 0 {
                self.metrics.retries.inc();
                std::thread::sleep(self.backoff(attempt, &mut rng));
            }
            let mut span = ctx.map(|c| c.child("proxy.attempt"));
            if let Some(span) = span.as_mut() {
                span.tag("attempt", attempt.to_string());
                span.tag("backend", target.to_string());
            }
            let hedge_target = if attempt == 0 && self.policy.hedge {
                candidates.get(1).copied()
            } else {
                None
            };
            let hedged = hedge_target.is_some();
            let outcome = if let Some(hedge) = hedge_target {
                self.hedged_attempt(path, target, hedge, trace)
            } else {
                let r = self.try_backend(target, path, trace);
                (r, target)
            };
            if let Some(span) = span.as_mut() {
                span.tag("hedged", hedged.to_string());
                span.tag("winner", outcome.1.to_string());
                span.tag(
                    "outcome",
                    match &outcome.0 {
                        Attempt::Reply(reply) => reply.status.to_string(),
                        Attempt::Saturated(_) => "saturated".to_owned(),
                        Attempt::Failed => "failed".to_owned(),
                    },
                );
            }
            match outcome {
                (Attempt::Reply(reply), winner) => {
                    self.metrics.forwarded.inc();
                    self.metrics.backends[winner].routed.inc();
                    return Forwarded {
                        status: reply.status,
                        content_type: reply
                            .header("content-type")
                            .unwrap_or("text/plain; charset=utf-8")
                            .to_owned(),
                        body: reply.body,
                        backend: Some(winner),
                    };
                }
                (Attempt::Saturated(reply), _) => last_saturated = Some(reply),
                (Attempt::Failed, _) => {}
            }
        }
        // Attempts exhausted. A live-but-saturated fleet forwards its own
        // backpressure signal; a dead fleet gets a synthesized 502.
        if let Some(reply) = last_saturated {
            self.metrics.forwarded.inc();
            Forwarded {
                status: reply.status,
                content_type: reply
                    .header("content-type")
                    .unwrap_or("text/plain; charset=utf-8")
                    .to_owned(),
                body: reply.body,
                backend: None,
            }
        } else {
            synth(502, "all backends failed")
        }
    }

    /// Race the primary against a delayed hedge on `hedge_target`. Returns
    /// the winning outcome and which backend produced it.
    fn hedged_attempt(
        self: &Arc<Self>,
        path: &str,
        primary: usize,
        hedge_target: usize,
        trace: Option<TraceId>,
    ) -> (Attempt, usize) {
        let (tx, rx) = mpsc::channel::<(usize, Attempt)>();
        let spawn = |target: usize, tx: mpsc::Sender<(usize, Attempt)>| {
            let router = Arc::clone(self);
            let path = path.to_owned();
            std::thread::spawn(move || {
                let outcome = router.try_backend(target, &path, trace);
                let _ = tx.send((target, outcome));
            });
        };
        spawn(primary, tx.clone());
        match rx.recv_timeout(self.hedge_threshold(primary)) {
            Ok((who, outcome)) => (outcome, who),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Primary is slow: launch the hedge and take whichever
                // answers first with a usable reply.
                self.metrics.hedges.inc();
                spawn(hedge_target, tx.clone());
                drop(tx);
                let mut first_bad: Option<(usize, Attempt)> = None;
                while let Ok((who, outcome)) = rx.recv() {
                    match outcome {
                        Attempt::Reply(_) => {
                            if who == hedge_target {
                                self.metrics.hedge_wins.inc();
                            }
                            return (outcome, who);
                        }
                        other => {
                            if first_bad.is_none() {
                                first_bad = Some((who, other));
                            }
                        }
                    }
                }
                match first_bad {
                    Some((who, outcome)) => (outcome, who),
                    // Both sender clones dropped without a report — only
                    // possible if a racer thread died; treat as failed.
                    None => (Attempt::Failed, primary),
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => (Attempt::Failed, primary),
        }
    }

    /// One exchange with backend `i`, pooling the connection, propagating
    /// the trace id, and feeding the health tracker and latency window.
    fn try_backend(&self, i: usize, path: &str, trace: Option<TraceId>) -> Attempt {
        let mut conn = self.pool.checkout(i);
        let started = Instant::now();
        let result = conn.get_traced(path, trace);
        match result {
            Ok(reply) => {
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics.backends[i].latency.record(us);
                self.health.report_success(i);
                self.pool.checkin(i, conn);
                if reply.status == 503 {
                    Attempt::Saturated(reply)
                } else {
                    Attempt::Reply(reply)
                }
            }
            Err(ClientError::Io(_) | ClientError::Parse(_)) => {
                self.metrics.backends[i].failures.inc();
                self.health.report_failure(i);
                if !self.health.available(i) {
                    // Ejection invalidates pooled sockets; recovery trials
                    // should start from fresh dials.
                    self.pool.evict(i);
                }
                Attempt::Failed
            }
            Err(ClientError::Api(_) | ClientError::Status(..)) => {
                // Connection::get never yields these, but stay total.
                Attempt::Failed
            }
        }
    }

    /// How long to wait on the primary before launching the hedge: the
    /// configured quantile of the primary's own latency window, clamped to
    /// `[hedge_floor, hedge_cap]`; the floor alone while the window is cold.
    fn hedge_threshold(&self, primary: usize) -> Duration {
        let observed = self.metrics.backends[primary]
            .latency
            .quantile_us(self.policy.hedge_quantile)
            .map_or(self.policy.hedge_floor, Duration::from_micros);
        observed.clamp(self.policy.hedge_floor, self.policy.hedge_cap)
    }

    /// Jittered exponential backoff before retry `attempt` (1-based):
    /// uniform over `(0, base * 2^(attempt-1)]`, capped.
    fn backoff(&self, attempt: usize, rng: &mut u64) -> Duration {
        let exp = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        let ceiling = self
            .policy
            .backoff_base
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.policy.backoff_cap);
        let ceiling_us = u64::try_from(ceiling.as_micros()).unwrap_or(u64::MAX);
        Duration::from_micros(xorshift(rng) % ceiling_us.max(1))
    }
}

/// A gateway-synthesized error as the shared JSON envelope.
fn synth(status: u16, message: &str) -> Forwarded {
    Forwarded {
        status,
        content_type: "application/json".to_owned(),
        body: ApiError::new(status, message).to_json(),
        backend: None,
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthState;
    use std::net::SocketAddr;

    fn router(addrs: Vec<SocketAddr>, policy: RoutePolicy) -> Arc<Router> {
        let labels: Vec<String> = addrs.iter().map(ToString::to_string).collect();
        let n = addrs.len();
        Arc::new(Router::new(
            HashRing::new(&labels),
            Arc::new(HealthTracker::new(n, 2, Duration::from_secs(60))),
            Arc::new(ConnPool::new(addrs, Duration::from_millis(50), 4)),
            Arc::new(GatewayMetrics::new(n)),
            policy,
        ))
    }

    /// Low loopback ports with nothing listening: connects fail fast with
    /// ECONNREFUSED, standing in for dead backends.
    fn dead_addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 1 + i).parse().expect("addr"))
            .collect()
    }

    #[test]
    fn all_dead_backends_synthesize_502_and_eject() {
        let r = router(
            dead_addrs(2),
            RoutePolicy {
                hedge: false,
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_micros(200),
                ..RoutePolicy::default()
            },
        );
        let out = r.forward("/v1/workloads", "v1/workloads", None);
        assert_eq!(out.status, 502);
        assert!(
            out.body.contains("\"code\":502") && out.body.contains("\"retryable\":true"),
            "synth errors are envelopes, got {:?}",
            out.body
        );
        assert_eq!(r.metrics.retries.get(), 2);
        // 3 attempts over 2 backends: one backend saw 2 failures -> ejected.
        assert_eq!(r.health.ejections(), 1);
        let ejected = (0..2)
            .filter(|&i| r.health.state(i) == HealthState::Ejected)
            .count();
        assert_eq!(ejected, 1);
    }

    #[test]
    fn candidates_push_ejected_backends_to_the_back() {
        let r = router(dead_addrs(3), RoutePolicy::default());
        let key = "profile/rtx-3080/tiny/GMS";
        let order = r.candidates(key);
        let primary = order[0];
        r.health.report_failure(primary);
        r.health.report_failure(primary);
        assert_eq!(r.health.state(primary), HealthState::Ejected);
        let reordered = r.candidates(key);
        assert_eq!(
            *reordered.last().expect("non-empty"),
            primary,
            "ejected primary demoted to last resort"
        );
        assert_eq!(reordered.len(), 3, "no candidate dropped");
    }

    #[test]
    fn incapable_backends_are_dropped_not_demoted() {
        let r = router(dead_addrs(3), RoutePolicy::default());
        r.capabilities.record(0, vec!["uhd-630".into()]);
        r.capabilities.record(1, vec!["rtx-3080".into()]);
        r.capabilities.record(2, vec!["rtx-3080".into()]);
        let key = "profile/rtx-3080/tiny/GMS";
        let order = r.candidates_for(key, Some("rtx-3080"));
        assert!(!order.contains(&0), "incapable backend 0 in {order:?}");
        assert_eq!(order.len(), 2);
        // Ejection still only demotes *capable* candidates.
        r.health.report_failure(order[0]);
        r.health.report_failure(order[0]);
        let reordered = r.candidates_for(key, Some("rtx-3080"));
        assert_eq!(
            reordered.len(),
            2,
            "ejected capable backend kept as last resort"
        );
        assert!(!reordered.contains(&0));
        // The replica set parses the device out of the key itself.
        let replicas = r.replica_set(key);
        assert_eq!(replicas.len(), 2);
        assert!(!replicas.contains(&0), "replica home must model the device");
        assert_eq!(r.replica_set("profile/uhd-630/tiny/GMS"), vec![0]);
    }

    #[test]
    fn fleet_without_the_device_synthesizes_404() {
        let r = router(
            dead_addrs(2),
            RoutePolicy {
                hedge: false,
                ..RoutePolicy::default()
            },
        );
        r.capabilities.record(0, vec!["rtx-3080".into()]);
        r.capabilities.record(1, vec!["rtx-3080".into()]);
        let out = r.forward("/v1/profile/a100/tiny/GMS", "profile/a100/tiny/GMS", None);
        assert_eq!(out.status, 404);
        assert!(
            out.body.contains("models device") && out.body.contains("a100"),
            "got {:?}",
            out.body
        );
        assert_eq!(r.metrics.retries.get(), 0, "nothing was attempted");
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let r = router(dead_addrs(1), RoutePolicy::default());
        let mut rng = 42u64;
        for attempt in 1..6 {
            let d = r.backoff(attempt, &mut rng);
            assert!(d <= r.policy.backoff_cap, "attempt {attempt}: {d:?}");
        }
    }
}
