//! `cactus-gateway` — a sharded routing tier in front of a `cactus-serve`
//! fleet.
//!
//! One gateway process fronts N profile-serving backends and gives clients
//! a single address with better tail latency and availability than any
//! single backend:
//!
//! * **Consistent-hash routing** ([`ring`]) — each profile key (endpoint,
//!   device, scale, workload) maps to a stable backend, so every shard's
//!   response cache and engine memo cache stay hot for its slice of the
//!   keyspace, and adding or losing a backend only remaps ~1/N of keys.
//! * **Health-checked failover** ([`health`]) — consecutive transport
//!   failures eject a backend from rotation; after a cooldown it re-enters
//!   half-open and one successful trial request re-admits it. Passive
//!   (data-path) detection always runs; active `/healthz` probing is
//!   optional.
//! * **Retries with jittered backoff** ([`proxy`]) — idempotent `GET`s that
//!   hit a transport error or `503` move to the next backend on the ring.
//! * **Hedged requests** ([`proxy`]) — when the primary backend exceeds a
//!   latency threshold derived from its own recent window, a second
//!   identical request races it on the next ring candidate; first response
//!   wins. This converts a slow shard's p99 into roughly its neighbour's
//!   p50.
//! * **Connection pooling** ([`connpool`]) — keep-alive connections to each
//!   backend are reused across requests.
//! * **Device-aware routing** ([`capability`]) — backends advertise which
//!   catalog devices they model on `/v1/healthz`; the gateway learns the
//!   map at startup and on every probe, and routing, failover, hedging,
//!   and replication all restrict themselves to capable backends. A device
//!   nobody models answers `404` at the edge instead of being simulated by
//!   an unwitting shard.
//! * **Cross-device comparison** ([`compare`]) — `GET
//!   /v1/compare/<scale>/<workload>?devices=a,b` fans out to the owning
//!   backends in parallel and synthesizes one table: per-kernel roofline
//!   placement on every device, speedup ratios against the first device,
//!   and bottleneck shifts (kernels whose boundedness class changes between
//!   devices), rendered as JSON or CSV.
//! * **Fleet supervision** ([`supervisor`]) — in-process spawn / kill /
//!   restart of `cactus-serve` backends with pinned ports, powering both
//!   the `--fleet` flag of the `cactus-gateway` binary and the failover
//!   integration suite.
//!
//! Observability mirrors the backends: `/v1/metricsz` ([`metrics`]) exposes
//! per-backend route counts, failures, health states, ejections, retries,
//! hedge launches/wins, and latency quantiles, rendered by the same
//! `cactus_obs::MetricsRegistry` exposition code the backends use (the
//! legacy `/metricsz` spelling stays as an alias). Every request carries a
//! trace id — propagated from `x-cactus-trace` or minted at the edge —
//! that roots a `gateway.route` span, follows the request to the chosen
//! backend, and is queryable at `/v1/tracez` on both tiers.

pub mod capability;
pub mod compare;
pub mod connpool;
pub mod health;
pub mod metrics;
pub mod proxy;
pub mod ring;
pub mod server;
pub mod supervisor;
pub mod sync;

pub use capability::CapabilityMap;
pub use health::{HealthState, HealthTracker};
pub use proxy::{RoutePolicy, Router};
pub use ring::HashRing;
pub use server::{Gateway, GatewayConfig};
pub use supervisor::Supervisor;
