//! Keep-alive connection pooling, one idle stack per backend.
//!
//! Workers check a [`cactus_serve::Connection`] out, run one or more
//! exchanges on it, and check it back in. Connections that went bad (or
//! that the server closed) are simply dropped on check-in; `Connection`
//! itself re-dials lazily, so a checked-out handle is always usable. The
//! pool is bounded per backend so a burst doesn't strand hundreds of idle
//! sockets.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cactus_obs::lock::{rank, RankedMutex};
use cactus_serve::Connection;

/// Per-backend stacks of idle keep-alive connections.
#[derive(Debug)]
pub struct ConnPool {
    addrs: Vec<SocketAddr>,
    idle: Vec<RankedMutex<Vec<Connection>>>,
    timeout: Duration,
    max_idle: usize,
    dials: AtomicU64,
    reuses: AtomicU64,
}

impl ConnPool {
    /// A pool over `addrs`, keeping at most `max_idle` idle connections per
    /// backend; `timeout` applies to connect/read/write on each connection.
    #[must_use]
    pub fn new(addrs: Vec<SocketAddr>, timeout: Duration, max_idle: usize) -> Self {
        let idle = addrs
            .iter()
            .map(|_| RankedMutex::new(rank::CONN_POOL, "gateway.connpool", Vec::new()))
            .collect();
        Self {
            addrs,
            idle,
            timeout,
            max_idle: max_idle.max(1),
            dials: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// The address of backend `i`.
    #[must_use]
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Number of backends.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the pool fronts no backends.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Take an idle connection to backend `i`, or a fresh (lazily dialing)
    /// one if none is pooled.
    #[must_use]
    pub fn checkout(&self, i: usize) -> Connection {
        if let Some(conn) = self.idle[i].lock().pop() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            return conn;
        }
        self.dials.fetch_add(1, Ordering::Relaxed);
        Connection::new(self.addrs[i], self.timeout)
    }

    /// Return a connection to backend `i`'s idle stack. Dead connections
    /// and overflow beyond `max_idle` are dropped (the socket closes).
    pub fn checkin(&self, i: usize, conn: Connection) {
        if !conn.is_connected() {
            return;
        }
        let mut idle = self.idle[i].lock();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Drop every pooled connection to backend `i` (e.g. after ejection, so
    /// recovery trials start from fresh sockets).
    pub fn evict(&self, i: usize) {
        self.idle[i].lock().clear();
    }

    /// Checkouts satisfied by a fresh connection handle.
    #[must_use]
    pub fn dials(&self) -> u64 {
        self.dials.load(Ordering::Relaxed)
    }

    /// Checkouts satisfied from the idle stack.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max_idle: usize) -> ConnPool {
        ConnPool::new(
            vec!["127.0.0.1:9".parse().expect("addr")],
            Duration::from_millis(50),
            max_idle,
        )
    }

    #[test]
    fn checkout_without_idle_counts_a_dial() {
        let p = pool(4);
        let c = p.checkout(0);
        assert_eq!(p.dials(), 1);
        assert_eq!(p.reuses(), 0);
        // Never dialed, so it is not connected and check-in drops it.
        p.checkin(0, c);
        let _ = p.checkout(0);
        assert_eq!(p.dials(), 2, "dead connection was not pooled");
    }

    #[test]
    fn evict_clears_idle_stack() {
        let p = pool(4);
        p.evict(0); // empty evict is a no-op
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
