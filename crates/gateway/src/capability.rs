//! Per-backend modeled-device capability map.
//!
//! Each `cactus-serve` backend advertises the catalog devices it models on
//! `/v1/healthz` (`ok\ndevices a b c\n`). The gateway records that set here
//! — once synchronously at startup and again on every successful active
//! probe — and the router consults it so that a request for device `d` is
//! only ever routed to, failed over to, hedged against, or replicated onto
//! a backend that models `d`.
//!
//! A backend whose set has never been observed (it was down at startup and
//! probing is disabled) is treated **optimistically** as capable of
//! everything: routing it a request it cannot serve yields a well-formed
//! `404` envelope from the backend itself, whereas withholding traffic from
//! a capable-but-unobserved backend would be an availability loss.

use std::collections::BTreeSet;

use cactus_obs::lock::{rank, RankedMutex};

/// Which catalog devices each backend slot models. `None` = never observed.
#[derive(Debug)]
pub struct CapabilityMap {
    sets: RankedMutex<Vec<Option<BTreeSet<String>>>>,
}

impl CapabilityMap {
    /// An all-unknown map for `n` backends.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            sets: RankedMutex::new(rank::CAPABILITY, "gateway.capability", vec![None; n]),
        }
    }

    /// Record the advertised device set for backend `i` (idempotent).
    pub fn record(&self, i: usize, devices: Vec<String>) {
        let mut sets = self.sets.lock();
        if let Some(slot) = sets.get_mut(i) {
            *slot = Some(devices.into_iter().collect());
        }
    }

    /// Does backend `i` model `device`? Unknown backends answer `true`.
    #[must_use]
    pub fn capable(&self, i: usize, device: &str) -> bool {
        let sets = self.sets.lock();
        match sets.get(i) {
            Some(Some(set)) => set.contains(device),
            _ => true,
        }
    }

    /// The observed device set for backend `i`, sorted; `None` if unknown.
    #[must_use]
    pub fn devices(&self, i: usize) -> Option<Vec<String>> {
        let sets = self.sets.lock();
        sets.get(i)?.as_ref().map(|s| s.iter().cloned().collect())
    }

    /// Union of every observed set — what the fleet as a whole can serve.
    /// `None` when no backend has been observed yet.
    #[must_use]
    pub fn fleet_devices(&self) -> Option<Vec<String>> {
        let sets = self.sets.lock();
        let mut union = BTreeSet::new();
        let mut observed = false;
        for set in sets.iter().flatten() {
            observed = true;
            union.extend(set.iter().cloned());
        }
        observed.then(|| union.into_iter().collect())
    }
}

/// Extract the catalog device id a request targets, if the path addresses
/// one: triple endpoints (`/v1/<ep>/<device>/<scale>/<workload>`), the
/// similarity endpoint (`/v1/similar?device=...`), and store record pushes
/// (`/v1/store/record/<device>/<scale>/<workload>`).
#[must_use]
pub fn device_for_target(target: &str) -> Option<String> {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let segs: Vec<&str> = path.trim_matches('/').split('/').collect();
    match segs.as_slice() {
        ["v1", "similar"] => query?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == "device" && !v.is_empty()).then(|| v.to_owned())
        }),
        ["v1", "store", "record", device, _, _] => Some((*device).to_owned()),
        ["v1", ep, device, _, _] if *ep != "store" && *ep != "compare" => {
            Some((*device).to_owned())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_backends_are_optimistically_capable() {
        let map = CapabilityMap::new(2);
        assert!(map.capable(0, "rtx-3080"));
        assert!(map.capable(1, "uhd-630"));
        assert_eq!(map.devices(0), None);
        assert_eq!(map.fleet_devices(), None);
    }

    #[test]
    fn recorded_sets_gate_capability() {
        let map = CapabilityMap::new(3);
        map.record(0, vec!["rtx-3080".into(), "a100".into()]);
        map.record(1, vec!["uhd-630".into()]);
        assert!(map.capable(0, "rtx-3080"));
        assert!(!map.capable(0, "uhd-630"));
        assert!(map.capable(1, "uhd-630"));
        assert!(map.capable(2, "uhd-630"), "slot 2 is still unknown");
        assert_eq!(
            map.devices(0),
            Some(vec!["a100".to_owned(), "rtx-3080".to_owned()])
        );
        assert_eq!(
            map.fleet_devices(),
            Some(vec![
                "a100".to_owned(),
                "rtx-3080".to_owned(),
                "uhd-630".to_owned()
            ])
        );
    }

    #[test]
    fn record_replaces_and_ignores_out_of_range() {
        let map = CapabilityMap::new(1);
        map.record(0, vec!["a100".into()]);
        map.record(0, vec!["gtx-1080".into()]);
        assert!(!map.capable(0, "a100"));
        assert!(map.capable(0, "gtx-1080"));
        map.record(7, vec!["a100".into()]); // out of range: no panic
    }

    #[test]
    fn device_extraction_covers_the_routed_surface() {
        for (target, want) in [
            ("/v1/profile/rtx-3080/profile/GMS", Some("rtx-3080")),
            ("/v1/roofline/uhd-630/tiny/BFS", Some("uhd-630")),
            ("/v1/kernels/a100/profile/GMS", Some("a100")),
            ("/v1/dominant/a100/profile/GMS", Some("a100")),
            ("/v1/store/record/rtx-3060/tiny/GMS", Some("rtx-3060")),
            ("/v1/similar?device=rtx-3080&scale=tiny", Some("rtx-3080")),
            ("/v1/similar?scale=tiny", None),
            ("/v1/compare/profile/GMS?devices=a,b", None),
            ("/v1/healthz", None),
            ("/v1/devices", None),
            ("/v1/store/manifest", None),
        ] {
            assert_eq!(
                device_for_target(target).as_deref(),
                want,
                "target {target}"
            );
        }
    }
}
