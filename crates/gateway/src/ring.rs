//! Consistent-hash ring over the backend fleet.
//!
//! Each backend contributes [`VNODES`] virtual points to a 64-bit ring;
//! a key routes to the first point clockwise from its hash. Two properties
//! make this the right shape for profile sharding:
//!
//! * **Cache affinity** — a given `(endpoint, device, scale, workload)` key
//!   always lands on the same backend, so that shard's response cache and
//!   engine memo cache stay hot for its slice of the keyspace.
//! * **Minimal disruption** — ejecting or adding one backend only remaps
//!   the keys whose nearest point belonged to it (~1/N of the keyspace);
//!   every other key keeps its shard and its warm caches.
//!
//! [`HashRing::candidates`] returns *all* backends in ring order from the
//! key's position, which is exactly the failover order: the proxy tries the
//! primary first, and a retry or hedge moves to the next distinct backend
//! on the ring.

/// Virtual points per backend. High enough that the per-backend share of a
/// uniform keyspace concentrates near 1/N, low enough that ring
/// construction and lookup stay trivial.
pub const VNODES: usize = 128;

/// An immutable consistent-hash ring over `n` backends.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Build the ring from stable backend labels (their addresses): ring
    /// geometry depends on the labels, not the order they were listed in.
    #[must_use]
    pub fn new(labels: &[String]) -> Self {
        let mut points: Vec<(u64, usize)> = labels
            .iter()
            .enumerate()
            .flat_map(|(backend, label)| {
                (0..VNODES).map(move |v| (hash_str(&format!("{label}#{v}")), backend))
            })
            .collect();
        points.sort_unstable();
        Self {
            points,
            backends: labels.len(),
        }
    }

    /// Number of backends on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backends
    }

    /// True when the ring has no backends.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    /// The backend owning `key` (its first candidate).
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    #[must_use]
    pub fn primary(&self, key: &str) -> usize {
        // lint:allow(no_panic, candidates() yields one entry per backend and the ring is non-empty per the documented contract)
        self.candidates(key)[0]
    }

    /// Every backend in ring order starting from `key`'s position: the
    /// failover order. Distinct backends only, so the list length equals
    /// the backend count.
    #[must_use]
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        let h = hash_str(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

/// FNV-1a folded through a splitmix64 finalizer: FNV alone clusters nearby
/// strings; the finalizer spreads the points uniformly around the ring.
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_backends() {
        let ring = HashRing::new(&labels(3));
        for key in ["a/b/c", "profile/rtx-3080/tiny/GMS", ""] {
            let c1 = ring.candidates(key);
            let c2 = ring.candidates(key);
            assert_eq!(c1, c2, "stable for {key:?}");
            assert_eq!(c1.len(), 3, "all backends listed for {key:?}");
            let mut sorted = c1.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "distinct backends for {key:?}");
        }
    }

    #[test]
    fn keys_balance_across_backends() {
        let ring = HashRing::new(&labels(3));
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            counts[ring.primary(&format!("kernels/device-{}/scale/wl-{i}", i % 7))] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (600..=1500).contains(&c),
                "backend {b} owns {c}/3000 keys — ring is skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let all = HashRing::new(&labels(3));
        // The two-backend ring keeps the same labels for backends 0 and 1.
        let without_last = HashRing::new(&labels(2));
        let mut moved = 0usize;
        let total = 1000usize;
        for i in 0..total {
            let key = format!("key-{i}");
            let before = all.primary(&key);
            let after = without_last.primary(&key);
            if before < 2 {
                assert_eq!(before, after, "key {key} was not on the removed backend");
            } else {
                moved += 1;
            }
        }
        assert!(
            moved > 0 && moved < total / 2,
            "~1/3 of keys should move, moved {moved}/{total}"
        );
    }

    #[test]
    fn candidate_order_follows_the_ring() {
        let ring = HashRing::new(&labels(5));
        // The failover order must itself be stable and start at the primary.
        let c = ring.candidates("some/profile/key");
        assert_eq!(c[0], ring.primary("some/profile/key"));
        assert_eq!(c.len(), 5);
    }
}
