//! In-process fleet management: spawn, kill, and restart `cactus-serve`
//! backends behind the gateway.
//!
//! Each slot remembers its [`ServeConfig`] with the bound address **pinned**
//! after the first start (an ephemeral `:0` bind is resolved once, then
//! written back into the config), so a restarted backend reappears at the
//! same address the ring hashed it to. Rebinding a just-killed port works
//! because the serve listener sets `SO_REUSEADDR`; without it, lingering
//! TIME_WAIT sockets would make every restart race a kernel timer.
//!
//! The slot table lives behind a [`RankedMutex`] (rank
//! [`rank::SUPERVISOR`], the outermost lock in the workspace order), so the
//! signal handler, the admin path, and the tests can all drive the fleet
//! through a shared reference. Servers are taken *out* of the table before
//! being joined: a slow drain never blocks `addrs()`/`running()` readers.
//!
//! The supervisor is how the failover story gets exercised end to end: the
//! integration suite kills a live backend mid-run (clients must see zero
//! errors thanks to ejection + re-routing) and restarts it (the half-open
//! trial must re-admit it).

use std::io;
use std::net::SocketAddr;

use cactus_obs::lock::{rank, RankedMutex};
use cactus_serve::{ServeConfig, Server};

struct Slot {
    config: ServeConfig,
    /// The pinned address `config.addr` resolves to, parsed once at spawn.
    addr: SocketAddr,
    server: Option<Server>,
}

/// A fixed set of supervised backend slots.
pub struct Supervisor {
    slots: RankedMutex<Vec<Slot>>,
}

impl Supervisor {
    /// Start `n` backends from `base` (its `addr` is used as-is for the
    /// first slot only if it names port 0; every slot binds ephemerally and
    /// then pins the resolved address).
    ///
    /// When `base` carries a `store_dir`, each slot gets its own `slot-<i>`
    /// subdirectory of it: the embedded store's segment files assume a
    /// single writer per directory, so two backends sharing one tree would
    /// corrupt each other. The subdirectory is pinned in the slot's config,
    /// so a restarted backend reopens *its own* segments — which is what
    /// makes kill/restart durability and anti-entropy testable in-process.
    ///
    /// # Errors
    ///
    /// Propagates the first bind failure; already-started backends are shut
    /// down before returning.
    pub fn spawn_fleet(n: usize, base: &ServeConfig) -> io::Result<Self> {
        let device_sets = vec![base.devices.clone(); n];
        Self::spawn_heterogeneous(&device_sets, base)
    }

    /// [`spawn_fleet`](Self::spawn_fleet) with one modeled-device set per
    /// slot: slot `i` models `device_sets[i]` (empty = the full catalog).
    /// This is how a heterogeneous fleet — different slots modeling
    /// different hardware — is stood up for the device-aware routing and
    /// `/v1/compare` paths.
    ///
    /// # Errors
    ///
    /// Propagates the first bind or device-validation failure;
    /// already-started backends are shut down before returning.
    pub fn spawn_heterogeneous(
        device_sets: &[Vec<String>],
        base: &ServeConfig,
    ) -> io::Result<Self> {
        let mut slots = Vec::with_capacity(device_sets.len());
        for (i, devices) in device_sets.iter().enumerate() {
            let mut config = base.clone();
            config.addr = "127.0.0.1:0".to_owned();
            config.devices = devices.clone();
            config.store_dir = base
                .store_dir
                .as_ref()
                .map(|dir| dir.join(format!("slot-{i}")));
            match Server::start(config.clone()) {
                Ok(server) => {
                    // Pin the resolved port so a restart reuses it.
                    let addr = server.addr();
                    config.addr = addr.to_string();
                    slots.push(Slot {
                        config,
                        addr,
                        server: Some(server),
                    });
                }
                Err(e) => {
                    for slot in slots {
                        if let Some(server) = slot.server {
                            server.join();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            slots: RankedMutex::new(rank::SUPERVISOR, "gateway.supervisor", slots),
        })
    }

    /// Number of slots (running or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when the supervisor manages no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Every slot's pinned address, in slot order (stable across restarts).
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.slots.lock().iter().map(|s| s.addr).collect()
    }

    /// Whether slot `i` currently has a running server.
    #[must_use]
    pub fn running(&self, i: usize) -> bool {
        self.slots.lock().get(i).is_some_and(|s| s.server.is_some())
    }

    /// Gracefully stop slot `i` (drains in-flight requests, then joins all
    /// of its threads). No-op if already stopped or out of range.
    pub fn kill(&self, i: usize) {
        // Take the server out under the lock, join outside it: a drain can
        // take as long as the slowest in-flight request, and readers
        // (addrs, running) must not wait on it.
        let server = self.slots.lock().get_mut(i).and_then(|s| s.server.take());
        if let Some(server) = server {
            server.join();
        }
    }

    /// Restart slot `i` on its pinned address. No-op if already running or
    /// out of range.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (the slot stays stopped).
    pub fn restart(&self, i: usize) -> io::Result<()> {
        let config = match self.slots.lock().get(i) {
            Some(slot) if slot.server.is_none() => slot.config.clone(),
            _ => return Ok(()),
        };
        // Bind outside the lock (it can fail slowly), then install. The
        // slot cannot race to a second server: only `restart` fills an
        // empty slot, and a concurrent fill is re-joined defensively.
        let server = Server::start(config)?;
        let displaced = self
            .slots
            .lock()
            .get_mut(i)
            .and_then(|s| s.server.replace(server));
        if let Some(old) = displaced {
            old.join();
        }
        Ok(())
    }

    /// Stop every running backend, draining each.
    pub fn shutdown_all(&self) {
        // Signal all first so they drain concurrently, then join — again
        // with the servers moved out of the table.
        let servers: Vec<Server> = {
            let mut slots = self.slots.lock();
            for slot in slots.iter() {
                if let Some(server) = &slot.server {
                    server.shutdown();
                }
            }
            slots.iter_mut().filter_map(|s| s.server.take()).collect()
        };
        for server in servers {
            server.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_serve::Client;
    use std::time::Duration;

    fn base() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue: 8,
            store_dir: Some(std::env::temp_dir().join("cactus-supervisor-test-store")),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fleet_spawns_on_distinct_ports_and_answers_health() {
        let fleet = Supervisor::spawn_fleet(2, &base()).expect("spawn");
        let addrs = fleet.addrs();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        for &addr in &addrs {
            let reply = Client::new(addr)
                .with_timeout(Duration::from_secs(5))
                .get("/v1/healthz")
                .expect("healthz");
            assert_eq!(reply.status, 200);
        }
        fleet.shutdown_all();
        assert!(!fleet.running(0) && !fleet.running(1));
    }

    #[test]
    fn heterogeneous_slots_advertise_their_own_devices() {
        let fleet = Supervisor::spawn_heterogeneous(
            &[
                vec!["rtx-3080".to_owned()],
                vec!["uhd-630".to_owned(), "rtx-3060".to_owned()],
            ],
            &base(),
        )
        .expect("spawn");
        let addrs = fleet.addrs();
        let devices_of = |addr| {
            let reply = Client::new(addr)
                .with_timeout(Duration::from_secs(5))
                .get("/v1/healthz")
                .expect("healthz");
            assert_eq!(reply.status, 200);
            cactus_serve::parse_health_devices(&reply.body).expect("devices line")
        };
        assert_eq!(devices_of(addrs[0]), vec!["rtx-3080".to_owned()]);
        assert_eq!(
            devices_of(addrs[1]),
            vec!["uhd-630".to_owned(), "rtx-3060".to_owned()],
            "slot 1 advertises exactly its configured device set"
        );
        fleet.shutdown_all();
    }

    #[test]
    fn kill_and_restart_reuse_the_pinned_port() {
        let fleet = Supervisor::spawn_fleet(1, &base()).expect("spawn");
        let addr = fleet.addrs()[0];
        fleet.kill(0);
        assert!(!fleet.running(0));
        assert!(
            Client::new(addr)
                .with_timeout(Duration::from_millis(500))
                .get("/v1/healthz")
                .is_err(),
            "killed backend must stop answering"
        );
        fleet.restart(0).expect("rebind pinned port");
        assert_eq!(fleet.addrs()[0], addr, "address pinned across restart");
        let reply = Client::new(addr)
            .with_timeout(Duration::from_secs(5))
            .get("/v1/healthz")
            .expect("healthz after restart");
        assert_eq!(reply.status, 200);
        fleet.shutdown_all();
    }

    #[test]
    fn out_of_range_slot_ops_are_noops() {
        let fleet = Supervisor::spawn_fleet(1, &base()).expect("spawn");
        fleet.kill(7);
        assert!(fleet.restart(7).is_ok());
        assert!(!fleet.running(7));
        fleet.shutdown_all();
    }
}
