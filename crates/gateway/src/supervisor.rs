//! In-process fleet management: spawn, kill, and restart `cactus-serve`
//! backends behind the gateway.
//!
//! Each slot remembers its [`ServeConfig`] with the bound address **pinned**
//! after the first start (an ephemeral `:0` bind is resolved once, then
//! written back into the config), so a restarted backend reappears at the
//! same address the ring hashed it to. Rebinding a just-killed port works
//! because the serve listener sets `SO_REUSEADDR`; without it, lingering
//! TIME_WAIT sockets would make every restart race a kernel timer.
//!
//! The supervisor is how the failover story gets exercised end to end: the
//! integration suite kills a live backend mid-run (clients must see zero
//! errors thanks to ejection + re-routing) and restarts it (the half-open
//! trial must re-admit it).

use std::io;
use std::net::SocketAddr;

use cactus_serve::{ServeConfig, Server};

struct Slot {
    config: ServeConfig,
    server: Option<Server>,
}

/// A fixed set of supervised backend slots.
pub struct Supervisor {
    slots: Vec<Slot>,
}

impl Supervisor {
    /// Start `n` backends from `base` (its `addr` is used as-is for the
    /// first slot only if it names port 0; every slot binds ephemerally and
    /// then pins the resolved address).
    ///
    /// # Errors
    ///
    /// Propagates the first bind failure; already-started backends are shut
    /// down before returning.
    pub fn spawn_fleet(n: usize, base: &ServeConfig) -> io::Result<Self> {
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let mut config = base.clone();
            config.addr = "127.0.0.1:0".to_owned();
            match Server::start(config.clone()) {
                Ok(server) => {
                    // Pin the resolved port so a restart reuses it.
                    config.addr = server.addr().to_string();
                    slots.push(Slot {
                        config,
                        server: Some(server),
                    });
                }
                Err(e) => {
                    for slot in slots {
                        if let Some(server) = slot.server {
                            server.join();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self { slots })
    }

    /// Number of slots (running or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the supervisor manages no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Every slot's pinned address, in slot order (stable across restarts).
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.slots
            .iter()
            .map(|s| s.config.addr.parse().expect("pinned addr is valid"))
            .collect()
    }

    /// Whether slot `i` currently has a running server.
    #[must_use]
    pub fn running(&self, i: usize) -> bool {
        self.slots[i].server.is_some()
    }

    /// Borrow slot `i`'s running server, if any.
    #[must_use]
    pub fn server(&self, i: usize) -> Option<&Server> {
        self.slots[i].server.as_ref()
    }

    /// Gracefully stop slot `i` (drains in-flight requests, then joins all
    /// of its threads). No-op if already stopped.
    pub fn kill(&mut self, i: usize) {
        if let Some(server) = self.slots[i].server.take() {
            server.join();
        }
    }

    /// Restart slot `i` on its pinned address. No-op if already running.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (the slot stays stopped).
    pub fn restart(&mut self, i: usize) -> io::Result<()> {
        if self.slots[i].server.is_none() {
            self.slots[i].server = Some(Server::start(self.slots[i].config.clone())?);
        }
        Ok(())
    }

    /// Stop every running backend, draining each.
    pub fn shutdown_all(&mut self) {
        // Signal all first so they drain concurrently, then join.
        for slot in &self.slots {
            if let Some(server) = &slot.server {
                server.shutdown();
            }
        }
        for slot in &mut self.slots {
            if let Some(server) = slot.server.take() {
                server.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_serve::Client;
    use std::time::Duration;

    fn base() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue: 8,
            store_dir: Some(std::env::temp_dir().join("cactus-supervisor-test-store")),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fleet_spawns_on_distinct_ports_and_answers_health() {
        let mut fleet = Supervisor::spawn_fleet(2, &base()).expect("spawn");
        let addrs = fleet.addrs();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        for &addr in &addrs {
            let reply = Client::new(addr)
                .with_timeout(Duration::from_secs(5))
                .get("/healthz")
                .expect("healthz");
            assert_eq!(reply.status, 200);
        }
        fleet.shutdown_all();
        assert!(!fleet.running(0) && !fleet.running(1));
    }

    #[test]
    fn kill_and_restart_reuse_the_pinned_port() {
        let mut fleet = Supervisor::spawn_fleet(1, &base()).expect("spawn");
        let addr = fleet.addrs()[0];
        fleet.kill(0);
        assert!(!fleet.running(0));
        assert!(
            Client::new(addr)
                .with_timeout(Duration::from_millis(500))
                .get("/healthz")
                .is_err(),
            "killed backend must stop answering"
        );
        fleet.restart(0).expect("rebind pinned port");
        assert_eq!(fleet.addrs()[0], addr, "address pinned across restart");
        let reply = Client::new(addr)
            .with_timeout(Duration::from_secs(5))
            .get("/healthz")
            .expect("healthz after restart");
        assert_eq!(reply.status, 200);
        fleet.shutdown_all();
    }
}
