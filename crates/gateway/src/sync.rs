//! Store replication and anti-entropy repair across the backend fleet.
//!
//! The gateway treats each backend's embedded `cactus-store` as one replica
//! of a fleet-wide keyspace. Two mechanisms keep replicas converged:
//!
//! * **Write-path replication** ([`replicate_after_forward`]) — after a
//!   profile request is answered with a `200` by some backend, that backend
//!   durably holds the record. The gateway fetches the raw record bytes
//!   back over `GET /v1/store/record/<key>` and pushes them to every other
//!   member of the key's [replica set](crate::proxy::Router::replica_set)
//!   that is currently routable, so losing the owner does not lose the
//!   profile. A per-process seen-set de-duplicates repeat reads.
//! * **Anti-entropy** ([`anti_entropy`]) — when an ejected backend passes
//!   its half-open trial and re-enters the fleet, it may have missed writes.
//!   The health thread diffs its store manifest against every live peer's
//!   and streams over each record the re-admitted backend should replicate
//!   but lacks (missing key, or stale version).
//!
//! Both paths move records through the same two control-plane primitives
//! (`Router::fetch` / `Router::push_record`) and file `store.sync` spans
//! tagged with their `mode`, so `/v1/tracez` distinguishes a write-path
//! copy from a repair.
//!
//! [`fleet_manifest`] renders the combined view at `/v1/store/manifest`:
//! per-backend digests plus a per-key replica/holder matrix whose trailing
//! `missing <n>` line counts replica slots (on reachable backends) that
//! still lack their record — `missing 0` is the fleet's convergence check.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;

use cactus_obs::{SpanCtx, TraceId, Tracer};

use crate::proxy::Router;

/// One `k` line of a backend's store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub key: String,
    pub version: u32,
    /// CRC-32 of the record payload — doubles as a cheap value digest, so
    /// two replicas holding `(key, version, crc)`-equal entries hold
    /// byte-identical records.
    pub crc: u32,
}

/// Parse a `cactus-store manifest v1` document (see `cactus_store`'s
/// `Store::manifest`) into its entries. Returns `None` when the header is
/// wrong or any `k` line is malformed — a partial parse could make
/// anti-entropy conclude records exist that don't.
#[must_use]
pub fn parse_manifest(text: &str) -> Option<Vec<ManifestEntry>> {
    let mut lines = text.lines();
    if lines.next()? != "cactus-store manifest v1" {
        return None;
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with("digest ") || line.starts_with("entries ") {
            continue;
        }
        let mut fields = line.split('\t');
        if fields.next()? != "k" {
            return None;
        }
        let key = fields.next()?.to_owned();
        let version = fields.next()?.parse::<u32>().ok()?;
        let crc = u32::from_str_radix(fields.next()?, 16).ok()?;
        if fields.next().is_some() {
            return None;
        }
        entries.push(ManifestEntry { key, version, crc });
    }
    Some(entries)
}

/// The store key for a forwarded target path, when that path names a
/// profile triple (`/v1/profile/<device>/<scale>/<workload>`): the triple
/// joined with `/`, exactly the key `cactus-serve` appends under after a
/// simulation. Non-profile paths return `None` — only profile responses
/// imply a freshly stored record worth replicating.
#[must_use]
pub fn store_key_for(target: &str) -> Option<String> {
    let path = target.split('?').next().unwrap_or(target);
    // lint:allow(surface, path *prefix* of the served /v1/profile triple route, not a consumed path)
    let rest = path.strip_prefix("/v1/profile/")?;
    let parts: Vec<&str> = rest.split('/').collect();
    if parts.len() == 3 && parts.iter().all(|p| !p.is_empty()) {
        Some(parts.join("/"))
    } else {
        None
    }
}

/// After backend `winner` answered `target` with a `200`: copy the backing
/// store record to the other replica-set members (skipping unroutable
/// ones), once per key per process lifetime. Runs synchronously on the
/// request path — one pooled GET plus at most one POST per follower, and
/// only the first time a key is served.
pub fn replicate_after_forward(
    router: &Arc<Router>,
    target: &str,
    winner: usize,
    ctx: Option<SpanCtx<'_>>,
) {
    let Some(key) = store_key_for(target) else {
        return;
    };
    let ring_key = format!("profile/{key}");
    let followers: Vec<usize> = router
        .replica_set(&ring_key)
        .into_iter()
        .filter(|&i| i != winner && router.health.available(i))
        .collect();
    if followers.is_empty() || router.mark_replicated(&ring_key) {
        return;
    }
    let trace = ctx.map(|c| c.trace());
    let mut span = ctx.map(|c| c.child("store.sync"));
    if let Some(span) = span.as_mut() {
        span.tag("mode", "replicate");
        span.tag("key", key.clone());
    }
    let Some(body) = router.fetch(winner, &format!("/v1/store/record/{key}"), trace) else {
        // The winner answered the profile but not the record read (e.g. it
        // died in between). Un-mark so a later read retries the copy.
        router.unmark_replicated(&ring_key);
        if let Some(span) = span.as_mut() {
            span.tag("error", "source read failed");
        }
        return;
    };
    let mut pushed = 0u64;
    for i in followers {
        if router.push_record(i, &key, &body, trace) {
            pushed += 1;
            router.metrics.store_replications.inc();
        } else {
            router.metrics.store_replication_failures.inc();
        }
    }
    if let Some(span) = span.as_mut() {
        span.tag("pushed", pushed.to_string());
    }
}

/// Repair one re-admitted backend: diff its manifest against every live
/// peer's and stream over each record it replicates but lacks. Returns the
/// number of records pushed. Called from the health thread with a freshly
/// minted trace so the repair is visible in `/v1/tracez`.
pub fn anti_entropy(router: &Arc<Router>, tracer: &Tracer, readmitted: usize) -> u64 {
    let n = router.metrics.backends.len();
    let mut span = tracer.ctx(TraceId::mint()).child("store.sync");
    span.tag("mode", "anti-entropy");
    span.tag("backend", readmitted.to_string());
    let trace = Some(span.ctx().trace());
    router.metrics.store_syncs.inc();

    // What the re-admitted backend holds right now. An unreadable manifest
    // aborts the pass (it will re-run on the next re-admission) — guessing
    // "empty" would be correct but wasteful, and the backend just answered
    // a trial request, so unreadable means it flapped again.
    let Some(own) = router
        .fetch(readmitted, "/v1/store/manifest", trace)
        .and_then(|m| parse_manifest(&m))
    else {
        span.tag("error", "manifest unreadable");
        return 0;
    };
    let held: BTreeMap<String, (u32, u32)> = own
        .into_iter()
        .map(|e| (e.key, (e.version, e.crc)))
        .collect();

    // Union the live peers' manifests: key -> (version, crc, holder),
    // keeping the highest version seen (last-wins, matching the store).
    let mut fleet: BTreeMap<String, (u32, u32, usize)> = BTreeMap::new();
    for peer in 0..n {
        if peer == readmitted || !router.health.available(peer) {
            continue;
        }
        let Some(entries) = router
            .fetch(peer, "/v1/store/manifest", trace)
            .and_then(|m| parse_manifest(&m))
        else {
            continue;
        };
        for e in entries {
            match fleet.get(&e.key) {
                Some(&(v, _, _)) if v >= e.version => {}
                _ => {
                    fleet.insert(e.key, (e.version, e.crc, peer));
                }
            }
        }
    }

    let mut pushed = 0u64;
    for (key, &(version, crc, holder)) in &fleet {
        // Version 0 marks a profile superseded by a workload
        // re-submission; the next request re-simulates it, so there is
        // nothing worth replicating (and the receiver would refuse the
        // placeholder body anyway).
        if version == 0 {
            continue;
        }
        // Workload definitions (`wir/<name>` keys) are broadcast to every
        // backend at submission time, so they replicate unconditionally —
        // this is the repair path for a backend that missed the broadcast.
        // Profiles replicate only to the key's replica set.
        if !key.starts_with("wir/") {
            let ring_key = format!("profile/{key}");
            if !router.replica_set(&ring_key).contains(&readmitted) {
                continue;
            }
        }
        match held.get(key) {
            Some(&(v, c)) if v > version || (v == version && c == crc) => continue,
            _ => {}
        }
        let Some(body) = router.fetch(holder, &format!("/v1/store/record/{key}"), trace) else {
            continue;
        };
        if router.push_record(readmitted, key, &body, trace) {
            pushed += 1;
            router.metrics.store_sync_records.inc();
        }
    }
    span.tag("pushed", pushed.to_string());
    pushed
}

/// Render the fleet-wide store manifest served at the gateway's
/// `/v1/store/manifest`: one `backend` line per ring slot (with its digest
/// when reachable), one `k` line per known key mapping it to its replica
/// set and current holders, and a final `missing <n>` count of replica
/// slots on *reachable* backends that lack their record. `missing 0` with
/// every backend reachable means the fleet has converged.
#[must_use]
pub fn fleet_manifest(router: &Arc<Router>, backend_addrs: &[SocketAddr]) -> String {
    let n = backend_addrs.len();
    let mut out = String::from("cactus-gateway store manifest v1\n");
    // Reachability is "gave us a parseable manifest just now", not the
    // health state: a half-open backend counts, a hung-but-Healthy one
    // doesn't. That keeps `missing` honest about what is actually on disk.
    let mut manifests: Vec<Option<Vec<ManifestEntry>>> = Vec::with_capacity(n);
    for i in 0..n {
        let manifest = router
            .fetch(i, "/v1/store/manifest", None)
            .and_then(|m| parse_manifest(&m));
        manifests.push(manifest);
    }
    for (i, addr) in backend_addrs.iter().enumerate() {
        let state = if router.health.available(i) {
            "healthy"
        } else {
            "down"
        };
        match &manifests[i] {
            Some(entries) => {
                let mut body = String::new();
                for e in entries {
                    let _ = writeln!(body, "k\t{}\t{}\t{:08x}", e.key, e.version, e.crc);
                }
                let digest = cactus_store::fnv1a64(body.as_bytes());
                let _ = writeln!(
                    out,
                    "backend {i} {addr} {state} digest={digest:016x} entries={}",
                    entries.len()
                );
            }
            None => {
                let _ = writeln!(out, "backend {i} {addr} {state} digest=- entries=-");
            }
        }
    }

    // Authoritative view per key: highest version wins, ties keep the
    // first holder's crc (converged replicas agree anyway).
    let mut keys: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut holders: BTreeMap<(String, u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, manifest) in manifests.iter().enumerate() {
        let Some(entries) = manifest else { continue };
        for e in entries {
            match keys.get(&e.key) {
                Some(&(v, _)) if v >= e.version => {}
                _ => {
                    keys.insert(e.key.clone(), (e.version, e.crc));
                }
            }
            holders
                .entry((e.key.clone(), e.version, e.crc))
                .or_default()
                .push(i);
        }
    }
    let mut missing = 0usize;
    for (key, &(version, crc)) in &keys {
        let replicas = router.replica_set(&format!("profile/{key}"));
        let have = holders
            .get(&(key.clone(), version, crc))
            .cloned()
            .unwrap_or_default();
        missing += replicas
            .iter()
            .filter(|&&r| manifests[r].is_some() && !have.contains(&r))
            .count();
        let _ = writeln!(
            out,
            "k {key} v{version} crc={crc:08x} replicas={} have={}",
            join_indices(&replicas),
            join_indices(&have)
        );
    }
    let _ = writeln!(out, "missing {missing}");
    out
}

fn join_indices(indices: &[usize]) -> String {
    if indices.is_empty() {
        return "-".to_owned();
    }
    indices
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_round_tripped_manifest() {
        let text = "cactus-store manifest v1\ndigest 00000000deadbeef\nentries 2\nk\ta/b/c\t2\t0000abcd\nk\tx/y/z\t1\tffffffff\n";
        let entries = parse_manifest(text).expect("parse");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, "a/b/c");
        assert_eq!(entries[0].version, 2);
        assert_eq!(entries[0].crc, 0x0000_abcd);
        assert_eq!(entries[1].crc, 0xffff_ffff);
    }

    #[test]
    fn rejects_malformed_manifests() {
        assert!(parse_manifest("not a manifest\n").is_none());
        assert!(
            parse_manifest("cactus-store manifest v1\nk\tonly-key\n").is_none(),
            "short k line"
        );
        assert!(
            parse_manifest("cactus-store manifest v1\nk\ta\tnot-a-number\t00000000\n").is_none(),
            "bad version"
        );
        assert!(
            parse_manifest("cactus-store manifest v1\nk\ta\t1\tzzzz\n").is_none(),
            "bad crc"
        );
        let empty =
            parse_manifest("cactus-store manifest v1\ndigest cbf29ce484222325\nentries 0\n");
        assert_eq!(empty.expect("empty manifest parses"), Vec::new());
    }

    #[test]
    fn store_key_only_matches_profile_triples() {
        assert_eq!(
            store_key_for("/v1/profile/rtx-3080/tiny/GMS").as_deref(),
            Some("rtx-3080/tiny/GMS")
        );
        assert_eq!(
            store_key_for("/v1/profile/rtx-3080/tiny/GMS?verbose=1").as_deref(),
            Some("rtx-3080/tiny/GMS"),
            "query strings are stripped"
        );
        assert_eq!(store_key_for("/v1/kernels/rtx-3080/tiny/GMS"), None);
        // lint:allow(surface, deliberately malformed path exercising the rejection branch)
        assert_eq!(store_key_for("/v1/profile/rtx-3080/tiny"), None);
        assert_eq!(store_key_for("/v1/profile/a//c"), None);
        assert_eq!(store_key_for("/v1/workloads"), None);
    }
}
