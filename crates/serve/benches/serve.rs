//! Serving-path benchmarks over a live loopback server: the three levels of
//! the response hierarchy, measured end to end through the typed client.
//!
//! * `serve/cold-store` — response cache cleared before every request, so
//!   each one falls through to the profile store (level 2: deserialize and
//!   render, no simulation).
//! * `serve/warm-cache` — the same request repeated, answered from the LRU
//!   (level 1: render-free, simulation-free).
//! * `serve/single-flight-contended` — eight concurrent clients racing for
//!   one uncached tiny-scale triple; single-flight coalesces the burst into
//!   exactly one simulation (level 3), so per-burst cost approaches one
//!   simulation rather than eight.
//!
//! After the timed groups a one-shot summary prints the observed request
//! counters so the hierarchy's hit ratios are visible in bench logs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cactus_bench::store::save_set_in;
use cactus_bench::ProfiledWorkload;
use cactus_core::SuiteScale;
use cactus_serve::{Client, ServeConfig, Server};

/// Seed a store directory with a profile set containing GMS, simulated at
/// tiny scale (the store path embeds the set name, not the scale, so this
/// is a cheap way to exercise the store-load path).
fn seeded_store_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cactus-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let set: Vec<ProfiledWorkload> = vec![ProfiledWorkload {
        name: "GMS".to_owned(),
        suite: "Cactus".to_owned(),
        profile: cactus_core::run("GMS", SuiteScale::Tiny),
        memo: None,
    }];
    save_set_in(&dir, "cactus", &set).expect("seed store");
    dir
}

fn start_server(store_dir: std::path::PathBuf, workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        queue: 64,
        store_dir: Some(store_dir),
        ..ServeConfig::default()
    })
    .expect("bind loopback server")
}

fn bench_serve_levels(c: &mut Criterion) {
    // Benchmarks measure the passthrough lock path: release builds without
    // the lock-check feature must compile rank checking out entirely.
    #[cfg(all(not(debug_assertions), not(feature = "lock-check")))]
    assert!(
        !cactus_obs::lock::CHECK_ENABLED,
        "release benches must run the zero-overhead RankedMutex passthrough"
    );

    let dir = seeded_store_dir();
    let server = start_server(dir.clone(), 8);
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(120));

    let mut g = c.benchmark_group("serve");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    // Level 2: the store answers, the LRU never does.
    g.bench_function("cold-store", |b| {
        b.iter(|| {
            server.state().cache.clear();
            let reply = client
                .get("/v1/profile/rtx-3080/profile/GMS")
                .expect("store-backed request");
            assert_eq!(reply.status, 200);
            reply.body.len()
        });
    });

    // Level 1: identical request, LRU hit.
    g.bench_function("warm-cache", |b| {
        let _ = client.get("/v1/profile/rtx-3080/profile/GMS");
        b.iter(|| {
            let reply = client
                .get("/v1/profile/rtx-3080/profile/GMS")
                .expect("cached request");
            assert_eq!(reply.status, 200);
            reply.body.len()
        });
    });

    // Level 3 under contention: an 8-client burst for one uncached triple.
    g.bench_function("single-flight-contended", |b| {
        b.iter(|| {
            server.reset_caches();
            let addr = server.addr();
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    std::thread::spawn(move || {
                        let client = Client::new(addr).with_timeout(Duration::from_secs(120));
                        let reply = client
                            .get("/v1/profile/rtx-3080/tiny/GMS")
                            .expect("coalesced request");
                        assert_eq!(reply.status, 200);
                        reply.body.len()
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().expect("client thread"))
                .sum::<usize>()
        });
    });
    g.finish();

    // Counter summary: how often each level actually answered.
    let metrics = client.metrics().expect("metrics");
    for name in [
        "cactus_serve_requests_total",
        "cactus_serve_cache_hits_total",
        "cactus_serve_cache_misses_total",
        "cactus_serve_store_hits_total",
        "cactus_serve_simulations_total",
        "cactus_serve_engine_memo_hit_rate",
    ] {
        println!(
            "serve/summary: {name} = {}",
            metrics.get(name).unwrap_or(0.0)
        );
    }

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(serve, bench_serve_levels);
criterion_main!(serve);
