//! A deliberately small HTTP/1.1 implementation over std TCP streams.
//!
//! The daemon needs exactly one request shape — `GET <path>` with a handful
//! of headers it may consult — and writes one response per request, so this
//! module implements that slice directly instead of pulling in a server
//! framework (the workspace builds with no registry access). Request heads
//! are capped at [`MAX_HEAD_BYTES`]; anything larger, non-UTF-8, or not
//! HTTP-shaped surfaces as an [`HttpError`] which the server maps to a
//! `400`.
//!
//! Parsing is strict where laxness would be exploitable: the request line
//! must be exactly `METHOD SP TARGET SP HTTP/1.x` with single spaces and no
//! tabs (whitespace smuggling in the target is rejected), and header lines
//! split on the *first* `:` only, so values containing `:` (URLs, IPv6
//! literals, timestamps) survive intact. [`read_request`] takes any
//! [`BufRead`], which lets a server read several sequential requests from
//! one keep-alive connection without losing buffered bytes between them.

use std::io::{BufRead, Write};

use cactus_obs::{ApiError, TraceId, TRACE_HEADER};

/// Upper bound on the request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (`Content-Length`), in bytes. Only the
/// store-record ingestion endpoint accepts bodies; profile documents are
/// well under this.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, without the query string.
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header name/value pairs in wire order, names lowercased, values
    /// trimmed of surrounding whitespace.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless the client sent a `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to be closed after this
    /// response (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The trace id carried by the `x-cactus-trace` header, if present and
    /// well-formed. A malformed header is treated as absent (the server
    /// mints a fresh id rather than propagating garbage).
    #[must_use]
    pub fn trace_id(&self) -> Option<TraceId> {
        self.header(TRACE_HEADER).and_then(TraceId::parse)
    }
}

/// Why a request head could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// The peer closed before sending a full head.
    ClosedEarly,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The request line or a header line was not well-formed.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::ClosedEarly => write!(f, "connection closed before a full request head"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::Malformed(line) => write!(f, "malformed request line {line:?}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one `\n`-terminated line into `line`, charging its length against
/// `budget`. EOF before the terminator is [`HttpError::ClosedEarly`].
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    budget: &mut usize,
) -> Result<(), HttpError> {
    line.clear();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(HttpError::ClosedEarly);
        }
        let (taken, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (buf.len(), false),
        };
        if taken > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= taken;
        line.extend_from_slice(&buf[..taken]);
        reader.consume(taken);
        if done {
            return Ok(());
        }
    }
}

/// Decode a head line as UTF-8 and strip the trailing `\r\n`/`\n`.
fn decode_line(raw: &[u8]) -> Result<String, HttpError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in request head".to_owned()))?;
    Ok(text.trim_end_matches(['\r', '\n']).to_owned())
}

/// Read and parse one request from `reader`. The reader is positioned
/// exactly past the head's terminating blank line — plus any declared
/// body — on success, so a keep-alive server can call this again on the
/// same reader for the next request. Bodies are read eagerly when a
/// `Content-Length` header is present (capped at [`MAX_BODY_BYTES`]) and
/// must be UTF-8; the API's only body-bearing requests carry profile text.
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let mut raw = Vec::new();

    read_line_bounded(reader, &mut raw, &mut budget)?;
    let request_line = decode_line(&raw)?;
    let (method, target) = parse_request_line(&request_line)?;

    let mut headers = Vec::new();
    loop {
        read_line_bounded(reader, &mut raw, &mut budget)?;
        if raw == b"\r\n" || raw == b"\n" {
            break;
        }
        let line = decode_line(&raw)?;
        headers.push(parse_header_line(&line)?);
    }

    let body = read_body(reader, &headers)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    })
}

/// Read the declared body, if any. Transfer encodings are not supported —
/// a `Transfer-Encoding` header is malformed here (the framing could not
/// be trusted otherwise).
fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &[(String, String)],
) -> Result<String, HttpError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported".to_owned(),
        ));
    }
    let Some((_, value)) = headers.iter().find(|(n, _)| n == "content-length") else {
        return Ok(String::new());
    };
    let length: usize = value
        .parse()
        .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
    if length > MAX_BODY_BYTES {
        return Err(HttpError::Malformed(format!(
            "content-length {length} exceeds {MAX_BODY_BYTES}"
        )));
    }
    let mut body = vec![0u8; length];
    std::io::Read::read_exact(reader, &mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::ClosedEarly
        } else {
            HttpError::Io(e)
        }
    })?;
    String::from_utf8(body).map_err(|_| HttpError::Malformed("non-UTF-8 body".to_owned()))
}

/// Strict request-line parse: exactly `METHOD SP TARGET SP HTTP/1.x`, single
/// spaces, no tabs or other embedded whitespace (so a target can never smuggle
/// a second token past a lax downstream parser).
fn parse_request_line(line: &str) -> Result<(&str, &str), HttpError> {
    let malformed = || HttpError::Malformed(line.to_owned());
    if line.contains(|c: char| c.is_ascii_whitespace() && c != ' ') {
        return Err(malformed());
    }
    let mut parts = line.split(' ');
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None)
            if !method.is_empty() && !target.is_empty() && version.starts_with("HTTP/1.") =>
        {
            Ok((method, target))
        }
        _ => Err(malformed()),
    }
}

/// Split one header line on the first `:` — values keep any further colons
/// (URLs, IPv6 literals). Names must be non-empty and whitespace-free;
/// obsolete line folding (a line starting with whitespace) is rejected.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let malformed = || HttpError::Malformed(line.to_owned());
    let (name, value) = line.split_once(':').ok_or_else(malformed)?;
    if name.is_empty() || name.contains(|c: char| c.is_ascii_whitespace()) {
        return Err(malformed());
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_owned()))
}

/// One response; the `Connection` header is chosen at write time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header (seconds), used by 503 backpressure.
    pub retry_after: Option<u32>,
    /// Trace id echoed back in the `x-cactus-trace` header, if assigned.
    pub trace: Option<TraceId>,
    /// Additional response headers in wire order (deprecation notices,
    /// `Link` relations). Names are static — handlers attach a fixed
    /// vocabulary, never caller-controlled names.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A `200 OK` with the given body and content type.
    #[must_use]
    pub fn ok(body: impl Into<String>, content_type: &'static str) -> Self {
        Self {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
            trace: None,
            extra_headers: Vec::new(),
        }
    }

    /// A structured-error response: the shared `/v1` JSON envelope.
    #[must_use]
    pub fn api_error(error: &ApiError) -> Self {
        Self {
            status: error.code,
            content_type: "application/json",
            body: error.to_json(),
            retry_after: None,
            trace: None,
            extra_headers: Vec::new(),
        }
    }

    /// An error response built from a status + message via the envelope.
    #[must_use]
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self::api_error(&ApiError::new(status, message))
    }

    /// The `503 Service Unavailable` backpressure response.
    #[must_use]
    pub fn busy(retry_after_s: u32) -> Self {
        let mut r = Self::error(503, "server saturated, retry later");
        r.retry_after = Some(retry_after_s);
        r
    }

    /// Attach the trace id echoed back to the client.
    #[must_use]
    pub fn traced(mut self, trace: TraceId) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach one additional response header (appended in call order).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The standard reason phrase for [`Response::status`].
    #[must_use]
    pub fn reason(&self) -> &'static str {
        reason_phrase(self.status)
    }

    /// Serialize head + body to `out` with `connection: close` (one request
    /// per connection).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        self.write_conn(out, false)
    }

    /// Serialize head + body to `out`, advertising `keep-alive` or `close`
    /// (one write syscall via buffering).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_conn<W: Write>(&self, out: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        if let Some(trace) = self.trace {
            head.push_str(&format!("{TRACE_HEADER}: {trace}\r\n"));
        }
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        // Head + body in one write_all: a separate small body write after
        // the head can stall ~40 ms in Nagle + delayed-ACK on a raw socket.
        head.push_str(&self.body);
        out.write_all(head.as_bytes())?;
        out.flush()
    }
}

/// The standard reason phrase for a status code (shared with the gateway,
/// which forwards backend statuses it never constructs itself).
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &raw[..])
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw =
            b"GET /v1/profile/a/b/c?x=1 HTTP/1.1\r\nHost: h\r\nX-Ref: http://e:8080/p\r\n\r\n";
        let r = parse(raw).expect("parse");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/profile/a/b/c");
        assert_eq!(r.query.as_deref(), Some("x=1"));
        assert_eq!(r.header("host"), Some("h"));
        // Values containing ':' survive the first-colon split.
        assert_eq!(r.header("X-Ref"), Some("http://e:8080/p"));
        assert!(!r.wants_close());
    }

    #[test]
    fn connection_close_is_detected() {
        let raw = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        assert!(parse(raw).expect("parse").wants_close());
    }

    #[test]
    fn method_is_uppercased() {
        let raw = b"get / HTTP/1.0\r\n\r\n";
        assert_eq!(parse(raw).expect("parse").method, "GET");
    }

    #[test]
    fn rejects_garbage_and_early_close() {
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(parse(b""), Err(HttpError::ClosedEarly)));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: h"),
            Err(HttpError::ClosedEarly)
        ));
    }

    #[test]
    fn rejects_whitespace_abuse_in_request_line() {
        for raw in [
            &b"GET  / HTTP/1.1\r\n\r\n"[..],      // double space
            &b"GET /a /b HTTP/1.1\r\n\r\n"[..],   // embedded space in target
            &b"GET\t/ HTTP/1.1\r\n\r\n"[..],      // tab separator
            &b"GET /\tx HTTP/1.1\r\n\r\n"[..],    // tab inside target
            &b" GET / HTTP/1.1\r\n\r\n"[..],      // leading space
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..], // trailing token
            &b"GET / SMTP/1.1\r\n\r\n"[..],       // wrong protocol
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_malformed_headers() {
        for raw in [
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_oversized_head() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD_BYTES]);
        assert!(matches!(parse(&raw), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn sequential_requests_parse_from_one_reader() {
        let raw = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = &raw[..];
        let first = read_request(&mut reader).expect("first");
        assert_eq!(first.path, "/a");
        assert!(!first.wants_close());
        let second = read_request(&mut reader).expect("second");
        assert_eq!(second.path, "/b");
        assert!(second.wants_close());
    }

    #[test]
    fn body_is_read_to_content_length() {
        let raw = b"POST /v1/store/record/a/b/c HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n";
        let mut reader = &raw[..];
        let first = read_request(&mut reader).expect("post");
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, "hello");
        // The reader sits exactly past the body: keep-alive still works.
        let second = read_request(&mut reader).expect("next");
        assert_eq!(second.path, "/next");
        assert_eq!(second.body, "");
    }

    #[test]
    fn rejects_bad_bodies() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let oversized = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(oversized.as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Truncated body: connection died mid-upload.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::ClosedEarly)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::ok("hello\n", "text/plain")
            .write_to(&mut buf)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 6\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello\n"));

        let mut buf = Vec::new();
        Response::ok("hi\n", "text/plain")
            .write_conn(&mut buf, true)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("connection: keep-alive\r\n"));

        let mut buf = Vec::new();
        Response::busy(7).write_to(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 7\r\n"));
    }

    #[test]
    fn extra_headers_are_written_in_order() {
        let mut buf = Vec::new();
        Response::ok("ok\n", "text/plain")
            .with_header("deprecation", "true")
            .with_header("link", "</v1/healthz>; rel=\"successor-version\"")
            .write_to(&mut buf)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("deprecation: true\r\n"));
        assert!(text.contains("link: </v1/healthz>; rel=\"successor-version\"\r\n"));
        let dep = text.find("deprecation:").expect("deprecation header");
        let link = text.find("link:").expect("link header");
        assert!(dep < link, "headers keep call order");
    }

    #[test]
    fn errors_are_json_envelopes() {
        let r = Response::error(404, "unknown route");
        assert_eq!(r.content_type, "application/json");
        let envelope = ApiError::from_json(&r.body).expect("envelope body");
        assert_eq!(envelope.code, 404);
        assert_eq!(envelope.message, "unknown route");
        assert!(!envelope.retryable);
        assert!(
            ApiError::from_json(&Response::busy(1).body)
                .expect("busy envelope")
                .retryable
        );
    }

    #[test]
    fn trace_header_roundtrips() {
        let trace = TraceId::mint();
        let mut buf = Vec::new();
        Response::ok("x\n", "text/plain")
            .traced(trace)
            .write_to(&mut buf)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains(&format!("x-cactus-trace: {trace}\r\n")));

        let raw = format!("GET / HTTP/1.1\r\nX-Cactus-Trace: {trace}\r\n\r\n");
        assert_eq!(
            parse(raw.as_bytes()).expect("parse").trace_id(),
            Some(trace)
        );
        let bad = b"GET / HTTP/1.1\r\nx-cactus-trace: nope\r\n\r\n";
        assert_eq!(parse(bad).expect("parse").trace_id(), None);
    }
}
