//! A deliberately small HTTP/1.1 implementation over std TCP streams.
//!
//! The daemon needs exactly one request shape — `GET <path>` with headers it
//! can ignore — and writes one `Connection: close` response per connection,
//! so this module implements that slice directly instead of pulling in a
//! server framework (the workspace builds with no registry access). Request
//! heads are capped at [`MAX_HEAD_BYTES`]; anything larger, non-UTF-8, or
//! not HTTP-shaped surfaces as an [`HttpError`] which the server maps to a
//! `400`.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, without the query string.
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
}

/// Why a request head could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// The peer closed before sending a full head.
    ClosedEarly,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::ClosedEarly => write!(f, "connection closed before a full request head"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::Malformed(line) => write!(f, "malformed request line {line:?}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read and parse one request head from `stream`. Headers are consumed and
/// discarded (the API is GET-only; no request ever carries a meaningful
/// body).
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64 + 1));
    let mut line = String::new();
    let mut consumed = 0usize;

    let mut read_line = |line: &mut String| -> Result<(), HttpError> {
        line.clear();
        let n = reader.read_line(line)?;
        if n == 0 {
            return Err(HttpError::ClosedEarly);
        }
        consumed += n;
        if consumed > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        Ok(())
    };

    read_line(&mut line)?;
    let request_line = line.trim_end_matches(['\r', '\n']).to_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => return Err(HttpError::Malformed(request_line.clone())),
    };
    let _ = version;

    // Drain headers up to the blank line.
    loop {
        read_line(&mut line)?;
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
    })
}

/// One response, always written `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header (seconds), used by 503 backpressure.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `200 OK` with the given body and content type.
    #[must_use]
    pub fn ok(body: impl Into<String>, content_type: &'static str) -> Self {
        Self {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A plain-text error response.
    #[must_use]
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        let mut body = message.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// The `503 Service Unavailable` backpressure response.
    #[must_use]
    pub fn busy(retry_after_s: u32) -> Self {
        let mut r = Self::error(503, "server saturated, retry later");
        r.retry_after = Some(retry_after_s);
        r
    }

    /// The standard reason phrase for [`Response::status`].
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize head + body to `out` (one write syscall via buffering).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /v1/profile/a/b/c?x=1 HTTP/1.1\r\nHost: h\r\n\r\n";
        let r = read_request(&raw[..]).expect("parse");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/profile/a/b/c");
        assert_eq!(r.query.as_deref(), Some("x=1"));
    }

    #[test]
    fn method_is_uppercased() {
        let raw = b"get / HTTP/1.0\r\n\r\n";
        assert_eq!(read_request(&raw[..]).expect("parse").method, "GET");
    }

    #[test]
    fn rejects_garbage_and_early_close() {
        assert!(matches!(
            read_request(&b"NOT-HTTP\r\n\r\n"[..]),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&b""[..]),
            Err(HttpError::ClosedEarly)
        ));
        assert!(matches!(
            read_request(&b"GET / HTTP/1.1\r\nHost: h"[..]),
            Err(HttpError::ClosedEarly)
        ));
    }

    #[test]
    fn rejects_oversized_head() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD_BYTES]);
        assert!(matches!(
            read_request(&raw[..]),
            Err(HttpError::HeadTooLarge)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::ok("hello\n", "text/plain")
            .write_to(&mut buf)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 6\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello\n"));

        let mut buf = Vec::new();
        Response::busy(7).write_to(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 7\r\n"));
    }
}
