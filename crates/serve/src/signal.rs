//! Minimal `SIGINT`/`SIGTERM` handling without a libc crate.
//!
//! `std` already links the platform C library on Unix, so a one-line
//! `extern "C"` declaration of `signal(2)` is enough to install an
//! async-signal-safe handler that flips an [`AtomicBool`]. The daemon's
//! main loop polls that flag and runs the normal graceful-shutdown path —
//! the handler itself does nothing else, which keeps it trivially
//! async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when `SIGINT` or `SIGTERM` arrives.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::{Ordering, SHUTDOWN_REQUESTED};

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C library `std` links anyway.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` whose address is a
        // valid sighandler_t, and it performs only an atomic store.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Install handlers for `SIGINT` and `SIGTERM` (no-op off Unix).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

/// Whether a shutdown signal has been received.
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Request shutdown from code (tests; equivalent to receiving a signal).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        install_handlers();
        assert!(!shutdown_requested() || cfg!(not(unix)));
        request_shutdown();
        assert!(shutdown_requested());
    }
}
