//! The in-memory LRU response cache — the first level of the serving
//! hierarchy (LRU → profile store → single-flight simulation).
//!
//! Entries are whole rendered responses keyed by canonical request path, so
//! a hit costs one hash lookup and an `Arc` clone; the body bytes are shared
//! with every concurrent reader. Only `200` responses are cached (callers
//! enforce this), eviction is least-recently-*used* (get bumps recency), and
//! hit/miss counters feed `/metricsz`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cactus_obs::lock::{rank, RankedMutex};

use crate::http::Response;

/// A cached, immutable rendering of a successful response.
#[derive(Debug, PartialEq, Eq)]
pub struct CachedResponse {
    /// `Content-Type` of the cached body.
    pub content_type: &'static str,
    /// The rendered body.
    pub body: String,
}

impl CachedResponse {
    /// Rehydrate the cached entry into a `200` response.
    #[must_use]
    pub fn to_response(&self) -> Response {
        Response::ok(self.body.clone(), self.content_type)
    }
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    value: Arc<CachedResponse>,
}

#[derive(Debug, Default)]
struct Inner {
    clock: u64,
    map: HashMap<String, Entry>,
}

/// A thread-safe LRU cache of rendered responses.
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    inner: RankedMutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// An empty cache holding at most `capacity` responses (0 disables
    /// caching: every get misses, every put is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: RankedMutex::new(rank::RESPONSE_CACHE, "serve.cache", Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, bumping its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<CachedResponse>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the least-recently-used entry
    /// when full. Returns the shared handle to the inserted value.
    pub fn put(&self, key: &str, value: CachedResponse) -> Arc<CachedResponse> {
        let value = Arc::new(value);
        if self.capacity == 0 {
            return value;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(key) && inner.map.len() >= self.capacity {
            // O(len) eviction scan: capacities are small (hundreds) and puts
            // only happen on the slow (store/simulate) path.
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(
            key.to_owned(),
            Entry {
                stamp: clock,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// Cached entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the next level.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Drop one cached response (used to invalidate derived listings when
    /// a submission changes what they would contain).
    pub fn remove(&self, key: &str) {
        self.inner.lock().map.remove(key);
    }

    /// Drop every cached response whose key satisfies `pred` (used to
    /// invalidate all rendered views of a workload when a re-submission
    /// replaces its definition).
    pub fn remove_where(&self, pred: impl Fn(&str) -> bool) {
        self.inner.lock().map.retain(|k, _| !pred(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(s: &str) -> CachedResponse {
        CachedResponse {
            content_type: "text/plain",
            body: s.to_owned(),
        }
    }

    #[test]
    fn get_put_and_counters() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("/a").is_none());
        cache.put("/a", resp("A"));
        let hit = cache.get("/a").expect("hit");
        assert_eq!(hit.body, "A");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.put("/a", resp("A"));
        cache.put("/b", resp("B"));
        let _ = cache.get("/a"); // /b is now the LRU entry
        cache.put("/c", resp("C"));
        assert!(cache.get("/a").is_some());
        assert!(cache.get("/b").is_none(), "/b should have been evicted");
        assert!(cache.get("/c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict_others() {
        let cache = ResponseCache::new(2);
        cache.put("/a", resp("A1"));
        cache.put("/b", resp("B"));
        cache.put("/a", resp("A2"));
        assert_eq!(cache.get("/a").expect("hit").body, "A2");
        assert!(cache.get("/b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.put("/a", resp("A"));
        assert!(cache.get("/a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_where_drops_only_matching_keys() {
        let cache = ResponseCache::new(8);
        cache.put("profile/rtx-3080/tiny/gnn", resp("old"));
        cache.put("dominant/rtx-3080/tiny/gnn?t=0.700", resp("old"));
        cache.put("profile/rtx-3080/tiny/gms", resp("keep"));
        cache.remove_where(|k| {
            k.split('?')
                .next()
                .is_some_and(|path| path.ends_with("/gnn"))
        });
        assert!(cache.get("profile/rtx-3080/tiny/gnn").is_none());
        assert!(cache.get("dominant/rtx-3080/tiny/gnn?t=0.700").is_none());
        assert!(cache.get("profile/rtx-3080/tiny/gms").is_some());
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = ResponseCache::new(2);
        cache.put("/a", resp("A"));
        let _ = cache.get("/a");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1);
    }
}
