//! `cactus-serve` — a concurrent profile-serving daemon over the Cactus
//! simulation stack.
//!
//! The daemon answers HTTP/1.1 `GET`s for per-kernel metrics, suite
//! profiles, roofline coordinates, and dominant-kernel reports for any
//! `(device preset, scale, workload)` triple, resolving each request
//! through a three-level hierarchy:
//!
//! 1. **Response cache** ([`cache`]) — an in-memory LRU of rendered bodies;
//!    repeat requests never touch the simulator.
//! 2. **Profile store** ([`service`] → `cactus_bench::store`) — previously
//!    persisted profile sets are deserialized instead of re-simulated.
//! 3. **Live simulation** ([`service`] → `cactus_gpu::pool::GpuPool`) — a
//!    pool of memoizing engines runs the workload, with **single-flight
//!    coalescing** ([`singleflight`]): N concurrent requests for the same
//!    uncached triple cost exactly one simulation.
//!
//! The server ([`server`]) is std-only: a nonblocking accept loop feeds a
//! bounded queue drained by a worker pool; a full queue answers
//! `503 + Retry-After` immediately (explicit backpressure instead of
//! unbounded queueing), and shutdown drains in-flight requests before
//! threads exit. Endpoints live on the versioned `/v1` surface (legacy
//! unversioned spellings stay as aliases): `/v1/healthz` for liveness,
//! `/v1/metricsz` ([`metrics`], rendered by the shared
//! `cactus_obs::MetricsRegistry`) for request counts, latency quantiles,
//! and every cache level's hit rates, and `/v1/tracez` for the span ring —
//! each request carries one trace id (minted here or propagated from the
//! gateway via `x-cactus-trace`) whose span tree covers cache, store, and
//! simulation stages. Errors are the shared JSON envelope
//! (`cactus_obs::ApiError`).
//!
//! Two binaries ship with the crate: `cactus-serve` (the daemon, with
//! signal-driven graceful shutdown via [`signal`]) and `loadgen` (a
//! closed-loop load generator reporting throughput and latency through the
//! typed [`client`]).

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod net;
pub mod routes;
pub mod server;
pub mod service;
pub mod signal;
pub mod similar;
pub mod singleflight;

pub use client::{
    parse_health_devices, Client, ClientBuilder, CompareRow, Connection, DeviceEntry, DeviceId,
    ProfileQuery, SimilarHit, SimilarQuery,
};
pub use server::{ServeConfig, Server};
