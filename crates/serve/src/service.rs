//! The profile service: resolves (device preset, scale, workload) triples
//! to [`Profile`]s through the two lower levels of the serving hierarchy —
//! the durable `cactus-store` segment log, then live simulation coalesced
//! by single-flight and executed on pooled memoizing engines. Simulated
//! profiles are appended back to the store (fsync'd before the index
//! admits them), so a restart serves yesterday's corpus instead of
//! starting cold.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use cactus_bench::store;
use cactus_core::{workloads, SuiteScale, Workload};
use cactus_gpu::catalog;
use cactus_gpu::engine::MemoStats;
use cactus_gpu::pool::{GpuPool, PoolInstruments};
use cactus_gpu::{Device, MODEL_VERSION};
use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::{Counter, MetricsRegistry, SpanCtx};
use cactus_profiler::store as profile_store;
use cactus_profiler::Profile;
use cactus_store::Store;
use cactus_suites::Benchmark;
use cactus_wir::Finding;

use crate::singleflight::SingleFlight;

/// The device ids the catalog exposes, as URL slugs (catalog order).
#[must_use]
pub fn device_slugs() -> Vec<&'static str> {
    catalog::device_ids()
}

/// The scale presets the service exposes, as URL slugs.
pub const SCALE_SLUGS: [&str; 3] = ["tiny", "small", "profile"];

/// Look up a device preset by its URL slug (case-insensitive), against
/// the full device catalog.
#[must_use]
pub fn device_by_slug(slug: &str) -> Option<Device> {
    catalog::by_id(slug).map(catalog::CatalogEntry::device)
}

/// Look up a suite scale by its URL slug (case-insensitive).
#[must_use]
pub fn scale_by_slug(slug: &str) -> Option<SuiteScale> {
    match slug.to_ascii_lowercase().as_str() {
        "tiny" => Some(SuiteScale::Tiny),
        "small" => Some(SuiteScale::Small),
        "profile" => Some(SuiteScale::Profile),
        _ => None,
    }
}

fn scale_slug(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Tiny => "tiny",
        SuiteScale::Small => "small",
        SuiteScale::Profile => "profile",
    }
}

/// A workload submitted through `POST /v1/workloads` as a `cactus-wir`
/// definition: the validated AST plus the canonical source it was parsed
/// from (the source is what the store persists and `/v1/workloads` echoes).
pub struct WirWorkload {
    /// The definition's `workload "<name>"` header, used as the URL slug.
    pub name: String,
    /// Source text as submitted (the durable store holds these bytes).
    pub source: String,
    /// The validated definition the interpreter executes.
    pub def: cactus_wir::WorkloadDef,
}

/// A servable workload: a Cactus suite member, a PRT comparison benchmark,
/// or a submitted IR definition.
pub enum ServableWorkload {
    /// One of the ten Cactus workloads (keyed by abbreviation).
    Cactus(Workload),
    /// One Parboil/Rodinia/Tango benchmark (keyed by name).
    Prt(Benchmark),
    /// A validated `cactus-wir` definition (keyed by its workload name).
    Wir(Arc<WirWorkload>),
}

impl ServableWorkload {
    /// Canonical name: the Cactus abbreviation, the PRT benchmark name, or
    /// the IR definition's workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ServableWorkload::Cactus(w) => w.abbr,
            ServableWorkload::Prt(b) => b.name,
            ServableWorkload::Wir(w) => &w.name,
        }
    }
}

/// Resolve a workload by name: Cactus abbreviations match
/// case-insensitively (`gms` → `GMS`), PRT benchmarks by exact name.
#[must_use]
pub fn workload_by_name(name: &str) -> Option<ServableWorkload> {
    if let Some(w) = workloads::by_abbr(&name.to_ascii_uppercase()) {
        return Some(ServableWorkload::Cactus(w));
    }
    cactus_suites::by_name(name).map(ServableWorkload::Prt)
}

/// Store-key prefix for submitted IR definitions. Lives in the same
/// durable store as profiles but in a disjoint key namespace — profile
/// keys always start with a catalog device slug, never `wir/`.
const WIR_KEY_PREFIX: &str = "wir/";

/// Store version stamped on a profile record superseded by a workload
/// re-submission. `cactus_gpu::MODEL_VERSION` starts at 1 and only grows,
/// so 0 can never read as current and the record is always a store miss.
const SUPERSEDED_VERSION: u32 = 0;

/// Why `POST /v1/workloads` refused a submission.
pub enum WorkloadRejection {
    /// The static validator found defects; maps to `422` with the findings.
    Invalid(Vec<Finding>),
    /// The name collides with a built-in catalog entry; maps to `400`.
    Conflict(String),
    /// The durable store could not persist the definition; maps to `500`.
    Store(String),
}

/// Serve-side submission policy, layered on top of the language-level
/// validator: the name must be usable as a URL path segment, and a
/// definition that declares scales must declare every scale the routes can
/// ask for (otherwise `/v1/profile/<dev>/small/<name>` would fail at
/// interpretation time — after validation claimed the definition clean).
fn submission_policy(def: &cactus_wir::WorkloadDef) -> Vec<Finding> {
    let mut findings = Vec::new();
    let name_ok = !def.name.is_empty()
        && def.name.len() <= 64
        && def
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
    if !name_ok {
        findings.push(Finding {
            pass: "serve",
            line: def.line,
            message: format!(
                "workload name {:?} is not routable; use 1-64 chars from [a-z0-9_-]",
                def.name
            ),
        });
    }
    if !def.scales.is_empty() {
        for slug in SCALE_SLUGS {
            if !def.scales.iter().any(|s| s.name == slug) {
                findings.push(Finding {
                    pass: "serve",
                    line: def.line,
                    message: format!(
                        "definition declares scales but omits {slug:?}; declare all of {} (or none)",
                        SCALE_SLUGS.join(", ")
                    ),
                });
            }
        }
    }
    findings
}

/// The language-level validator plus the serve submission policy, exactly
/// as `register_wir` applies them.
fn submission_findings(def: &cactus_wir::WorkloadDef) -> Vec<Finding> {
    let mut findings = cactus_wir::check_with(def, &cactus_wir::CostCeilings::default());
    if findings.is_empty() {
        findings = submission_policy(def);
    }
    findings
}

/// The built-in-name collision check, shared by `register_wir` and
/// [`validate_submission`].
fn builtin_conflict(def: &cactus_wir::WorkloadDef) -> Option<String> {
    workload_by_name(&def.name).is_some().then(|| {
        format!(
            "workload name {:?} is taken by a built-in catalog entry",
            def.name
        )
    })
}

/// Run the full submission validation stack — parse, the multi-pass
/// validator under default ceilings, the serve submission policy, and the
/// built-in-name conflict check — without touching any state. The gateway
/// pre-validates with this exact function before broadcasting a
/// `POST /v1/workloads`, so the edge's verdict always matches every
/// backend's and a deterministic rejection never reaches the fleet.
///
/// # Errors
///
/// The same [`WorkloadRejection`] variants `register_wir` returns
/// (`Store` is never produced here).
pub fn validate_submission(source: &str) -> Result<cactus_wir::WorkloadDef, WorkloadRejection> {
    let def = cactus_wir::parse(source).map_err(|f| WorkloadRejection::Invalid(vec![f]))?;
    let findings = submission_findings(&def);
    if !findings.is_empty() {
        return Err(WorkloadRejection::Invalid(findings));
    }
    if let Some(msg) = builtin_conflict(&def) {
        return Err(WorkloadRejection::Conflict(msg));
    }
    Ok(def)
}

/// Rebuild the submitted-workload registry from the durable store at
/// startup. Records that no longer parse or validate under the current
/// binary are skipped with a warning — they stay in the store untouched,
/// so an upgraded validator quarantines rather than destroys them.
fn reload_wir(store: &Store) -> BTreeMap<String, Arc<WirWorkload>> {
    let mut map = BTreeMap::new();
    for entry in store.entries() {
        let Some(name) = entry.key.strip_prefix(WIR_KEY_PREFIX) else {
            continue;
        };
        if entry.version != cactus_wir::FORMAT_VERSION {
            eprintln!(
                "cactus-serve: skipping stored definition {} at format v{} (binary speaks v{})",
                entry.key,
                entry.version,
                cactus_wir::FORMAT_VERSION
            );
            continue;
        }
        let Ok(Some(record)) = store.get(&entry.key) else {
            continue;
        };
        let Ok(source) = String::from_utf8(record.value) else {
            eprintln!("cactus-serve: stored definition {} is not UTF-8", entry.key);
            continue;
        };
        match cactus_wir::analyze(&source, &cactus_wir::CostCeilings::default()) {
            Ok(def) if def.name == name => {
                map.insert(
                    name.to_owned(),
                    Arc::new(WirWorkload {
                        name: name.to_owned(),
                        source,
                        def,
                    }),
                );
            }
            Ok(def) => eprintln!(
                "cactus-serve: stored definition {} names workload {:?}; skipping",
                entry.key, def.name
            ),
            Err(findings) => eprintln!(
                "cactus-serve: stored definition {} no longer validates ({} finding(s)); skipping",
                entry.key,
                findings.len()
            ),
        }
    }
    map
}

/// A fully resolved, canonicalized request triple.
pub struct Triple {
    /// Device preset slug (canonical lowercase form).
    pub device_slug: String,
    /// The resolved device.
    pub device: Device,
    /// The resolved scale.
    pub scale: SuiteScale,
    /// The resolved workload.
    pub workload: ServableWorkload,
}

impl Triple {
    /// Resolve raw path segments into a triple.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown segment and the
    /// valid options.
    pub fn resolve(device: &str, scale: &str, workload: &str) -> Result<Self, String> {
        Self::resolve_with(device, scale, workload, |_| None)
    }

    /// [`Triple::resolve`] with a fallback lookup for workloads outside the
    /// built-in catalogs (the service passes its submitted-IR registry).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown segment and the
    /// valid options.
    pub fn resolve_with(
        device: &str,
        scale: &str,
        workload: &str,
        extra: impl FnOnce(&str) -> Option<ServableWorkload>,
    ) -> Result<Self, String> {
        let device_slug = device.to_ascii_lowercase();
        let resolved_device = device_by_slug(&device_slug).ok_or_else(|| {
            format!(
                "unknown device {device:?}; expected one of {}",
                device_slugs().join(", ")
            )
        })?;
        let resolved_scale = scale_by_slug(scale).ok_or_else(|| {
            format!(
                "unknown scale {scale:?}; expected one of {}",
                SCALE_SLUGS.join(", ")
            )
        })?;
        let resolved_workload = workload_by_name(workload)
            .or_else(|| extra(workload))
            .ok_or_else(|| {
                format!("unknown workload {workload:?}; see /v1/workloads for the catalog")
            })?;
        Ok(Self {
            device_slug,
            device: resolved_device,
            scale: resolved_scale,
            workload: resolved_workload,
        })
    }

    /// Canonical `device/scale/workload` key, shared by the response cache
    /// and the single-flight group.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.device_slug,
            scale_slug(self.scale),
            self.workload.name()
        )
    }
}

/// How a profile request was ultimately satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Loaded from the on-disk profile store.
    Store,
    /// Simulated live on a pooled engine.
    Simulated,
    /// Coalesced onto a concurrent identical request (no own work).
    Coalesced,
}

/// The store + simulation levels of the serving hierarchy, shared across
/// worker threads.
pub struct ProfileService {
    pools: Vec<(&'static str, GpuPool)>,
    /// In-flight lookups; the value carries whether the store satisfied it.
    flight: SingleFlight<(Arc<Profile>, bool)>,
    store: Arc<Store>,
    /// Workloads submitted through `POST /v1/workloads`, keyed by name.
    /// Held only for point lookups and inserts — never across a simulation.
    wir: RankedMutex<BTreeMap<String, Arc<WirWorkload>>>,
    store_hits: Counter,
    simulations: Counter,
    workloads_submitted: Counter,
    workloads_rejected: Counter,
    wir_exec_kernels: Counter,
}

impl ProfileService {
    /// A service modeling the full device catalog, backed by a store rooted
    /// at `store_dir` (defaults to [`store::store_dir`] when `None`),
    /// counting into a private registry.
    #[must_use]
    pub fn new(store_dir: Option<PathBuf>) -> Self {
        // lint:allow(no_panic, fresh private registry cannot collide and the caller picked the dir)
        Self::with_registry(store_dir, &[], &MetricsRegistry::new())
            .expect("fresh registry has no collisions")
    }

    /// A service whose counters (store hits, simulations, engine memo
    /// traffic, engines created) register in `registry` under
    /// `cactus_serve_*` names. Registry counters are monotonic: they keep
    /// counting across [`ProfileService::reset`]. Opens (creating if
    /// needed) the durable store under `store_dir`, importing any legacy
    /// filesystem profile tree found there on first open.
    ///
    /// `devices` names the catalog ids this backend models — one engine
    /// pool per id; an empty slice models the full catalog. Requests for
    /// other catalog devices are refused, which is what lets a gateway
    /// route them to a capable peer instead.
    ///
    /// # Errors
    ///
    /// Fails if a device id is not in the catalog, a metric name is
    /// already registered, or the store cannot be opened/recovered.
    pub fn with_registry(
        store_dir: Option<PathBuf>,
        devices: &[String],
        registry: &MetricsRegistry,
    ) -> Result<Self, String> {
        let reg = |e: cactus_obs::RegistryError| e.to_string();
        let instruments = PoolInstruments {
            memo_hits: registry
                .counter(
                    "cactus_serve_engine_memo_hits_total",
                    "launches replayed from a warm memo cache",
                )
                .map_err(reg)?,
            memo_misses: registry
                .counter(
                    "cactus_serve_engine_memo_misses_total",
                    "launches simulated from scratch",
                )
                .map_err(reg)?,
            engines_created: registry
                .counter(
                    "cactus_serve_engines_created_total",
                    "engines created across all pools",
                )
                .map_err(reg)?,
        };
        let modeled: Vec<&'static catalog::CatalogEntry> = if devices.is_empty() {
            catalog::CATALOG.iter().collect()
        } else {
            devices
                .iter()
                .map(|id| {
                    catalog::by_id(id).ok_or_else(|| {
                        format!(
                            "unknown device id {id:?}; the catalog has {}",
                            device_slugs().join(", ")
                        )
                    })
                })
                .collect::<Result<Vec<_>, String>>()?
        };
        let pools = modeled
            .iter()
            .map(|entry| {
                (
                    entry.id,
                    GpuPool::new(entry.device()).instrument(instruments.clone()),
                )
            })
            .collect();
        let dir = store_dir.unwrap_or_else(store::store_dir);
        let durable = Store::open(&dir)
            .map_err(|e| format!("cannot open profile store at {}: {e}", dir.display()))?;
        let wir = reload_wir(&durable);
        Ok(Self {
            pools,
            flight: SingleFlight::new(),
            store: Arc::new(durable),
            wir: RankedMutex::new(rank::WIR_REGISTRY, "serve.wir_registry", wir),
            store_hits: registry
                .counter(
                    "cactus_serve_store_hits_total",
                    "profiles answered from the durable store",
                )
                .map_err(reg)?,
            simulations: registry
                .counter(
                    "cactus_serve_simulations_total",
                    "profiles computed by live simulation",
                )
                .map_err(reg)?,
            workloads_submitted: registry
                .counter(
                    "cactus_serve_workloads_submitted_total",
                    "IR definitions accepted through POST /v1/workloads",
                )
                .map_err(reg)?,
            workloads_rejected: registry
                .counter(
                    "cactus_serve_workloads_rejected_total",
                    "IR submissions refused by the static validator",
                )
                .map_err(reg)?,
            wir_exec_kernels: registry
                .counter(
                    "cactus_wir_exec_kernels_total",
                    "kernel launches interpreted from IR definitions",
                )
                .map_err(reg)?,
        })
    }

    /// The durable store behind this service (shared with the server's
    /// warming, compaction, and `/v1/store/*` routes).
    #[must_use]
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The catalog ids this backend models, in construction order.
    #[must_use]
    pub fn modeled(&self) -> Vec<&'static str> {
        self.pools.iter().map(|(id, _)| *id).collect()
    }

    /// Whether this backend models the given catalog id.
    #[must_use]
    pub fn models(&self, device_slug: &str) -> bool {
        self.pools
            .iter()
            .any(|(id, _)| id.eq_ignore_ascii_case(device_slug))
    }

    /// Resolve one triple to a profile: profile store first, then live
    /// simulation. Concurrent calls for the same triple coalesce into one
    /// lookup/simulation via single-flight. When `ctx` is given, the leader
    /// records `serve.store` / `serve.simulate` (and nested `engine.launch`)
    /// spans under it; coalesced followers record nothing — their one span
    /// is the caller's, tagged with the coalesced source.
    ///
    /// # Errors
    ///
    /// Returns the leader's failure message (e.g. a panic during
    /// simulation) verbatim for every coalesced caller.
    pub fn profile(
        &self,
        triple: &Triple,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<(Arc<Profile>, ProfileSource), String> {
        if !self.models(&triple.device_slug) {
            return Err(format!(
                "device {:?} is not modeled by this backend; modeled: {}",
                triple.device_slug,
                self.modeled().join(", ")
            ));
        }
        let key = triple.key();
        let (result, leader) = self.flight.run(&key, || {
            let store_hit = {
                let mut span = ctx.map(|c| c.child("serve.store"));
                let profile =
                    self.load_from_store(&key, span.as_ref().map(cactus_obs::SpanGuard::ctx));
                if let Some(span) = &mut span {
                    span.tag("hit", if profile.is_some() { "true" } else { "false" });
                }
                profile
            };
            if let Some(profile) = store_hit {
                self.store_hits.inc();
                return Ok((Arc::new(profile), true));
            }
            self.simulations.inc();
            let profile = {
                let mut span = ctx.map(|c| c.child("serve.simulate"));
                if let Some(span) = &mut span {
                    span.tag("key", &key);
                }
                self.simulate(triple, span.as_ref().map(cactus_obs::SpanGuard::ctx))
            }?;
            self.append_to_store(&key, &profile, ctx);
            Ok((Arc::new(profile), false))
        });
        let (profile, from_store) = result?;
        let source = match (leader, from_store) {
            (false, _) => ProfileSource::Coalesced,
            (true, true) => ProfileSource::Store,
            (true, false) => ProfileSource::Simulated,
        };
        Ok((profile, source))
    }

    /// Probe the durable store for the triple's key. Records at a stale
    /// `MODEL_VERSION` are misses — the caller re-simulates and the new
    /// append supersedes them (compaction reclaims the bytes later).
    fn load_from_store(&self, key: &str, ctx: Option<SpanCtx<'_>>) -> Option<Profile> {
        let mut span = ctx.map(|c| c.child("store.get"));
        let record = match self.store.get(key) {
            Ok(record) => record?,
            Err(e) => {
                eprintln!("cactus-serve: store get {key} failed: {e}");
                if let Some(span) = &mut span {
                    span.tag("error", e.to_string());
                }
                return None;
            }
        };
        if let Some(span) = &mut span {
            span.tag("version", record.version.to_string());
        }
        if record.version != MODEL_VERSION {
            return None;
        }
        let text = String::from_utf8(record.value).ok()?;
        match profile_store::read_profile(&text) {
            Ok(profile) => Some(profile),
            Err(e) => {
                eprintln!("cactus-serve: store record {key} does not parse: {e}");
                None
            }
        }
    }

    /// Append a freshly simulated profile to the durable store. Failures
    /// are logged, not fatal — serving beats durability here, and the next
    /// identical request simply simulates again.
    fn append_to_store(&self, key: &str, profile: &Profile, ctx: Option<SpanCtx<'_>>) {
        let text = profile_store::write_profile(profile);
        let mut span = ctx.map(|c| c.child("store.append"));
        if let Some(span) = &mut span {
            span.tag("bytes", text.len().to_string());
        }
        if let Err(e) = self.store.append(key, MODEL_VERSION, text.as_bytes()) {
            eprintln!("cactus-serve: store append {key} failed: {e}");
            if let Some(span) = &mut span {
                span.tag("error", e.to_string());
            }
        }
    }

    /// Validate and durably ingest one externally supplied record (the
    /// gateway's replication and anti-entropy pushes). Profile keys must
    /// parse as a `cactus-profile v1` document and are stored verbatim at
    /// the current [`MODEL_VERSION`]; `wir/<name>` keys run the full
    /// submission stack and register the workload exactly as
    /// `POST /v1/workloads` would — that is the repair path that lets a
    /// backend which missed a workload broadcast converge.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unparseable bodies, rejected
    /// definitions, or store failures.
    pub fn ingest_record(&self, key: &str, text: &str) -> Result<(), String> {
        if let Some(name) = key.strip_prefix(WIR_KEY_PREFIX) {
            let def = validate_submission(text).map_err(|r| match r {
                WorkloadRejection::Invalid(findings) => format!(
                    "definition rejected with {} finding(s); first: {}",
                    findings.len(),
                    findings.first().map(Finding::to_string).unwrap_or_default()
                ),
                WorkloadRejection::Conflict(msg) | WorkloadRejection::Store(msg) => msg,
            })?;
            if def.name != name {
                return Err(format!(
                    "definition names workload {:?} but the key says {name:?}",
                    def.name
                ));
            }
            return self
                .register_wir(text, None)
                .map(|_| ())
                .map_err(|r| match r {
                    WorkloadRejection::Invalid(_) => "definition failed re-validation".to_owned(),
                    WorkloadRejection::Conflict(msg) | WorkloadRejection::Store(msg) => msg,
                });
        }
        profile_store::read_profile(text).map_err(|e| format!("body is not a profile: {e}"))?;
        self.store
            .append(key, MODEL_VERSION, text.as_bytes())
            .map_err(|e| format!("store append failed: {e}"))
    }

    /// Validate and register one submitted IR definition: parse, run the
    /// full static validator, apply the serve submission policy, persist
    /// the source durably, and admit the workload into the routing
    /// registry. Returns the workload name and whether it replaced an
    /// earlier submission of the same name.
    ///
    /// # Errors
    ///
    /// [`WorkloadRejection::Invalid`] carries validator findings (nothing
    /// was persisted); [`WorkloadRejection::Conflict`] a built-in name
    /// collision; [`WorkloadRejection::Store`] a persistence failure.
    pub fn register_wir(
        &self,
        source: &str,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<(String, bool), WorkloadRejection> {
        let reject = |findings: Vec<Finding>| {
            self.workloads_rejected.inc();
            WorkloadRejection::Invalid(findings)
        };
        let def = {
            let mut span = ctx.map(|c| c.child("wir.parse"));
            match cactus_wir::parse(source) {
                Ok(def) => def,
                Err(f) => {
                    if let Some(span) = &mut span {
                        span.tag("error", f.to_string());
                    }
                    return Err(reject(vec![f]));
                }
            }
        };
        {
            let mut span = ctx.map(|c| c.child("wir.check"));
            let findings = submission_findings(&def);
            if let Some(span) = &mut span {
                span.tag("workload", &def.name);
                span.tag("findings", findings.len().to_string());
            }
            if !findings.is_empty() {
                return Err(reject(findings));
            }
        }
        if let Some(msg) = builtin_conflict(&def) {
            self.workloads_rejected.inc();
            return Err(WorkloadRejection::Conflict(msg));
        }
        let key = format!("{WIR_KEY_PREFIX}{}", def.name);
        {
            let mut span = ctx.map(|c| c.child("store.append"));
            if let Some(span) = &mut span {
                span.tag("bytes", source.len().to_string());
            }
            if let Err(e) = self
                .store
                .append(&key, cactus_wir::FORMAT_VERSION, source.as_bytes())
            {
                self.workloads_rejected.inc();
                if let Some(span) = &mut span {
                    span.tag("error", e.to_string());
                }
                return Err(WorkloadRejection::Store(format!(
                    "store append failed: {e}"
                )));
            }
        }
        let name = def.name.clone();
        let workload = Arc::new(WirWorkload {
            name: name.clone(),
            source: source.to_owned(),
            def,
        });
        let prev = self.wir.lock().insert(name.clone(), workload);
        let replaced = prev.is_some();
        if prev.is_some_and(|p| p.source != source) {
            // A *changed* definition's old profiles are stale the moment
            // the registry swaps; supersede them so no triple keeps
            // serving results computed from the replaced definition. A
            // byte-identical resubmission would re-derive the same bytes,
            // so its stored profiles stay valid.
            self.supersede_profiles(&name, ctx);
        }
        self.workloads_submitted.inc();
        Ok((name, replaced))
    }

    /// Mark every stored profile of `workload` stale by appending a
    /// [`SUPERSEDED_VERSION`] placeholder over it. `load_from_store`
    /// treats any version other than the current `MODEL_VERSION` as a
    /// miss, so the next request re-simulates under the replacement
    /// definition and its fresh append supersedes the placeholder in turn.
    fn supersede_profiles(&self, workload: &str, ctx: Option<SpanCtx<'_>>) {
        let mut span = ctx.map(|c| c.child("store.supersede"));
        let mut superseded = 0u32;
        for device in catalog::device_ids() {
            for scale in SCALE_SLUGS {
                let key = format!("{device}/{scale}/{workload}");
                if !matches!(self.store.get(&key), Ok(Some(_))) {
                    continue;
                }
                match self
                    .store
                    .append(&key, SUPERSEDED_VERSION, b"superseded by re-submission\n")
                {
                    Ok(()) => superseded += 1,
                    Err(e) => eprintln!("cactus-serve: supersede {key} failed: {e}"),
                }
            }
        }
        if let Some(span) = &mut span {
            span.tag("workload", workload);
            span.tag("records", superseded.to_string());
        }
    }

    /// Resolve raw path segments against the built-in catalogs *and* the
    /// submitted-IR registry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown segment.
    pub fn resolve_triple(
        &self,
        device: &str,
        scale: &str,
        workload: &str,
    ) -> Result<Triple, String> {
        Triple::resolve_with(device, scale, workload, |name| {
            self.wir_workload(name).map(ServableWorkload::Wir)
        })
    }

    /// Look up one submitted definition by name.
    #[must_use]
    pub fn wir_workload(&self, name: &str) -> Option<Arc<WirWorkload>> {
        self.wir.lock().get(name).cloned()
    }

    /// Names of every registered submitted definition, sorted.
    #[must_use]
    pub fn wir_names(&self) -> Vec<String> {
        self.wir.lock().keys().cloned().collect()
    }

    /// Registered submitted definitions.
    #[must_use]
    pub fn wir_count(&self) -> usize {
        self.wir.lock().len()
    }

    /// Run the triple's workload on a pooled engine. Built-in workloads are
    /// infallible; IR definitions are interpreted under a `wir.exec` span
    /// and surface interpreter failures (the static validator makes these
    /// unreachable for registered definitions, but the error path stays —
    /// the interpreter is the final authority).
    fn simulate(&self, triple: &Triple, ctx: Option<SpanCtx<'_>>) -> Result<Profile, String> {
        let pool = self.pool(&triple.device_slug);
        let mut gpu = pool.checkout();
        let mut span = ctx.map(|c| c.child("engine.launch"));
        match &triple.workload {
            ServableWorkload::Cactus(w) => w.run(&mut gpu, triple.scale),
            ServableWorkload::Prt(b) => {
                // The comparison suites define only tiny and profile scales;
                // small maps to tiny.
                let scale = match triple.scale {
                    SuiteScale::Profile => cactus_suites::Scale::Profile,
                    SuiteScale::Tiny | SuiteScale::Small => cactus_suites::Scale::Tiny,
                };
                b.run(&mut gpu, scale);
            }
            ServableWorkload::Wir(w) => {
                let mut exec = span
                    .as_ref()
                    .map(|s| s.ctx().child("wir.exec"))
                    .or_else(|| ctx.map(|c| c.child("wir.exec")));
                if let Some(exec) = &mut exec {
                    exec.tag("workload", &w.name);
                    exec.tag("scale", scale_slug(triple.scale));
                }
                let launches = cactus_wir::run(&w.def, Some(scale_slug(triple.scale)), &mut gpu)
                    .map_err(|e| format!("wir exec failed at line {}: {}", e.line, e.message))?;
                self.wir_exec_kernels.add(launches);
                if let Some(exec) = &mut exec {
                    exec.tag("launches", launches.to_string());
                }
            }
        }
        if let Some(span) = &mut span {
            let delta = gpu.memo_delta();
            span.tag("device", &triple.device_slug);
            span.tag("memo_hits", delta.hits.to_string());
            span.tag("memo_misses", delta.misses.to_string());
        }
        Ok(Profile::from_records(gpu.records()))
    }

    fn pool(&self, device_slug: &str) -> &GpuPool {
        &self
            .pools
            .iter()
            .find(|(slug, _)| *slug == device_slug)
            // lint:allow(no_panic, profile() refuses unmodeled devices before simulate runs)
            .expect("modeled device has a pool")
            .1
    }

    /// Profiles answered from the on-disk store.
    #[must_use]
    pub fn store_hits(&self) -> u64 {
        self.store_hits.get()
    }

    /// Profiles computed by live simulation (coalesced requests count once).
    #[must_use]
    pub fn simulations(&self) -> u64 {
        self.simulations.get()
    }

    /// Aggregated launch-memo counters across every engine pool (completed
    /// checkouts only).
    #[must_use]
    pub fn engine_memo_stats(&self) -> MemoStats {
        self.pools
            .iter()
            .fold(MemoStats::default(), |acc, (_, pool)| {
                acc.merged(&pool.memo_stats())
            })
    }

    /// Total engines created across all pools.
    #[must_use]
    pub fn engines(&self) -> u64 {
        self.pools.iter().map(|(_, pool)| pool.engines()).sum()
    }

    /// Drop every pooled engine (and its memo cache) and zero the pool-local
    /// memo stats. Used by benches to measure cold paths. Registry counters
    /// (store hits, simulations, memo traffic) are monotonic and keep their
    /// values — Prometheus semantics; consumers measure deltas.
    pub fn reset(&self) {
        for (_, pool) in &self.pools {
            pool.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_resolution_round_trips() {
        for slug in device_slugs() {
            assert!(device_by_slug(slug).is_some(), "{slug}");
        }
        for slug in SCALE_SLUGS {
            assert!(scale_by_slug(slug).is_some(), "{slug}");
        }
        assert!(device_by_slug("RTX-3080").is_some(), "case-insensitive");
        assert!(device_by_slug("h100").is_none());
        assert!(scale_by_slug("huge").is_none());
        // The new catalog parts resolve like the founding four.
        assert!(device_by_slug("rtx-3060").is_some());
        assert!(device_by_slug("uhd-630").is_some());
    }

    #[test]
    fn workload_resolution_covers_both_catalogs() {
        assert_eq!(workload_by_name("gms").expect("cactus").name(), "GMS");
        let prt = cactus_suites::all();
        let first = prt.first().expect("non-empty catalog");
        assert_eq!(
            workload_by_name(first.name).expect("prt").name(),
            first.name
        );
        assert!(workload_by_name("no-such-workload").is_none());
    }

    #[test]
    fn triple_key_is_canonical() {
        let t = Triple::resolve("RTX-3080", "TINY", "gms").expect("resolve");
        assert_eq!(t.key(), "rtx-3080/tiny/GMS");
        assert!(Triple::resolve("h100", "tiny", "GMS").is_err());
        assert!(Triple::resolve("rtx-3080", "huge", "GMS").is_err());
        assert!(Triple::resolve("rtx-3080", "tiny", "nope").is_err());
    }

    fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cactus-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn simulation_matches_direct_run_and_counts_once() {
        let dir = fresh_store_dir("counts-once");
        let svc = ProfileService::new(Some(dir.clone()));
        let t = Triple::resolve("rtx-3080", "tiny", "GMS").expect("resolve");
        let (p, source) = svc.profile(&t, None).expect("profile");
        assert_eq!(source, ProfileSource::Simulated);
        assert_eq!(*p, cactus_core::run("GMS", SuiteScale::Tiny));
        assert_eq!(svc.simulations(), 1);
        assert_eq!(svc.store_hits(), 0);
        assert!(svc.engine_memo_stats().launches() > 0);

        // The simulation was appended to the durable store, so a second
        // call (a fresh flight — no response cache at this layer) is a
        // store hit and the result is bit-identical.
        let (p2, source2) = svc.profile(&t, None).expect("profile again");
        assert_eq!(source2, ProfileSource::Store);
        assert_eq!(*p2, *p);
        assert_eq!(svc.simulations(), 1, "store hit did not re-simulate");
        assert_eq!(svc.store_hits(), 1);
        assert_eq!(svc.engines(), 1, "engine was reused, not recreated");

        // And the corpus survives a restart: a fresh service over the same
        // directory recovers the record without simulating.
        let svc2 = ProfileService::new(Some(dir.clone()));
        let (p3, source3) = svc2.profile(&t, None).expect("profile after restart");
        assert_eq!(source3, ProfileSource::Store);
        assert_eq!(*p3, *p);
        assert_eq!(svc2.simulations(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulation_records_a_span_tree_under_the_caller() {
        let tracer = cactus_obs::Tracer::new(64);
        let trace = cactus_obs::TraceId::mint();
        let dir = fresh_store_dir("span-tree");
        let svc = ProfileService::new(Some(dir.clone()));
        let t = Triple::resolve("rtx-3080", "tiny", "GMS").expect("resolve");
        {
            let mut root = tracer.ctx(trace).child("serve.profile");
            let (_, source) = svc.profile(&t, Some(root.ctx())).expect("profile");
            root.tag("source", format!("{source:?}"));
        }
        let spans = tracer.spans_for(trace);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "store.get",
                "serve.store",
                "engine.launch",
                "serve.simulate",
                "store.append",
                "serve.profile"
            ],
            "children finish (and file) before their parents"
        );
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).expect(n);
        assert_eq!(
            by_name("serve.simulate").parent_id,
            by_name("serve.profile").span_id
        );
        assert_eq!(
            by_name("engine.launch").parent_id,
            by_name("serve.simulate").span_id
        );
        assert!(by_name("engine.launch")
            .tags
            .iter()
            .any(|(k, _)| *k == "memo_misses"));
    }

    #[test]
    fn device_subset_gates_the_service() {
        let dir = fresh_store_dir("subset");
        let svc = ProfileService::with_registry(
            Some(dir.clone()),
            &["rtx-3060".to_owned(), "uhd-630".to_owned()],
            &MetricsRegistry::new(),
        )
        .expect("subset service");
        assert_eq!(svc.modeled(), ["rtx-3060", "uhd-630"]);
        assert!(svc.models("rtx-3060"));
        assert!(svc.models("UHD-630"), "case-insensitive");
        assert!(!svc.models("rtx-3080"));

        // A triple for an unmodeled (but valid) device resolves, then the
        // service refuses it — it must never simulate as if it owned it.
        let t = Triple::resolve("rtx-3080", "tiny", "GMS").expect("catalog-valid");
        let err = svc.profile(&t, None).expect_err("not modeled here");
        assert!(err.contains("not modeled"), "{err}");
        assert_eq!(svc.simulations(), 0);

        // A modeled device simulates normally.
        let t = Triple::resolve("rtx-3060", "tiny", "GMS").expect("resolve");
        let (_, source) = svc.profile(&t, None).expect("modeled device");
        assert_eq!(source, ProfileSource::Simulated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_config_device_fails_construction() {
        let dir = fresh_store_dir("bad-config");
        let err = match ProfileService::with_registry(
            Some(dir.clone()),
            &["rtx-9090".to_owned()],
            &MetricsRegistry::new(),
        ) {
            Ok(_) => panic!("unknown id must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("rtx-9090"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_level_is_consulted_before_simulation() {
        let dir = std::env::temp_dir().join(format!("cactus-serve-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Populate the store with a tiny-simulated stand-in set; the store
        // only keys rtx-3080/profile, which is what we request back.
        let set: Vec<cactus_bench::ProfiledWorkload> = vec![cactus_bench::ProfiledWorkload {
            name: "GMS".to_owned(),
            suite: "Cactus".to_owned(),
            profile: cactus_core::run("GMS", SuiteScale::Tiny),
            memo: None,
        }];
        store::save_set_in(&dir, "cactus", &set).expect("seed store");

        let svc = ProfileService::new(Some(dir.clone()));
        let t = Triple::resolve("rtx-3080", "profile", "GMS").expect("resolve");
        let (p, source) = svc.profile(&t, None).expect("profile");
        assert_eq!(source, ProfileSource::Store);
        assert_eq!(*p, set[0].profile);
        assert_eq!(svc.store_hits(), 1);
        assert_eq!(svc.simulations(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
