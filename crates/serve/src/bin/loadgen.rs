//! `loadgen` — a closed-loop load generator for `cactus-serve` and
//! `cactus-gateway`.
//!
//! ```text
//! loadgen --target HOST:PORT [--target HOST:PORT ...] [--clients N]
//!         [--requests N] [--path PATH]
//! ```
//!
//! Spawns `--clients` closed-loop clients (each sends its next request only
//! after the previous response arrives) over keep-alive connections,
//! fanning `--requests` total requests round-robin across every `--target`
//! (`--addr` is an alias for one target), then prints throughput, a latency
//! summary (p50/p90/p99), a status histogram, and the per-target request
//! distribution — so the same binary drives one daemon, a fleet, or the
//! gateway in front of it. `503` responses are counted separately so
//! backpressure shows up as pushback, not as errors. With
//! `--similar DEVICE/SCALE/WORKLOAD` every fourth request becomes a
//! `/v1/similar` reference query for that triple, mixing stateful
//! similarity traffic into the profile load.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cactus_serve::client::ClientError;
use cactus_serve::metrics::quantile;
use cactus_serve::{Connection, DeviceId};

const USAGE: &str = "\
usage: loadgen --target HOST:PORT [--target HOST:PORT ...] [options]

  --target HOST:PORT server to load; repeat for several targets
                     (requests round-robin across all of them)
  --addr HOST:PORT   alias for --target (kept for compatibility)
  --clients N        concurrent closed-loop clients (default 4)
  --requests N       total requests across all clients (default 200)
  --path PATH        request path (default /v1/profile/rtx-3080/tiny/GMS)
  --similar TRIPLE   DEVICE/SCALE/WORKLOAD; every 4th request becomes a
                     /v1/similar reference query for that triple
  --workload-file F  POST the cactus-wir definition in file F to the first
                     target before the run; unless --path is given, the run
                     then loads /v1/profile/rtx-3080/tiny/<its name>
  --help             show this help
";

/// With `--similar`, one request in this many goes to `/v1/similar`.
const SIMILAR_EVERY: u64 = 4;

struct Args {
    targets: Vec<SocketAddr>,
    clients: usize,
    requests: u64,
    path: String,
    /// Whether `--path` was given explicitly (suppresses the derived
    /// profile path of `--workload-file`).
    path_explicit: bool,
    similar_path: Option<String>,
    workload_file: Option<String>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut targets = Vec::new();
    let mut clients = 4usize;
    let mut requests = 200u64;
    let mut path = "/v1/profile/rtx-3080/tiny/GMS".to_owned();
    let mut path_explicit = false;
    let mut similar_path = None;
    let mut workload_file = None;
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--target" | "--addr" => {
                targets.push(
                    value
                        .parse()
                        .map_err(|_| format!("{flag}: invalid address {value:?}"))?,
                );
            }
            "--clients" => {
                clients = value
                    .parse()
                    .map_err(|_| format!("--clients: invalid number {value:?}"))?;
            }
            "--requests" => {
                requests = value
                    .parse()
                    .map_err(|_| format!("--requests: invalid number {value:?}"))?;
            }
            "--path" => {
                path = value;
                path_explicit = true;
            }
            "--workload-file" => workload_file = Some(value),
            "--similar" => {
                let parts: Vec<&str> = value.split('/').collect();
                let [device, scale, workload] = parts.as_slice() else {
                    return Err(format!(
                        "--similar: expected DEVICE/SCALE/WORKLOAD, got {value:?}"
                    ));
                };
                // Typo-check the device against the catalog before any
                // traffic is generated for it.
                let device = DeviceId::resolve(device).map_err(|e| format!("--similar: {e}"))?;
                similar_path = Some(format!(
                    "/v1/similar?device={device}&scale={scale}&workload={workload}"
                ));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if targets.is_empty() {
        return Err("at least one --target (or --addr) is required".to_owned());
    }
    Ok(Some(Args {
        targets,
        clients: clients.max(1),
        requests,
        path,
        path_explicit,
        similar_path,
        workload_file,
    }))
}

/// Submit the `--workload-file` definition to the first target and return
/// the profile path the run should load (the explicit `--path` wins).
fn submit_workload(args: &Args, file: &str) -> Result<Option<String>, String> {
    let source =
        std::fs::read_to_string(file).map_err(|e| format!("--workload-file {file}: {e}"))?;
    let target = *args
        .targets
        .first()
        .ok_or_else(|| "no targets configured".to_owned())?;
    let mut conn = Connection::new(target, Duration::from_secs(60));
    let reply = conn
        .post_traced("/v1/workloads", &source, None)
        .map_err(|e| format!("POST /v1/workloads: {e}"))?;
    if !(200..300).contains(&reply.status) {
        return Err(format!(
            "POST /v1/workloads answered {}: {}",
            reply.status,
            reply.body.trim_end()
        ));
    }
    println!("loadgen: {}", reply.body.trim_end());
    if args.path_explicit {
        return Ok(None);
    }
    // Derive the default request path from the definition's own name. The
    // submission already validated it server-side, so a parse failure here
    // is unreachable; surface it instead of unwrapping anyway.
    let def = cactus_wir::parse(&source).map_err(|f| format!("--workload-file {file}: {f}"))?;
    Ok(Some(format!("/v1/profile/rtx-3080/tiny/{}", def.name)))
}

#[derive(Default, Clone)]
struct Tally {
    statuses: BTreeMap<u16, u64>,
    latencies_us: Vec<u64>,
    per_target: Vec<u64>,
    transport_errors: u64,
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut args = args;
    if let Some(file) = args.workload_file.take() {
        match submit_workload(&args, &file) {
            Ok(Some(derived)) => args.path = derived,
            Ok(None) => {}
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let issued = Arc::new(AtomicU64::new(0));
    let tally = Arc::new(Mutex::new(Tally {
        per_target: vec![0; args.targets.len()],
        ..Tally::default()
    }));
    let path = Arc::new(args.path);
    let similar_path = Arc::new(args.similar_path);
    let targets = Arc::new(args.targets);
    let budget = args.requests;
    let started = Instant::now();

    let threads: Vec<_> = (0..args.clients)
        .map(|_| {
            let issued = Arc::clone(&issued);
            let tally = Arc::clone(&tally);
            let path = Arc::clone(&path);
            let similar_path = Arc::clone(&similar_path);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                // One keep-alive connection per target, reused across this
                // client's whole run.
                let mut conns: Vec<Connection> = targets
                    .iter()
                    .map(|&addr| Connection::new(addr, Duration::from_secs(60)))
                    .collect();
                loop {
                    // Claim one global request slot; its index picks the
                    // target round-robin so the distribution is exact.
                    let slot = issued.fetch_add(1, Ordering::Relaxed);
                    if slot >= budget {
                        break;
                    }
                    let target = usize::try_from(slot).unwrap_or(usize::MAX) % targets.len();
                    let request_path = match similar_path.as_ref() {
                        Some(sp) if slot % SIMILAR_EVERY == SIMILAR_EVERY - 1 => sp.as_str(),
                        _ => path.as_str(),
                    };
                    let start = Instant::now();
                    let outcome = conns[target].get(request_path);
                    let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let mut tally = tally.lock().unwrap_or_else(|e| e.into_inner());
                    tally.per_target[target] += 1;
                    match outcome {
                        Ok(reply) => {
                            *tally.statuses.entry(reply.status).or_insert(0) += 1;
                            tally.latencies_us.push(elapsed_us);
                        }
                        Err(ClientError::Io(_)) => tally.transport_errors += 1,
                        Err(_) => *tally.statuses.entry(0).or_insert(0) += 1,
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }

    let wall = started.elapsed();
    let tally = match Arc::try_unwrap(tally) {
        Ok(m) => m.into_inner().unwrap_or_else(|e| e.into_inner()),
        // Every client thread was joined above, so this arm is unreachable;
        // reading through the lock keeps it panic-free anyway.
        Err(shared) => shared.lock().unwrap_or_else(|e| e.into_inner()).clone(),
    };

    let completed: u64 = tally.statuses.values().sum();
    let attempted: u64 = tally.per_target.iter().sum();
    let mut sorted = tally.latencies_us.clone();
    sorted.sort_unstable();
    println!(
        "loadgen: {} requests in {:.3}s over {} clients against {} target(s)",
        completed,
        wall.as_secs_f64(),
        args.clients,
        targets.len()
    );
    println!("  path: {path}");
    if let Some(sp) = similar_path.as_ref() {
        println!("  similar: {sp} (every {SIMILAR_EVERY}th request)");
    }
    if wall.as_secs_f64() > 0.0 {
        println!(
            "  throughput: {:.1} req/s",
            completed as f64 / wall.as_secs_f64()
        );
    }
    println!(
        "  latency: p50 {} us, p90 {} us, p99 {} us",
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.90),
        quantile(&sorted, 0.99),
    );
    print!("  statuses:");
    for (status, count) in &tally.statuses {
        if *status == 0 {
            print!(" parse-error={count}");
        } else {
            print!(" {status}={count}");
        }
    }
    println!();
    println!("  per-target distribution:");
    for (i, (addr, count)) in targets.iter().zip(&tally.per_target).enumerate() {
        let share = if attempted > 0 {
            100.0 * *count as f64 / attempted as f64
        } else {
            0.0
        };
        println!("    target[{i}] {addr}: {count} requests ({share:.1}%)");
    }
    if tally.transport_errors > 0 {
        println!("  transport errors: {}", tally.transport_errors);
    }

    // Non-2xx/503 statuses (or transport errors) make the run fail so CI
    // can assert on exit code.
    let hard_failures: u64 = tally
        .statuses
        .iter()
        .filter(|(s, _)| !(200..300).contains(&i32::from(**s)) && **s != 503)
        .map(|(_, c)| *c)
        .sum();
    if hard_failures > 0 || tally.transport_errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
