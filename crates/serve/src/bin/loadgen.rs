//! `loadgen` — a closed-loop load generator for `cactus-serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N] [--requests N] [--path PATH]
//! ```
//!
//! Spawns `--clients` closed-loop clients (each sends its next request only
//! after the previous response arrives), fanning `--requests` total
//! requests over them, then prints throughput, a latency summary
//! (p50/p90/p99), and a status histogram. `503` responses are counted
//! separately so backpressure shows up as pushback, not as errors.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cactus_serve::client::{Client, ClientError};
use cactus_serve::metrics::quantile;

const USAGE: &str = "\
usage: loadgen --addr HOST:PORT [options]

  --addr HOST:PORT   server to load (required)
  --clients N        concurrent closed-loop clients (default 4)
  --requests N       total requests across all clients (default 200)
  --path PATH        request path (default /v1/profile/rtx-3080/tiny/GMS)
  --help             show this help
";

struct Args {
    addr: SocketAddr,
    clients: usize,
    requests: u64,
    path: String,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut addr = None;
    let mut clients = 4usize;
    let mut requests = 200u64;
    let mut path = "/v1/profile/rtx-3080/tiny/GMS".to_owned();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--addr" => {
                addr = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--addr: invalid address {value:?}"))?,
                );
            }
            "--clients" => {
                clients = value
                    .parse()
                    .map_err(|_| format!("--clients: invalid number {value:?}"))?;
            }
            "--requests" => {
                requests = value
                    .parse()
                    .map_err(|_| format!("--requests: invalid number {value:?}"))?;
            }
            "--path" => path = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    Ok(Some(Args {
        addr,
        clients: clients.max(1),
        requests,
        path,
    }))
}

#[derive(Default)]
struct Tally {
    statuses: BTreeMap<u16, u64>,
    latencies_us: Vec<u64>,
    transport_errors: u64,
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let remaining = Arc::new(AtomicU64::new(args.requests));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let path = Arc::new(args.path);
    let started = Instant::now();

    let threads: Vec<_> = (0..args.clients)
        .map(|_| {
            let remaining = Arc::clone(&remaining);
            let tally = Arc::clone(&tally);
            let path = Arc::clone(&path);
            let client = Client::new(args.addr).with_timeout(Duration::from_secs(60));
            std::thread::spawn(move || loop {
                // Claim one request slot; stop when the budget is spent.
                if remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_err()
                {
                    break;
                }
                let start = Instant::now();
                let outcome = client.get(&path);
                let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let mut tally = tally.lock().expect("tally poisoned");
                match outcome {
                    Ok(reply) => {
                        *tally.statuses.entry(reply.status).or_insert(0) += 1;
                        tally.latencies_us.push(elapsed_us);
                    }
                    Err(ClientError::Io(_)) => tally.transport_errors += 1,
                    Err(_) => *tally.statuses.entry(0).or_insert(0) += 1,
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }

    let wall = started.elapsed();
    let tally = Arc::try_unwrap(tally)
        .map(|m| m.into_inner().expect("tally poisoned"))
        .unwrap_or_else(|_| unreachable!("all clients joined"));

    let completed: u64 = tally.statuses.values().sum();
    let mut sorted = tally.latencies_us.clone();
    sorted.sort_unstable();
    println!(
        "loadgen: {} requests in {:.3}s over {} clients against {}",
        completed,
        wall.as_secs_f64(),
        args.clients,
        args.addr
    );
    println!("  path: {path}");
    if wall.as_secs_f64() > 0.0 {
        println!(
            "  throughput: {:.1} req/s",
            completed as f64 / wall.as_secs_f64()
        );
    }
    println!(
        "  latency: p50 {} us, p90 {} us, p99 {} us",
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.90),
        quantile(&sorted, 0.99),
    );
    print!("  statuses:");
    for (status, count) in &tally.statuses {
        if *status == 0 {
            print!(" parse-error={count}");
        } else {
            print!(" {status}={count}");
        }
    }
    println!();
    if tally.transport_errors > 0 {
        println!("  transport errors: {}", tally.transport_errors);
    }

    // Non-2xx/503 statuses (or transport errors) make the run fail so CI
    // can assert on exit code.
    let hard_failures: u64 = tally
        .statuses
        .iter()
        .filter(|(s, _)| !(200..300).contains(&i32::from(**s)) && **s != 503)
        .map(|(_, c)| *c)
        .sum();
    if hard_failures > 0 || tally.transport_errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
