//! The `cactus-serve` daemon.
//!
//! ```text
//! cactus-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!              [--retry-after SECS] [--store-dir PATH] [--port-file PATH]
//!              [--span-log PATH] [--devices ID,ID,...]
//! ```
//!
//! Binds (port 0 picks an ephemeral port), optionally writes the bound port
//! to `--port-file` (CI and scripts read it back), then serves until
//! `SIGINT`/`SIGTERM`. Shutdown is graceful: in-flight and queued requests
//! are answered before the process exits 0.

use std::process::ExitCode;
use std::time::Duration;

use cactus_serve::{signal, ServeConfig, Server};

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(config, port_file)) => run(config, port_file),
        Ok(Parsed::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("cactus-serve: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cactus-serve [options]

  --addr HOST:PORT     bind address (default 127.0.0.1:7070; port 0 = ephemeral)
  --workers N          worker threads (default 4)
  --queue N            accepted connections allowed to wait (default 64)
  --cache N            response-cache entries, 0 disables (default 256)
  --retry-after SECS   Retry-After advertised on 503 (default 1)
  --store-dir PATH     profile-store directory (default: workspace results/)
  --port-file PATH     write the bound port here once listening
  --span-log PATH      append every finished span as a JSON line here
  --devices ID,ID,...  catalog device ids this backend models and advertises
                       (default: the full catalog)
  --help               show this help
";

enum Parsed {
    Run(ServeConfig, Option<String>),
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7070".to_owned(),
        ..ServeConfig::default()
    };
    let mut port_file = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(Parsed::Help);
        }
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value()?,
            "--workers" => config.workers = parse_num(&flag, &value()?)?,
            "--queue" => config.queue = parse_num(&flag, &value()?)?,
            "--cache" => config.cache_capacity = parse_num(&flag, &value()?)?,
            "--retry-after" => config.retry_after_s = parse_num(&flag, &value()?)?,
            "--store-dir" => config.store_dir = Some(value()?.into()),
            "--span-log" => config.span_log = Some(value()?.into()),
            "--devices" => {
                config.devices = value()?
                    .split(',')
                    .map(|id| id.trim().to_owned())
                    .filter(|id| !id.is_empty())
                    .collect();
            }
            "--port-file" => port_file = Some(value()?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Parsed::Run(config, port_file))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

fn run(config: ServeConfig, port_file: Option<String>) -> ExitCode {
    signal::install_handlers();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cactus-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    eprintln!(
        "cactus-serve: listening on http://{addr}/ (try /v1/healthz, /v1/devices, /v1/workloads)"
    );
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("cactus-serve: cannot write port file {path}: {e}");
            server.join();
            return ExitCode::FAILURE;
        }
    }

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cactus-serve: shutdown requested, draining in-flight requests");
    server.join();
    eprintln!("cactus-serve: drained, exiting");
    ExitCode::SUCCESS
}
