//! URL routing and response rendering for the versioned `/v1` surface.
//!
//! Every endpoint lives under `/v1/...`; the pre-versioning spellings
//! (`/healthz`, `/metricsz`) stay as deprecated aliases — they answer with
//! a `Deprecation: true` header, a `Link` to the `/v1` successor, and a
//! tick of `cactus_serve_legacy_requests_total` so operators can watch the
//! alias traffic drain before removal (policy in DESIGN.md §5k).
//! Errors are the shared JSON envelope (`{code, message, retryable}`) from
//! [`cactus_obs::ApiError`]. Each profile endpoint resolves its
//! `(device, scale, workload)` triple, consults the response cache under a
//! canonical key, and falls through to [`ProfileService::profile`] (store,
//! then coalesced simulation) on a miss — recording `serve.cache` /
//! `serve.profile` spans under the caller's ctx as it goes. Bodies are
//! text: the profile endpoint serves the bit-exact
//! [`cactus_profiler::store`] serialization (so the typed client parses it
//! with `read_profile`), the rest serve CSV.

use cactus_analysis::roofline::Roofline;
use cactus_obs::{SpanCtx, TraceId};
use cactus_profiler::{csv, store as profile_store};

use crate::cache::CachedResponse;
use crate::http::{Request, Response};
use crate::server::ServerState;
use crate::service::{Triple, WorkloadRejection, SCALE_SLUGS};

/// The endpoint family served under
/// `/v1/<endpoint>/<device>/<scale>/<workload>`. `cactus-lint`'s surface
/// rule parses this const to cross-check client paths and tests against
/// the routes actually served — keep it in sync with the dispatch in
/// [`route_triple`].
pub const TRIPLE_ENDPOINTS: [&str; 4] = ["profile", "kernels", "roofline", "dominant"];

/// Raw durable-store record routes: `GET` reads the stored record
/// verbatim (no simulation fallthrough), `POST` ingests one — the
/// gateway's replication and anti-entropy pushes land here. Listed in
/// both spellings so `cactus-lint`'s surface rule accepts consumer paths
/// built from a joined `device/scale/workload` key or from the triple's
/// parts.
pub const STORE_RECORD_ROUTE: &str = "/v1/store/record/{key}";
/// Triple-shaped spelling of [`STORE_RECORD_ROUTE`].
pub const STORE_RECORD_TRIPLE_ROUTE: &str = "/v1/store/record/{device}/{scale}/{workload}";

/// Content type of CSV bodies.
const CSV: &str = "text/csv; charset=utf-8";
/// Content type of plain-text bodies (health, profiles, metrics).
pub(crate) const TEXT: &str = "text/plain; charset=utf-8";

/// Route one parsed request to a response. `ctx` is the request's
/// `serve.request` span; handlers hang their sub-spans off it.
#[must_use]
pub fn respond(state: &ServerState, req: &Request, ctx: SpanCtx<'_>) -> Response {
    let record_key = req.path.strip_prefix("/v1/store/record/");
    let workloads_post = req.method == "POST" && req.path == "/v1/workloads";
    if req.method != "GET" && !(req.method == "POST" && record_key.is_some()) && !workloads_post {
        return Response::error(
            405,
            format!(
                "method {} not allowed; use GET (POST is accepted only on /v1/workloads and \
                 {STORE_RECORD_ROUTE})",
                req.method
            ),
        );
    }
    if let Some(key) = record_key {
        return store_record(state, req, key, ctx);
    }
    if workloads_post {
        return submit_workload(state, req, ctx);
    }
    match req.path.as_str() {
        "/v1/healthz" => Response::ok(healthz_body(state), TEXT),
        "/v1/metricsz" => Response::ok(state.render_metrics(), TEXT),
        "/healthz" => legacy(
            state,
            "/v1/healthz",
            Response::ok(healthz_body(state), TEXT),
        ),
        "/metricsz" => legacy(
            state,
            "/v1/metricsz",
            Response::ok(state.render_metrics(), TEXT),
        ),
        "/v1/tracez" => tracez(state, req),
        "/v1/devices" => cached(state, "devices", CSV, || devices_catalog(state)),
        "/v1/workloads" => cached(state, "workloads", CSV, || workloads_catalog(state)),
        // Similarity responses are stateful (each query may grow the
        // index), so they bypass the response cache.
        "/v1/similar" => crate::similar::similar(state, req, ctx),
        "/v1/similar/stats" => crate::similar::stats(state),
        // Store pages are stateful (appends and compaction move them),
        // so they bypass the response cache too.
        "/v1/store/manifest" => Response::ok(state.service.store().manifest(), TEXT),
        "/v1/store/statz" => Response::ok(store_statz(state), TEXT),
        _ => route_triple(state, req, ctx),
    }
}

/// `GET`/`POST /v1/store/record/<device>/<scale>/<workload>`: the raw
/// durable-store surface used by gateway replication and anti-entropy.
///
/// `GET` answers the stored record verbatim whatever its model version
/// (anti-entropy copies bytes; relevance is the *receiver's* concern) and
/// never falls through to simulation. `POST` validates the body as a
/// profile document and appends it at this node's `MODEL_VERSION`.
fn store_record(state: &ServerState, req: &Request, key: &str, ctx: SpanCtx<'_>) -> Response {
    let segments: Vec<&str> = key.split('/').collect();
    if segments.len() != 3 || segments.iter().any(|s| s.is_empty()) {
        return Response::error(
            404,
            "store record keys have the shape <device>/<scale>/<workload>",
        );
    }
    if req.method == "POST" {
        let mut span = ctx.child("store.sync");
        span.tag("key", key);
        span.tag("bytes", req.body.len().to_string());
        return match state.service.ingest_record(key, &req.body) {
            Ok(()) => Response::ok("stored\n", TEXT),
            Err(msg) => {
                span.tag("error", msg.clone());
                Response::error(400, format!("record rejected: {msg}"))
            }
        };
    }
    let mut span = ctx.child("store.get");
    span.tag("key", key);
    match state.service.store().get(key) {
        Ok(Some(record)) => {
            span.tag("version", record.version.to_string());
            match String::from_utf8(record.value) {
                Ok(body) => Response::ok(body, TEXT),
                Err(_) => Response::error(500, "stored record is not UTF-8"),
            }
        }
        Ok(None) => Response::error(404, format!("no stored record for {key:?}")),
        Err(e) => {
            span.tag("error", e.to_string());
            Response::error(500, format!("store read failed: {e}"))
        }
    }
}

/// Render the `422` body for a rejected submission: the shared error
/// envelope extended with a `findings` array whose entries mirror
/// `cactus-wir-check --format json`. Public so the gateway's edge
/// pre-validation answers byte-identically to a backend's rejection.
#[must_use]
pub fn workload_rejection_body(findings: &[cactus_wir::Finding]) -> String {
    let mut body = format!(
        "{{\"code\":422,\"message\":\"workload definition rejected: {} finding(s)\",\
         \"retryable\":false,\"findings\":[",
        findings.len()
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&f.to_json());
    }
    body.push_str("]}");
    body
}

/// `POST /v1/workloads`: submit one `cactus-wir` definition. The body is
/// the definition source; it runs the full static validator before
/// anything durable happens. Rejections answer `422` with the findings as
/// JSON (see [`workload_rejection_body`]); acceptance persists the source,
/// admits the workload into the triple routes, and invalidates the cached
/// `/v1/workloads` listing. A re-submission under the same name replaces
/// the definition, so every cached view of the workload's triples is
/// dropped too (the service supersedes the stored profiles itself).
fn submit_workload(state: &ServerState, req: &Request, ctx: SpanCtx<'_>) -> Response {
    let mut span = ctx.child("serve.workload");
    span.tag("bytes", req.body.len().to_string());
    match state.service.register_wir(&req.body, Some(span.ctx())) {
        Ok((name, replaced)) => {
            span.tag("workload", &name);
            span.tag("replaced", if replaced { "true" } else { "false" });
            state.cache.remove("workloads");
            if replaced {
                // Cached /v1/{profile,kernels,roofline,dominant} bodies for
                // the old definition would otherwise outlive it; `dominant`
                // keys carry a `?t=` suffix, hence the split.
                let suffix = format!("/{name}");
                state.cache.remove_where(|key| {
                    key.split('?')
                        .next()
                        .is_some_and(|path| path.ends_with(suffix.as_str()))
                });
            }
            Response::ok(
                format!(
                    "{} workload {name:?}; profiles at /v1/profile/<device>/<scale>/{name}\n",
                    if replaced { "replaced" } else { "registered" },
                ),
                TEXT,
            )
        }
        Err(WorkloadRejection::Invalid(findings)) => {
            span.tag("findings", findings.len().to_string());
            Response {
                status: 422,
                content_type: "application/json",
                body: workload_rejection_body(&findings),
                retry_after: None,
                trace: None,
                extra_headers: Vec::new(),
            }
        }
        Err(WorkloadRejection::Conflict(msg)) => {
            span.tag("error", msg.clone());
            Response::error(400, msg)
        }
        Err(WorkloadRejection::Store(msg)) => {
            span.tag("error", msg.clone());
            Response::error(500, msg)
        }
    }
}

/// `/v1/store/statz`: one plain-text page of storage-engine state.
fn store_statz(state: &ServerState) -> String {
    let store = state.service.store();
    let s = store.stats();
    format!(
        "cactus-store statz\n\
         dir {}\n\
         digest {:016x}\n\
         segments {}\n\
         live_records {}\n\
         dead_records {}\n\
         live_bytes {}\n\
         dead_bytes {}\n\
         appends {}\n\
         gets {}\n\
         compactions {}\n\
         imported {}\n\
         truncations {}\n",
        store.dir().display(),
        store.manifest_digest(),
        s.segments,
        s.live_records,
        s.dead_records,
        s.live_bytes,
        s.dead_bytes,
        s.appends,
        s.gets,
        s.compactions,
        s.imported,
        s.truncations,
    )
}

/// `/v1/tracez[?trace=ID]`: the span ring as JSON lines, optionally
/// filtered to one trace id.
fn tracez(state: &ServerState, req: &Request) -> Response {
    let filter = match trace_filter(req.query.as_deref()) {
        Ok(f) => f,
        Err(msg) => return Response::error(400, msg),
    };
    Response::ok(state.tracer.render(filter), "application/x-ndjson")
}

fn trace_filter(query: Option<&str>) -> Result<Option<TraceId>, String> {
    let Some(query) = query else { return Ok(None) };
    for pair in query.split('&') {
        if let Some(value) = pair.strip_prefix("trace=") {
            return TraceId::parse(value)
                .map(Some)
                .ok_or_else(|| format!("invalid trace id {value:?}; expected 16 hex digits"));
        }
    }
    Ok(None)
}

/// The `/v1/<endpoint>/<device>/<scale>/<workload>` family.
fn route_triple(state: &ServerState, req: &Request, ctx: SpanCtx<'_>) -> Response {
    let segments: Vec<&str> = req.path.trim_matches('/').split('/').collect();
    let (endpoint, device, scale, workload) = match segments.as_slice() {
        ["v1", endpoint, device, scale, workload] => (*endpoint, *device, *scale, *workload),
        _ => {
            return Response::error(
                404,
                "unknown route; try /v1/healthz, /v1/metricsz, /v1/tracez, /v1/devices, \
                 /v1/workloads (GET catalog, POST a cactus-wir definition), /v1/similar, \
                 /v1/similar/stats, /v1/store/manifest, /v1/store/statz, \
                 /v1/store/record/<device>/<scale>/<workload>, or \
                 /v1/{profile|kernels|roofline|dominant}/<device>/<scale>/<workload>",
            )
        }
    };
    if !TRIPLE_ENDPOINTS.contains(&endpoint) {
        return Response::error(
            404,
            format!(
                "unknown endpoint {endpoint:?}; expected profile, kernels, roofline, or dominant"
            ),
        );
    }
    let triple = match state.service.resolve_triple(device, scale, workload) {
        Ok(t) => t,
        Err(msg) => return Response::error(404, msg),
    };
    if !state.service.models(&triple.device_slug) {
        return Response::error(
            404,
            format!(
                "device {:?} is in the catalog but not modeled by this backend; modeled \
                 devices: {} (see /v1/devices)",
                triple.device_slug,
                state.service.modeled().join(", "),
            ),
        );
    }

    // The dominance threshold is the one endpoint parameter; normalize it
    // into the cache key so distinct thresholds cache separately.
    let threshold = match threshold_from_query(req.query.as_deref()) {
        Ok(t) => t,
        Err(msg) => return Response::error(400, msg),
    };
    let key = if endpoint == "dominant" {
        format!("{endpoint}/{}?t={threshold:.3}", triple.key())
    } else {
        format!("{endpoint}/{}", triple.key())
    };

    let cache_hit = {
        let mut span = ctx.child("serve.cache");
        span.tag("key", key.clone());
        let hit = state.cache.get(&key);
        span.tag("hit", if hit.is_some() { "true" } else { "false" });
        hit
    };
    if let Some(hit) = cache_hit {
        return hit.to_response();
    }
    let mut span = ctx.child("serve.profile");
    let outcome = state.service.profile(&triple, Some(span.ctx()));
    let (profile, source) = match outcome {
        Ok(p) => p,
        Err(msg) => {
            span.tag("source", "error");
            return Response::error(500, format!("simulation failed: {msg}"));
        }
    };
    span.tag("source", format!("{source:?}").to_ascii_lowercase());
    drop(span);

    let (body, content_type) = match endpoint {
        "profile" => (profile_store::write_profile(&profile), TEXT),
        "kernels" => (csv::to_csv(triple.workload.name(), &profile), CSV),
        "roofline" => (roofline_csv(&triple, &profile), CSV),
        _ => (
            dominant_csv(triple.workload.name(), &profile, threshold),
            CSV,
        ),
    };
    let cached_value = state.cache.put(&key, CachedResponse { content_type, body });
    cached_value.to_response()
}

/// Run `render` unless `key` is already cached; cache the result.
fn cached(
    state: &ServerState,
    key: &str,
    content_type: &'static str,
    render: impl FnOnce() -> String,
) -> Response {
    if let Some(hit) = state.cache.get(key) {
        return hit.to_response();
    }
    state
        .cache
        .put(
            key,
            CachedResponse {
                content_type,
                body: render(),
            },
        )
        .to_response()
}

fn threshold_from_query(query: Option<&str>) -> Result<f64, String> {
    let Some(query) = query else { return Ok(0.7) };
    for pair in query.split('&') {
        if let Some(value) = pair.strip_prefix("threshold=") {
            return match value.parse::<f64>() {
                Ok(t) if (0.0..=1.0).contains(&t) => Ok(t),
                _ => Err(format!(
                    "threshold must be a number in [0, 1], got {value:?}"
                )),
            };
        }
    }
    Ok(0.7)
}

/// `/v1/healthz` (and the deprecated `/healthz` alias): liveness plus the
/// backend's modeled-device advertisement. Line one stays exactly `ok` so
/// pre-catalog probes that match the first line keep working; line two is
/// `devices <id> <id>...`, which the gateway parses to build its
/// capability map.
fn healthz_body(state: &ServerState) -> String {
    format!("ok\ndevices {}\n", state.service.modeled().join(" "))
}

/// Answer a deprecated pre-`/v1` alias: tick the legacy counter and stamp
/// the response with `Deprecation: true` plus a `Link` to the successor.
fn legacy(state: &ServerState, successor: &'static str, response: Response) -> Response {
    state.metrics.legacy_requests.inc();
    response
        .with_header("Deprecation", "true")
        .with_header("Link", format!("<{successor}>; rel=\"successor-version\""))
}

/// `/v1/devices`: the full device catalog with per-device roofline
/// ceilings, flagged with whether *this* backend models each entry.
fn devices_catalog(state: &ServerState) -> String {
    let mut out = String::from(
        "device,modeled,name,store_version,sm_count,peak_gips,peak_gtxn_per_s,\
         elbow_intensity,dram_bandwidth_gbps,l2_bytes\n",
    );
    for entry in cactus_gpu::CATALOG {
        let device = entry.device();
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
            entry.id,
            state.service.models(entry.id),
            csv_escape(&device.name),
            entry.store_version(),
            device.sm_count,
            device.peak_gips(),
            device.peak_gtxn_per_s(),
            device.elbow_intensity(),
            device.dram_bandwidth_gbps,
            device.l2.size_bytes,
        ));
    }
    out
}

/// The catalog: every servable workload plus the device and scale slugs.
fn workloads_catalog(state: &ServerState) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# devices: {}\n",
        state.service.modeled().join(" ")
    ));
    out.push_str(&format!("# scales: {}\n", SCALE_SLUGS.join(" ")));
    out.push_str("suite,workload\n");
    for w in cactus_core::suite() {
        out.push_str(&format!("Cactus,{}\n", w.abbr));
    }
    for b in cactus_suites::all() {
        out.push_str(&format!("{},{}\n", b.suite.name(), b.name));
    }
    for name in state.service.wir_names() {
        out.push_str(&format!("WIR,{}\n", csv_escape(&name)));
    }
    out
}

/// Per-kernel roofline coordinates and classifications on the requested
/// device's roofline.
fn roofline_csv(triple: &Triple, profile: &cactus_profiler::Profile) -> String {
    let roofline = Roofline::for_device(&triple.device);
    let total = profile.total_time_s();
    let mut out =
        String::from("kernel,instruction_intensity,gips,time_share,intensity_class,boundedness\n");
    for k in profile.kernels() {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{},{}\n",
            csv_escape(&k.name),
            k.metrics.instruction_intensity,
            k.metrics.gips,
            k.time_share(total),
            roofline
                .intensity_class(k.metrics.instruction_intensity)
                .label(),
            roofline.boundedness_class(k.metrics.gips).label(),
        ));
    }
    out
}

/// The dominant-kernel report: the smallest top-ranked set covering
/// `threshold` of GPU time.
fn dominant_csv(workload: &str, profile: &cactus_profiler::Profile, threshold: f64) -> String {
    let total = profile.total_time_s();
    let mut out =
        String::from("workload,kernel,invocations,total_time_s,time_share,cumulative_share\n");
    let mut cumulative = 0.0;
    for k in profile.dominant_kernels(threshold) {
        cumulative += k.time_share(total);
        out.push_str(&format!(
            "{},{},{},{:e},{:.6},{:.6}\n",
            csv_escape(workload),
            csv_escape(&k.name),
            k.invocations,
            k.total_time_s,
            k.time_share(total),
            cumulative,
        ));
    }
    out
}

pub(crate) fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}
