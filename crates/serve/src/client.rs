//! Typed client for the daemon, used by the integration tests, the
//! `loadgen` binary, and the gateway's backend connection pool.
//!
//! Two transports share one reply parser: [`Client`] opens a fresh
//! connection per request by default (`Connection: close`) and can be built
//! with `keep_alive(true)` to hold one reusable stream internally, while
//! [`Connection`] keeps one `TcpStream` alive across sequential requests,
//! honoring the server's `Connection: close` and transparently redialing
//! once when a pooled stream turns out to have been reaped by the server's
//! idle timeout. The profile endpoint's body is the bit-exact
//! `cactus_profiler::store` serialization, so [`Client::profile`] hands
//! back a fully typed [`Profile`] without a JSON layer.
//!
//! Replies on the `/v1` surface carry structured errors: a non-200 whose
//! body parses as the shared JSON envelope surfaces as
//! [`ClientError::Api`], so callers branch on `code`/`retryable` instead of
//! string-matching. `/v1/metricsz` pages go through the one strict
//! exposition parser in `cactus_obs` — a malformed or duplicated sample is
//! an error naming the line, never a silently dropped entry.

use cactus_obs::lock::{rank, RankedMutex};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cactus_obs::{expo, ApiError, Exposition, TraceId, TRACE_HEADER};
use cactus_profiler::store::read_profile;
use cactus_profiler::Profile;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Lowercased header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpReply {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header, parsed to seconds.
    #[must_use]
    pub fn retry_after_s(&self) -> Option<u32> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// The trace id echoed in the `x-cactus-trace` header, if any.
    #[must_use]
    pub fn trace_id(&self) -> Option<TraceId> {
        self.header(TRACE_HEADER).and_then(TraceId::parse)
    }

    /// Whether the server will close the connection after this reply.
    #[must_use]
    pub fn connection_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Convert a non-200 reply into the most structured error available:
    /// the parsed envelope when the body is one, the raw body otherwise.
    fn into_error(self) -> ClientError {
        match ApiError::from_json(&self.body) {
            Some(envelope) => ClientError::Api(envelope),
            None => ClientError::Status(self.status, self.body),
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with a structured `/v1` error envelope.
    Api(ApiError),
    /// The server answered non-200 without a parseable envelope.
    Status(u16, String),
    /// A 200 body that did not parse as the expected type.
    Parse(String),
}

impl ClientError {
    /// The HTTP status carried by this error, if it was a server answer.
    #[must_use]
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Api(e) => Some(e.code),
            ClientError::Status(code, _) => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Api(e) => write!(f, "{e}"),
            ClientError::Status(code, body) => {
                write!(f, "unexpected status {code}: {}", body.trim())
            }
            ClientError::Parse(msg) => write!(f, "unparseable body: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A device id validated against the [`cactus_gpu::catalog`]: holds the
/// canonical catalog spelling, so a `DeviceId` in a query can only name a
/// device the fleet could model. Raw strings stop at [`DeviceId::resolve`]
/// — typos surface there as a structured 404, not as a wasted round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(&'static str);

impl DeviceId {
    /// Resolve a raw slug (case-insensitive) to its canonical catalog id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with a 404 envelope naming the catalog when
    /// the slug is not a catalog id — the same shape the server would
    /// answer, so callers handle local and remote rejection identically.
    pub fn resolve(slug: &str) -> Result<Self, ClientError> {
        match cactus_gpu::by_id(slug) {
            Some(entry) => Ok(Self(entry.id)),
            None => Err(ClientError::Api(ApiError::new(
                404,
                format!(
                    "unknown device {slug:?}; the catalog has: {}",
                    cactus_gpu::catalog::device_ids().join(", ")
                ),
            ))),
        }
    }

    /// The canonical catalog spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::str::FromStr for DeviceId {
    type Err = ClientError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::resolve(s)
    }
}

/// One profile request on the `/v1` surface, by URL slugs.
#[derive(Debug, Clone, Copy)]
pub struct ProfileQuery<'a> {
    /// Catalog-validated device id, e.g. `rtx-3080`.
    pub device: DeviceId,
    /// Scale slug: `tiny`, `small`, or `profile`.
    pub scale: &'a str,
    /// Workload name, e.g. `GMS`.
    pub workload: &'a str,
}

/// One reference similarity query on `/v1/similar`, by URL slugs.
#[derive(Debug, Clone, Copy)]
pub struct SimilarQuery<'a> {
    /// Catalog-validated device id, e.g. `rtx-3080`.
    pub device: DeviceId,
    /// Scale slug: `tiny`, `small`, or `profile`.
    pub scale: &'a str,
    /// Workload name, e.g. `GMS`.
    pub workload: &'a str,
    /// Kernel to search for (`None` = the profile's dominant kernel).
    pub kernel: Option<&'a str>,
    /// Neighbors to return (`None` = the server default).
    pub k: Option<usize>,
}

/// One `/v1/devices` catalog row: a device's identity, roofline ceilings,
/// and whether the answering backend models it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEntry {
    /// Canonical catalog id.
    pub id: DeviceId,
    /// Whether the answering backend models this device.
    pub modeled: bool,
    /// Marketing name (`RTX 3080`).
    pub name: String,
    /// Store version tag (`<model-version>.<device-rev>`).
    pub store_version: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Peak instruction throughput ceiling (GIPS).
    pub peak_gips: f64,
    /// Peak DRAM transaction throughput ceiling (Gtxn/s).
    pub peak_gtxn_per_s: f64,
    /// Roofline elbow (instructions per transaction).
    pub elbow_intensity: f64,
    /// DRAM bandwidth (GB/s).
    pub dram_bandwidth_gbps: f64,
    /// Last-level cache capacity (bytes).
    pub l2_bytes: u64,
}

/// One `/v1/compare` kernel row: one kernel's roofline placement on one
/// device. Columns 2–7 are byte-identical to that device's
/// `/v1/roofline` row for the same kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Device this row was simulated on.
    pub device: DeviceId,
    /// Kernel name.
    pub kernel: String,
    /// Instructions per DRAM transaction.
    pub instruction_intensity: f64,
    /// Achieved instruction throughput (GIPS).
    pub gips: f64,
    /// Share of the workload's total GPU time.
    pub time_share: f64,
    /// Roofline elbow side on this device (`memory` / `compute`).
    pub intensity_class: String,
    /// Ceiling classification on this device (`bandwidth` / `latency`).
    pub boundedness: String,
    /// True when this kernel's boundedness differs across the compared
    /// devices (the bottleneck shifts with the hardware).
    pub bottleneck_shift: bool,
}

/// Parse the `/v1/devices` CSV body.
fn parse_devices(body: &str) -> Result<Vec<DeviceEntry>, ClientError> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with("device,") {
            continue;
        }
        let bad = || ClientError::Parse(format!("bad devices row {line:?}"));
        let cols: Vec<&str> = line.split(',').collect();
        let [id, modeled, name, version, sm_count, gips, gtxn, elbow, dram, l2] = cols.as_slice()
        else {
            return Err(bad());
        };
        out.push(DeviceEntry {
            id: DeviceId::resolve(id)?,
            modeled: modeled.parse().map_err(|_| bad())?,
            name: (*name).to_owned(),
            store_version: (*version).to_owned(),
            sm_count: sm_count.parse().map_err(|_| bad())?,
            peak_gips: gips.parse().map_err(|_| bad())?,
            peak_gtxn_per_s: gtxn.parse().map_err(|_| bad())?,
            elbow_intensity: elbow.parse().map_err(|_| bad())?,
            dram_bandwidth_gbps: dram.parse().map_err(|_| bad())?,
            l2_bytes: l2.parse().map_err(|_| bad())?,
        });
    }
    Ok(out)
}

/// Parse the `/v1/compare?format=csv` body (`#` comments, header, then
/// one row per `(device, kernel)` pair).
fn parse_compare(body: &str) -> Result<Vec<CompareRow>, ClientError> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with("device,") {
            continue;
        }
        let bad = || ClientError::Parse(format!("bad compare row {line:?}"));
        let cols: Vec<&str> = line.split(',').collect();
        let [device, kernel, intensity, gips, share, class, bound, shift] = cols.as_slice() else {
            return Err(bad());
        };
        out.push(CompareRow {
            device: DeviceId::resolve(device)?,
            kernel: (*kernel).to_owned(),
            instruction_intensity: intensity.parse().map_err(|_| bad())?,
            gips: gips.parse().map_err(|_| bad())?,
            time_share: share.parse().map_err(|_| bad())?,
            intensity_class: (*class).to_owned(),
            boundedness: (*bound).to_owned(),
            bottleneck_shift: shift.parse().map_err(|_| bad())?,
        });
    }
    Ok(out)
}

/// Parse the `devices <id> <id>...` advertisement line from a
/// `/v1/healthz` body; `None` when the body carries no such line (an old
/// server, or a gateway's own health page).
#[must_use]
pub fn parse_health_devices(body: &str) -> Option<Vec<String>> {
    body.lines()
        .find_map(|line| line.strip_prefix("devices "))
        .map(|ids| ids.split_whitespace().map(str::to_owned).collect())
}

/// One row of a `/v1/similar` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarHit {
    /// 1-based rank (ascending by distance).
    pub rank: usize,
    /// Stored profile id (`device/scale/workload/kernel`).
    pub id: String,
    /// Euclidean distance in the encoded metric space.
    pub distance: f64,
}

/// Parse the `/v1/similar` CSV body (`#` comments, header, then
/// `rank,id,distance` rows).
fn parse_similar(body: &str) -> Result<Vec<SimilarHit>, ClientError> {
    let mut hits = Vec::new();
    for line in body.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with("rank,") {
            continue;
        }
        let bad = || ClientError::Parse(format!("bad similar row {line:?}"));
        let (rank, rest) = line.split_once(',').ok_or_else(bad)?;
        let (id, distance) = rest.rsplit_once(',').ok_or_else(bad)?;
        let id = if id.starts_with('"') && id.ends_with('"') && id.len() >= 2 {
            id[1..id.len() - 1].replace("\"\"", "\"")
        } else {
            id.to_owned()
        };
        hits.push(SimilarHit {
            rank: rank.parse().map_err(|_| bad())?,
            id,
            distance: distance.parse().map_err(|_| bad())?,
        });
    }
    Ok(hits)
}

/// Configures a [`Client`] before construction.
#[derive(Debug, Clone, Copy)]
pub struct ClientBuilder {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
}

impl ClientBuilder {
    /// Override the connect/read/write timeout (default 30 s).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Hold one internal keep-alive stream across requests instead of
    /// dialing per request (default off).
    #[must_use]
    pub fn keep_alive(mut self, keep_alive: bool) -> Self {
        self.keep_alive = keep_alive;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Client {
        Client {
            addr: self.addr,
            timeout: self.timeout,
            keep_alive: self.keep_alive,
            conn: RankedMutex::new(rank::CLIENT_CONN, "serve.client_conn", None),
        }
    }
}

/// A client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
    /// The internal stream when built with `keep_alive(true)`; dialed
    /// lazily, serialized behind the lock.
    conn: RankedMutex<Option<Connection>>,
}

impl Clone for Client {
    fn clone(&self) -> Self {
        // The clone shares configuration, not the live stream.
        Self {
            addr: self.addr,
            timeout: self.timeout,
            keep_alive: self.keep_alive,
            conn: RankedMutex::new(rank::CLIENT_CONN, "serve.client_conn", None),
        }
    }
}

impl Client {
    /// A client for `addr` with a 30 s I/O timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self::builder(addr).build()
    }

    /// Start configuring a client for `addr`.
    #[must_use]
    pub fn builder(addr: SocketAddr) -> ClientBuilder {
        ClientBuilder {
            addr,
            timeout: Duration::from_secs(30),
            keep_alive: false,
        }
    }

    /// Override the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// A keep-alive connection to the same address and timeout.
    #[must_use]
    pub fn connection(&self) -> Connection {
        Connection::new(self.addr, self.timeout)
    }

    /// Issue one `GET path` and parse the reply (whatever its status).
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable response heads.
    pub fn get(&self, path: &str) -> Result<HttpReply, ClientError> {
        self.get_traced(path, None)
    }

    /// Like [`Client::get`], propagating `trace` via the `x-cactus-trace`
    /// header so the server joins this request's span tree instead of
    /// minting a fresh id.
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable response heads.
    pub fn get_traced(&self, path: &str, trace: Option<TraceId>) -> Result<HttpReply, ClientError> {
        if self.keep_alive {
            let mut guard = self.conn.lock();
            return guard
                .get_or_insert_with(|| Connection::new(self.addr, self.timeout))
                .get_traced(path, trace);
        }
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        // One write_all per request: fragment-per-write on a raw socket
        // triggers Nagle + delayed-ACK stalls (~40 ms) on the peer.
        let wire = request_wire("GET", path, self.addr, false, trace, "");
        stream.write_all(wire.as_bytes())?;
        let mut reader = BufReader::new(stream);
        read_reply(&mut reader)
    }

    /// Issue one `POST path` with a text body and parse the reply
    /// (whatever its status). Used to push store records between nodes.
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable response heads.
    pub fn post_traced(
        &self,
        path: &str,
        body: &str,
        trace: Option<TraceId>,
    ) -> Result<HttpReply, ClientError> {
        if self.keep_alive {
            let mut guard = self.conn.lock();
            return guard
                .get_or_insert_with(|| Connection::new(self.addr, self.timeout))
                .post_traced(path, body, trace);
        }
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let wire = request_wire("POST", path, self.addr, false, trace, body);
        stream.write_all(wire.as_bytes())?;
        let mut reader = BufReader::new(stream);
        read_reply(&mut reader)
    }

    /// `GET /v1/healthz`, true on `200 ok`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; a non-200 yields `Ok(false)`.
    pub fn healthz(&self) -> Result<bool, ClientError> {
        Ok(self.get("/v1/healthz")?.status == 200)
    }

    /// `GET /v1/devices` as typed catalog rows, each flagged with whether
    /// the answering backend models it.
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (as [`ClientError::Api`] when the
    /// server sent the envelope), and unparseable bodies.
    pub fn devices(&self) -> Result<Vec<DeviceEntry>, ClientError> {
        let reply = self.get("/v1/devices")?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        parse_devices(&reply.body)
    }

    /// `GET /v1/compare/<scale>/<workload>?devices=...&format=csv` as
    /// typed per-`(device, kernel)` roofline rows. Served by the gateway,
    /// which fans the triple out to one owning backend per device.
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (as [`ClientError::Api`] when the
    /// server sent the envelope), and unparseable bodies.
    pub fn compare(
        &self,
        scale: &str,
        workload: &str,
        devices: &[DeviceId],
    ) -> Result<Vec<CompareRow>, ClientError> {
        let ids: Vec<&str> = devices.iter().map(|d| d.as_str()).collect();
        let reply = self.get(&format!(
            "/v1/compare/{scale}/{workload}?devices={}&format=csv",
            ids.join(",")
        ))?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        parse_compare(&reply.body)
    }

    /// `GET /v1/metricsz` strictly parsed through the shared exposition
    /// parser.
    ///
    /// # Errors
    ///
    /// Transport errors, a non-200 status, or a malformed page —
    /// duplicate or unparsable samples are [`ClientError::Parse`] (with
    /// the offending line), never silently dropped.
    pub fn metrics(&self) -> Result<Exposition, ClientError> {
        let reply = self.get("/v1/metricsz")?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        expo::parse(&reply.body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// Fetch one profile as a typed [`Profile`].
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (as [`ClientError::Api`] when the
    /// server sent the envelope), and unparseable bodies.
    pub fn profile(&self, query: ProfileQuery<'_>) -> Result<Profile, ClientError> {
        let ProfileQuery {
            device,
            scale,
            workload,
        } = query;
        let reply = self.get(&format!("/v1/profile/{device}/{scale}/{workload}"))?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        read_profile(&reply.body).map_err(|e| ClientError::Parse(e.to_string()))
    }

    /// Reference similarity query: ingest-and-search one profile's kernels
    /// via `/v1/similar?device=&scale=&workload=`.
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (as [`ClientError::Api`] when the
    /// server sent the envelope), and unparseable bodies.
    pub fn similar(&self, query: SimilarQuery<'_>) -> Result<Vec<SimilarHit>, ClientError> {
        let SimilarQuery {
            device,
            scale,
            workload,
            kernel,
            k,
        } = query;
        let mut path = format!("/v1/similar?device={device}&scale={scale}&workload={workload}");
        if let Some(kernel) = kernel {
            path.push_str(&format!("&kernel={kernel}"));
        }
        if let Some(k) = k {
            path.push_str(&format!("&k={k}"));
        }
        let reply = self.get(&path)?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        parse_similar(&reply.body)
    }

    /// Inline similarity query: search for an explicit `MetricId::ALL`-order
    /// metric vector via `/v1/similar?vector=`.
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (including the `400` an unseeded
    /// index answers), and unparseable bodies.
    pub fn similar_vector(
        &self,
        vector: &[f64],
        k: Option<usize>,
    ) -> Result<Vec<SimilarHit>, ClientError> {
        let joined = vector
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut path = format!("/v1/similar?vector={joined}");
        if let Some(k) = k {
            path.push_str(&format!("&k={k}"));
        }
        let reply = self.get(&path)?;
        if reply.status != 200 {
            return Err(reply.into_error());
        }
        parse_similar(&reply.body)
    }
}

/// Serialize one full request — head plus optional body — as a single
/// string (single `write_all`, see call sites). An empty `body` emits no
/// `content-length` header, matching the server's GET-only fast path.
fn request_wire(
    method: &str,
    path: &str,
    addr: SocketAddr,
    keep_alive: bool,
    trace: Option<TraceId>,
    body: &str,
) -> String {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut wire =
        format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: {connection}\r\n");
    if let Some(trace) = trace {
        wire.push_str(&format!("{TRACE_HEADER}: {trace}\r\n"));
    }
    if !body.is_empty() {
        wire.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    wire.push_str("\r\n");
    wire.push_str(body);
    wire
}

/// A keep-alive connection: one `TcpStream` reused across sequential
/// requests.
///
/// The stream dials lazily on the first request. After each reply the
/// connection stays open unless the server answered `Connection: close`, in
/// which case the next request redials. A request that fails on a *reused*
/// stream (the server may have reaped it between requests) is retried once
/// on a fresh dial; failures on fresh streams surface immediately, so a
/// dead server is never masked.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
    dials: u64,
    reuses: u64,
}

impl Connection {
    /// A lazily-dialed keep-alive connection to `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self {
            addr,
            timeout,
            stream: None,
            dials: 0,
            reuses: 0,
        }
    }

    /// The remote address this connection dials.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live stream is currently held (i.e. the next request will
    /// reuse it instead of dialing).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// TCP connections dialed over this connection's lifetime.
    #[must_use]
    pub fn dials(&self) -> u64 {
        self.dials
    }

    /// Requests that reused an already-open stream.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Issue one `GET path`, reusing the open stream when possible.
    ///
    /// # Errors
    ///
    /// Socket errors (after the one stale-stream retry) and unparseable
    /// response heads.
    pub fn get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        self.get_traced(path, None)
    }

    /// Like [`Connection::get`], propagating `trace` via the
    /// `x-cactus-trace` header.
    ///
    /// # Errors
    ///
    /// Socket errors (after the one stale-stream retry) and unparseable
    /// response heads.
    pub fn get_traced(
        &mut self,
        path: &str,
        trace: Option<TraceId>,
    ) -> Result<HttpReply, ClientError> {
        self.request("GET", path, "", trace)
    }

    /// Issue one `POST path` with a text body, reusing the open stream
    /// when possible. Used by the gateway to push store records to
    /// backends (replication and anti-entropy sync).
    ///
    /// # Errors
    ///
    /// Socket errors (after the one stale-stream retry) and unparseable
    /// response heads.
    pub fn post_traced(
        &mut self,
        path: &str,
        body: &str,
        trace: Option<TraceId>,
    ) -> Result<HttpReply, ClientError> {
        self.request("POST", path, body, trace)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        trace: Option<TraceId>,
    ) -> Result<HttpReply, ClientError> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body, trace) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                // A reused stream may have been closed server-side between
                // requests; retry exactly once on a fresh dial.
                self.stream = None;
                if reused {
                    self.try_request(method, path, body, trace)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        trace: Option<TraceId>,
    ) -> Result<HttpReply, ClientError> {
        let reused = self.stream.is_some();
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            self.stream = Some(BufReader::new(stream));
            self.dials += 1;
        }
        // lint:allow(no_panic, ensure_connected() filled the stream on the line above)
        let reader = self.stream.as_mut().expect("stream just ensured");
        // Single write_all, same Nagle/delayed-ACK reasoning as Client::get.
        let wire = request_wire(method, path, self.addr, true, trace, body);
        reader.get_mut().write_all(wire.as_bytes())?;
        reader.get_mut().flush()?;
        let reply = read_reply(reader);
        match &reply {
            Ok(r) if !r.connection_close() => {
                if reused {
                    self.reuses += 1;
                }
            }
            _ => self.stream = None,
        }
        reply
    }
}

/// Read one full reply (status line, headers, body) from a buffered stream,
/// leaving the reader positioned after the body so the stream can carry the
/// next keep-alive exchange. The body length comes from `Content-Length`;
/// without one the body is everything until EOF (close-delimited).
fn read_reply<R: BufRead>(reader: &mut R) -> Result<HttpReply, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        )));
    }
    let status_line = line.trim_end_matches(['\r', '\n']).to_owned();
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Parse(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Parse("reply head truncated".to_owned()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((n, v)) = trimmed.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| ClientError::Parse("non-UTF-8 body".to_owned()))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    #[test]
    fn parses_reply_head_and_body() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: text/plain\r\nretry-after: 2\r\n\r\nbusy\n";
        let reply = read_reply(&mut raw.as_bytes()).expect("parse");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("Content-Type"), Some("text/plain"));
        assert_eq!(reply.retry_after_s(), Some(2));
        assert_eq!(reply.body, "busy\n");
        assert!(!reply.connection_close());
    }

    #[test]
    fn content_length_bounds_the_body_for_keep_alive() {
        let raw = "HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\nabcHTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nxy";
        let mut reader = raw.as_bytes();
        let first = read_reply(&mut reader).expect("first");
        assert_eq!(first.body, "abc");
        assert!(!first.connection_close());
        let second = read_reply(&mut reader).expect("second");
        assert_eq!(second.body, "xy");
        assert!(second.connection_close());
    }

    #[test]
    fn rejects_torn_replies() {
        assert!(read_reply(&mut "HTTP/1.1 200 OK\r\n".as_bytes()).is_err());
        assert!(read_reply(&mut "garbage\r\n\r\nbody".as_bytes()).is_err());
        assert!(read_reply(&mut "".as_bytes()).is_err());
    }

    #[test]
    fn similar_csv_parses_rows_and_skips_comments() {
        let body = "# query: rtx-3080/tiny/GMS/force\n\
                    # index: 12 vectors in 3 cells, 2 clusters\n\
                    # search: k=2 probed=5 pruned=7\n\
                    rank,id,distance\n\
                    1,rtx-3080/tiny/GMS/force,0.000000\n\
                    2,\"rtx-3080/tiny/GMS/odd,name\",1.250000\n";
        let hits = parse_similar(body).expect("parse");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].rank, 1);
        assert_eq!(hits[0].id, "rtx-3080/tiny/GMS/force");
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].id, "rtx-3080/tiny/GMS/odd,name");
        assert!(parse_similar("rank,id,distance\nnot-a-row\n").is_err());
    }

    #[test]
    fn envelope_bodies_become_api_errors() {
        let reply = HttpReply {
            status: 503,
            headers: vec![],
            body: ApiError::new(503, "saturated").to_json(),
        };
        match reply.into_error() {
            ClientError::Api(e) => {
                assert_eq!(e.code, 503);
                assert!(e.retryable);
            }
            other => panic!("expected Api error, got {other:?}"),
        }
        let raw = HttpReply {
            status: 500,
            headers: vec![],
            body: "plain text\n".to_owned(),
        };
        assert!(matches!(raw.into_error(), ClientError::Status(500, _)));
    }

    /// Serve one canned response on an ephemeral port, return its address.
    fn one_shot_server(body: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 2048];
            let _ = stream.read(&mut buf);
            let wire = format!(
                "HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                body.len(),
                body
            );
            let _ = stream.write_all(wire.as_bytes());
        });
        addr
    }

    /// Regression: the old `metrics()` folded pages into a `HashMap`,
    /// silently swallowing duplicate and unparsable lines. The strict
    /// parser must surface both as hard errors.
    #[test]
    fn metrics_rejects_duplicate_samples() {
        let addr =
            one_shot_server("cactus_serve_requests_total 1\ncactus_serve_requests_total 2\n");
        let client = Client::builder(addr)
            .timeout(Duration::from_secs(5))
            .build();
        let err = client.metrics().expect_err("duplicates must not parse");
        match err {
            ClientError::Parse(msg) => {
                assert!(msg.contains("duplicate"), "{msg}");
                assert!(msg.contains("line 2"), "{msg}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn metrics_rejects_unparsable_values() {
        let addr = one_shot_server("cactus_serve_requests_total one\n");
        let client = Client::new(addr).with_timeout(Duration::from_secs(5));
        assert!(matches!(
            client.metrics().expect_err("garbage must not parse"),
            ClientError::Parse(_)
        ));
    }
}
