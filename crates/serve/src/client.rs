//! Typed client for the daemon, used by the integration tests, the
//! `loadgen` binary, and the gateway's backend connection pool.
//!
//! Two transports share one reply parser: [`Client`] opens a fresh
//! connection per request (`Connection: close`), while [`Connection`] keeps
//! one `TcpStream` alive across sequential requests, honoring the server's
//! `Connection: close` and transparently redialing once when a pooled
//! stream turns out to have been reaped by the server's idle timeout. The
//! profile endpoint's body is the bit-exact `cactus_profiler::store`
//! serialization, so [`Client::profile`] hands back a fully typed
//! [`Profile`] without a JSON layer.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cactus_profiler::store::read_profile;
use cactus_profiler::Profile;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Lowercased header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpReply {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header, parsed to seconds.
    #[must_use]
    pub fn retry_after_s(&self) -> Option<u32> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// Whether the server will close the connection after this reply.
    #[must_use]
    pub fn connection_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not with a 200.
    Status(u16, String),
    /// A 200 body that did not parse as the expected type.
    Parse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Status(code, body) => {
                write!(f, "unexpected status {code}: {}", body.trim())
            }
            ClientError::Parse(msg) => write!(f, "unparseable body: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` with a 30 s I/O timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// A keep-alive connection to the same address and timeout.
    #[must_use]
    pub fn connection(&self) -> Connection {
        Connection::new(self.addr, self.timeout)
    }

    /// Issue one `GET path` and parse the reply (whatever its status).
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable response heads.
    pub fn get(&self, path: &str) -> Result<HttpReply, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        // One write_all per request head: fragment-per-write on a raw
        // socket triggers Nagle + delayed-ACK stalls (~40 ms) on the peer.
        let head = format!(
            "GET {path} HTTP/1.1\r\nhost: {}\r\nconnection: close\r\n\r\n",
            self.addr
        );
        stream.write_all(head.as_bytes())?;
        let mut reader = BufReader::new(stream);
        read_reply(&mut reader)
    }

    /// `GET /healthz`, true on `200 ok`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; a non-200 yields `Ok(false)`.
    pub fn healthz(&self) -> Result<bool, ClientError> {
        Ok(self.get("/healthz")?.status == 200)
    }

    /// `GET /metricsz` parsed into a name → value map.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-200 status.
    pub fn metrics(&self) -> Result<HashMap<String, f64>, ClientError> {
        let reply = self.get("/metricsz")?;
        if reply.status != 200 {
            return Err(ClientError::Status(reply.status, reply.body));
        }
        Ok(parse_metrics(&reply.body))
    }

    /// Fetch one profile as a typed [`Profile`].
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (with the server's message), and
    /// unparseable bodies.
    pub fn profile(
        &self,
        device: &str,
        scale: &str,
        workload: &str,
    ) -> Result<Profile, ClientError> {
        let reply = self.get(&format!("/v1/profile/{device}/{scale}/{workload}"))?;
        if reply.status != 200 {
            return Err(ClientError::Status(reply.status, reply.body));
        }
        read_profile(&reply.body).map_err(|e| ClientError::Parse(e.to_string()))
    }
}

/// Parse a flat `name value` metrics body (`#` comment lines skipped).
#[must_use]
pub fn parse_metrics(body: &str) -> HashMap<String, f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            Some((name.to_owned(), value.parse().ok()?))
        })
        .collect()
}

/// A keep-alive connection: one `TcpStream` reused across sequential
/// requests.
///
/// The stream dials lazily on the first request. After each reply the
/// connection stays open unless the server answered `Connection: close`, in
/// which case the next request redials. A request that fails on a *reused*
/// stream (the server may have reaped it between requests) is retried once
/// on a fresh dial; failures on fresh streams surface immediately, so a
/// dead server is never masked.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
    dials: u64,
    reuses: u64,
}

impl Connection {
    /// A lazily-dialed keep-alive connection to `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self {
            addr,
            timeout,
            stream: None,
            dials: 0,
            reuses: 0,
        }
    }

    /// The remote address this connection dials.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live stream is currently held (i.e. the next request will
    /// reuse it instead of dialing).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// TCP connections dialed over this connection's lifetime.
    #[must_use]
    pub fn dials(&self) -> u64 {
        self.dials
    }

    /// Requests that reused an already-open stream.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Issue one `GET path`, reusing the open stream when possible.
    ///
    /// # Errors
    ///
    /// Socket errors (after the one stale-stream retry) and unparseable
    /// response heads.
    pub fn get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        let reused = self.stream.is_some();
        match self.try_get(path) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                // A reused stream may have been closed server-side between
                // requests; retry exactly once on a fresh dial.
                self.stream = None;
                if reused {
                    self.try_get(path)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        let reused = self.stream.is_some();
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            self.stream = Some(BufReader::new(stream));
            self.dials += 1;
        }
        let reader = self.stream.as_mut().expect("stream just ensured");
        // Single write_all, same Nagle/delayed-ACK reasoning as Client::get.
        let head = format!(
            "GET {path} HTTP/1.1\r\nhost: {}\r\nconnection: keep-alive\r\n\r\n",
            self.addr
        );
        reader.get_mut().write_all(head.as_bytes())?;
        reader.get_mut().flush()?;
        let reply = read_reply(reader);
        match &reply {
            Ok(r) if !r.connection_close() => {
                if reused {
                    self.reuses += 1;
                }
            }
            _ => self.stream = None,
        }
        reply
    }
}

/// Read one full reply (status line, headers, body) from a buffered stream,
/// leaving the reader positioned after the body so the stream can carry the
/// next keep-alive exchange. The body length comes from `Content-Length`;
/// without one the body is everything until EOF (close-delimited).
fn read_reply<R: BufRead>(reader: &mut R) -> Result<HttpReply, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        )));
    }
    let status_line = line.trim_end_matches(['\r', '\n']).to_owned();
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Parse(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Parse("reply head truncated".to_owned()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((n, v)) = trimmed.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| ClientError::Parse("non-UTF-8 body".to_owned()))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reply_head_and_body() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: text/plain\r\nretry-after: 2\r\n\r\nbusy\n";
        let reply = read_reply(&mut raw.as_bytes()).expect("parse");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("Content-Type"), Some("text/plain"));
        assert_eq!(reply.retry_after_s(), Some(2));
        assert_eq!(reply.body, "busy\n");
        assert!(!reply.connection_close());
    }

    #[test]
    fn content_length_bounds_the_body_for_keep_alive() {
        let raw = "HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\nabcHTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nxy";
        let mut reader = raw.as_bytes();
        let first = read_reply(&mut reader).expect("first");
        assert_eq!(first.body, "abc");
        assert!(!first.connection_close());
        let second = read_reply(&mut reader).expect("second");
        assert_eq!(second.body, "xy");
        assert!(second.connection_close());
    }

    #[test]
    fn rejects_torn_replies() {
        assert!(read_reply(&mut "HTTP/1.1 200 OK\r\n".as_bytes()).is_err());
        assert!(read_reply(&mut "garbage\r\n\r\nbody".as_bytes()).is_err());
        assert!(read_reply(&mut "".as_bytes()).is_err());
    }

    #[test]
    fn metrics_parse_skips_comments() {
        let parsed = parse_metrics("# header\na_total 3\nweird line\nb_rate 0.5\n");
        assert_eq!(parsed.get("a_total"), Some(&3.0));
        assert_eq!(parsed.get("b_rate"), Some(&0.5));
    }
}
