//! Typed client for the daemon, used by the integration tests and the
//! `loadgen` binary.
//!
//! One request per connection (`Connection: close`), mirroring the server.
//! The profile endpoint's body is the bit-exact `cactus_profiler::store`
//! serialization, so [`Client::profile`] hands back a fully typed
//! [`Profile`] without a JSON layer.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cactus_profiler::store::read_profile;
use cactus_profiler::Profile;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Lowercased header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpReply {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header, parsed to seconds.
    #[must_use]
    pub fn retry_after_s(&self) -> Option<u32> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not with a 200.
    Status(u16, String),
    /// A 200 body that did not parse as the expected type.
    Parse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Status(code, body) => {
                write!(f, "unexpected status {code}: {}", body.trim())
            }
            ClientError::Parse(msg) => write!(f, "unparseable body: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` with a 30 s I/O timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Issue one `GET path` and parse the reply (whatever its status).
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable response heads.
    pub fn get(&self, path: &str) -> Result<HttpReply, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nhost: {}\r\nconnection: close\r\n\r\n",
            self.addr
        )?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        parse_reply(&raw)
    }

    /// `GET /healthz`, true on `200 ok`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; a non-200 yields `Ok(false)`.
    pub fn healthz(&self) -> Result<bool, ClientError> {
        Ok(self.get("/healthz")?.status == 200)
    }

    /// `GET /metricsz` parsed into a name → value map.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-200 status.
    pub fn metrics(&self) -> Result<HashMap<String, f64>, ClientError> {
        let reply = self.get("/metricsz")?;
        if reply.status != 200 {
            return Err(ClientError::Status(reply.status, reply.body));
        }
        Ok(reply
            .body
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let (name, value) = l.rsplit_once(' ')?;
                Some((name.to_owned(), value.parse().ok()?))
            })
            .collect())
    }

    /// Fetch one profile as a typed [`Profile`].
    ///
    /// # Errors
    ///
    /// Transport errors, non-200 statuses (with the server's message), and
    /// unparseable bodies.
    pub fn profile(
        &self,
        device: &str,
        scale: &str,
        workload: &str,
    ) -> Result<Profile, ClientError> {
        let reply = self.get(&format!("/v1/profile/{device}/{scale}/{workload}"))?;
        if reply.status != 200 {
            return Err(ClientError::Status(reply.status, reply.body));
        }
        read_profile(&reply.body).map_err(|e| ClientError::Parse(e.to_string()))
    }
}

/// Parse a full HTTP/1.1 reply (head + body; the connection was closed by
/// the server, so the body is everything after the blank line).
fn parse_reply(raw: &str) -> Result<HttpReply, ClientError> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Parse("no header/body separator".to_owned()))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Parse("empty reply".to_owned()))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Parse(format!("bad status line {status_line:?}")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: body.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reply_head_and_body() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: text/plain\r\nretry-after: 2\r\n\r\nbusy\n";
        let reply = parse_reply(raw).expect("parse");
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("Content-Type"), Some("text/plain"));
        assert_eq!(reply.retry_after_s(), Some(2));
        assert_eq!(reply.body, "busy\n");
    }

    #[test]
    fn rejects_torn_replies() {
        assert!(parse_reply("HTTP/1.1 200 OK\r\n").is_err());
        assert!(parse_reply("garbage\r\n\r\nbody").is_err());
    }
}
