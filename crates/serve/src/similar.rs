//! `/v1/similar`: online kernel-similarity queries over the serving tier.
//!
//! The service keeps one [`cactus_simindex`] stack behind a single
//! [`RankedMutex`] (rank [`rank::SIMINDEX`]): a frozen FAMD [`Encoder`],
//! the pruned-exact [`SimIndex`], and the incremental [`ClusterSet`]. The
//! encoder is **lazily fitted** on the first ingested profile's kernels —
//! until then the index is empty and inline-vector queries are answered
//! `400` with a hint to seed it — and stays frozen afterwards so every
//! later profile and query lands in the same metric space the index
//! stores (the model carries `cactus_gpu::MODEL_VERSION` through its text
//! form).
//!
//! Two query forms:
//!
//! * `?vector=v1,...,v15&k=N` — an inline [`MetricId::ALL`]-order metric
//!   vector, encoded and searched without touching the profile service;
//! * `?device=&scale=&workload=[&kernel=][&k=N]` — a reference query:
//!   the triple resolves through [`ProfileService`] (store → coalesced
//!   simulation) *before* the simindex lock is taken (lock order: the
//!   single-flight and pool ranks all sit below `SIMINDEX`), the
//!   profile's kernels are idempotently ingested under ids
//!   `device/scale/workload/kernel`, and the named (default: dominant)
//!   kernel is searched.
//!
//! Span tree: `serve.similar` roots the request's similarity work, with
//! `simindex.encode` around ingest/encode, `simindex.search` around the
//! pruned k-NN probe, and a `simindex.recluster` marker when ingest
//! tripped bounded local re-clusters. `/v1/similar/stats` renders the
//! index counters plus the greedy proxy subset as plain text.

use std::fmt::Write as _;

use cactus_analysis::roofline::Roofline;
use cactus_gpu::metrics::KernelMetrics;
use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::SpanCtx;
use cactus_profiler::Profile;
use cactus_simindex::{proxy, ClusterConfig, ClusterSet, Encoder, IndexStats, Neighbor, SimIndex};

use crate::http::{Request, Response};
use crate::server::ServerState;
use crate::service::Triple;

/// Content type of similarity CSV bodies.
const CSV: &str = "text/csv; charset=utf-8";
/// Content type of the stats body.
const TEXT: &str = "text/plain; charset=utf-8";

/// Neighbors returned when `k` is not given.
const K_DEFAULT: usize = 5;
/// Upper bound on `k` (the index's `Best` set is tuned for small k).
const K_MAX: usize = 50;

/// Coverage budget for the stats page's proxy subset: one principal
/// standard deviation, the same scale the cluster spawn radius uses.
const PROXY_BUDGET: f64 = 1.0;

/// The per-server similarity service: everything mutable sits behind one
/// ranked lock so worker threads ingest and query without tearing the
/// index/cluster pair apart.
pub struct SimService {
    state: RankedMutex<SimState>,
}

/// `None` until the first profile is ingested and the encoder is fitted.
struct SimState {
    fitted: Option<Fitted>,
}

struct Fitted {
    encoder: Encoder,
    /// Device slug whose roofline labelled the fit corpus (frozen with
    /// the model).
    device_slug: String,
    index: SimIndex,
    clusters: ClusterSet,
}

/// Scrape-time counters mirrored into registry gauges (all zero until
/// the encoder is fitted).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimSnapshot {
    /// Index counters (size, cells, probes, ...).
    pub index: IndexStats,
    /// Online clusters.
    pub clusters: usize,
    /// Bounded local re-cluster passes.
    pub reclusters: u64,
    /// Truncated dimensionality of the encoded space (0 = unfitted).
    pub dims: usize,
}

/// One answered similarity query.
struct SimilarReport {
    query: String,
    k: usize,
    neighbors: Vec<Neighbor>,
    probed: usize,
    pruned: usize,
    size: usize,
    cells: usize,
    clusters: usize,
}

/// Why a similarity query failed, mapped onto HTTP statuses.
enum SimError {
    /// Nothing ingested yet; inline vectors have no space to land in.
    Empty,
    /// Malformed inline vector.
    BadVector(String),
    /// The reference profile has no kernel by that name.
    UnknownKernel { key: String, kernel: String },
    /// Invariant breakage (dimension drift between encoder and index).
    Internal(String),
}

impl SimError {
    fn into_response(self) -> Response {
        match self {
            SimError::Empty => Response::error(
                400,
                "similarity index is empty; seed it with a reference query \
                 (GET /v1/similar?device=<d>&scale=<s>&workload=<w>) first",
            ),
            SimError::BadVector(msg) => Response::error(400, msg),
            SimError::UnknownKernel { key, kernel } => {
                Response::error(404, format!("profile {key} has no kernel named {kernel:?}"))
            }
            SimError::Internal(msg) => {
                Response::error(500, format!("similarity search failed: {msg}"))
            }
        }
    }
}

impl Default for SimService {
    fn default() -> Self {
        Self::new()
    }
}

impl SimService {
    /// An empty, unfitted service.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: RankedMutex::new(rank::SIMINDEX, "serve.simindex", SimState { fitted: None }),
        }
    }

    /// Counters for the metrics scrape; takes and releases the lock.
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot {
        let guard = self.state.lock();
        guard
            .fitted
            .as_ref()
            .map_or_else(SimSnapshot::default, |f| SimSnapshot {
                index: f.index.stats(),
                clusters: f.clusters.len(),
                reclusters: f.clusters.reclusters(),
                dims: f.encoder.dims(),
            })
    }

    /// Ingest every kernel of `profile` (idempotent — ids are
    /// `device/scale/workload/kernel`), then search for the named kernel
    /// (default: the dominant one by total GPU time, ties by name). Fits
    /// the encoder on this profile if nothing was ingested before.
    fn ingest_and_search(
        &self,
        triple: &Triple,
        profile: &Profile,
        kernel: Option<&str>,
        k: usize,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<SimilarReport, SimError> {
        let kernels = profile.kernels();
        if kernels.is_empty() {
            return Err(SimError::Internal(format!(
                "profile {} has no kernels to index",
                triple.key()
            )));
        }

        let mut guard = self.state.lock();
        if guard.fitted.is_none() {
            let corpus: Vec<KernelMetrics> = kernels.iter().map(|kp| kp.metrics).collect();
            let encoder = Encoder::fit(Roofline::for_device(&triple.device), &corpus);
            let dims = encoder.dims();
            guard.fitted = Some(Fitted {
                encoder,
                device_slug: triple.device_slug.clone(),
                index: SimIndex::new(dims),
                clusters: ClusterSet::new(dims, ClusterConfig::default()),
            });
        }
        let Some(fitted) = guard.fitted.as_mut() else {
            return Err(SimError::Internal(
                "encoder fit produced no state".to_owned(),
            ));
        };

        let mut added = 0usize;
        let mut reclusters = 0usize;
        {
            let mut span = ctx.map(|c| c.child("simindex.encode"));
            for kp in kernels {
                let id = format!("{}/{}", triple.key(), kp.name);
                if fitted.index.contains(&id) {
                    continue;
                }
                let v = fitted.encoder.encode_metrics(&kp.metrics);
                let (slot, fresh) = fitted
                    .index
                    .insert(&id, &v)
                    .map_err(|e| SimError::Internal(e.to_string()))?;
                if fresh {
                    added += 1;
                    if fitted.clusters.assign(&fitted.index, slot).reclustered {
                        reclusters += 1;
                    }
                }
            }
            if let Some(span) = &mut span {
                span.tag("kernels", kernels.len().to_string());
                span.tag("added", added.to_string());
            }
        }
        if reclusters > 0 {
            // Marker span: the re-clusters already ran inside the ingest
            // loop; this records that (and how often) they fired.
            if let Some(c) = ctx {
                let mut span = c.child("simindex.recluster");
                span.tag("events", reclusters.to_string());
            }
        }

        let target = match kernel {
            Some(name) => kernels.iter().find(|kp| kp.name == name).ok_or_else(|| {
                SimError::UnknownKernel {
                    key: triple.key(),
                    kernel: name.to_owned(),
                }
            })?,
            None => {
                let Some(dominant) = kernels.iter().max_by(|a, b| {
                    a.total_time_s
                        .total_cmp(&b.total_time_s)
                        .then_with(|| b.name.cmp(&a.name))
                }) else {
                    return Err(SimError::Internal("no dominant kernel".to_owned()));
                };
                dominant
            }
        };
        let q = fitted.encoder.encode_metrics(&target.metrics);
        let query = format!("{}/{}", triple.key(), target.name);
        Self::search_fitted(fitted, query, &q, k, ctx)
    }

    /// Encode and search one inline [`cactus_simindex::VECTOR_DIMS`]-long
    /// metric vector.
    fn search_inline(
        &self,
        v: &[f64],
        k: usize,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<SimilarReport, SimError> {
        let mut guard = self.state.lock();
        let Some(fitted) = guard.fitted.as_mut() else {
            return Err(SimError::Empty);
        };
        let q = {
            let _span = ctx.map(|c| c.child("simindex.encode"));
            fitted
                .encoder
                .encode_vector(v)
                .map_err(|e| SimError::BadVector(e.to_string()))?
        };
        Self::search_fitted(fitted, "inline vector".to_owned(), &q, k, ctx)
    }

    /// The shared search tail: pruned k-NN under a `simindex.search` span.
    fn search_fitted(
        fitted: &mut Fitted,
        query: String,
        q: &[f64],
        k: usize,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<SimilarReport, SimError> {
        let mut span = ctx.map(|c| c.child("simindex.search"));
        let result = fitted
            .index
            .search(q, k)
            .map_err(|e| SimError::Internal(e.to_string()))?;
        if let Some(span) = &mut span {
            span.tag("k", k.to_string());
            span.tag("probed", result.probed.to_string());
            span.tag("pruned", result.pruned.to_string());
        }
        Ok(SimilarReport {
            query,
            k,
            neighbors: result.neighbors,
            probed: result.probed,
            pruned: result.pruned,
            size: fitted.index.len(),
            cells: fitted.index.stats().cells,
            clusters: fitted.clusters.len(),
        })
    }

    /// The `/v1/similar/stats` body: `key value` lines plus the greedy
    /// proxy subset covering every cluster within [`PROXY_BUDGET`].
    #[must_use]
    pub fn stats_page(&self) -> String {
        let guard = self.state.lock();
        let mut out = String::new();
        let Some(fitted) = guard.fitted.as_ref() else {
            out.push_str("fitted false\n");
            out.push_str(
                "# seed the index with GET /v1/similar?device=<d>&scale=<s>&workload=<w>\n",
            );
            return out;
        };
        let s = fitted.index.stats();
        out.push_str("fitted true\n");
        let _ = writeln!(out, "encoder_dims {}", fitted.encoder.dims());
        let _ = writeln!(out, "encoder_device {}", fitted.device_slug);
        let _ = writeln!(out, "vectors {}", s.size);
        let _ = writeln!(out, "cells {}", s.cells);
        let _ = writeln!(out, "queries {}", s.queries);
        let _ = writeln!(out, "probes {}", s.probes);
        let _ = writeln!(out, "pruned {}", s.pruned);
        let _ = writeln!(out, "inserts {}", s.inserts);
        let _ = writeln!(out, "repartitions {}", s.repartitions);
        let _ = writeln!(out, "clusters {}", fitted.clusters.len());
        let _ = writeln!(out, "reclusters {}", fitted.clusters.reclusters());
        let proxies = proxy::select(&fitted.index, &fitted.clusters, PROXY_BUDGET);
        let _ = writeln!(out, "proxies {}", proxies.len());
        for p in &proxies {
            let _ = writeln!(out, "proxy {} covers={}", p.id, p.covers.len());
        }
        out
    }
}

/// Handle `GET /v1/similar`.
#[must_use]
pub fn similar(state: &ServerState, req: &Request, ctx: SpanCtx<'_>) -> Response {
    let query = req.query.as_deref();
    let k = match k_from_query(query) {
        Ok(k) => k,
        Err(msg) => return Response::error(400, msg),
    };
    let mut span = ctx.child("serve.similar");

    if let Some(raw) = param(query, "vector") {
        span.tag("form", "vector");
        let v = match parse_vector(raw) {
            Ok(v) => v,
            Err(msg) => return Response::error(400, msg),
        };
        return match state.sim.search_inline(&v, k, Some(span.ctx())) {
            Ok(report) => Response::ok(render_similar(&report), CSV),
            Err(e) => e.into_response(),
        };
    }

    let (device, scale, workload) = match (
        param(query, "device"),
        param(query, "scale"),
        param(query, "workload"),
    ) {
        (Some(d), Some(s), Some(w)) => (d, s, w),
        _ => {
            return Response::error(
                400,
                "similar query needs either vector=v1,...,v15 or \
                 device=<d>&scale=<s>&workload=<w> (optionally &kernel=<name>&k=<n>)",
            )
        }
    };
    let triple = match Triple::resolve(device, scale, workload) {
        Ok(t) => t,
        Err(msg) => return Response::error(404, msg),
    };
    if !state.service.models(&triple.device_slug) {
        return Response::error(
            404,
            format!(
                "device {:?} is in the catalog but not modeled by this backend; modeled \
                 devices: {} (see /v1/devices)",
                triple.device_slug,
                state.service.modeled().join(", "),
            ),
        );
    }
    span.tag("form", "reference");
    span.tag("key", triple.key());

    // Resolve the profile *before* taking the simindex lock: the
    // single-flight and engine-pool ranks sit below SIMINDEX, and the
    // ranked-lock checker would flag the inverted order deterministically.
    let (profile, source) = match state.service.profile(&triple, Some(span.ctx())) {
        Ok(p) => p,
        Err(msg) => return Response::error(500, format!("simulation failed: {msg}")),
    };
    span.tag("source", format!("{source:?}").to_ascii_lowercase());

    match state.sim.ingest_and_search(
        &triple,
        &profile,
        param(query, "kernel"),
        k,
        Some(span.ctx()),
    ) {
        Ok(report) => Response::ok(render_similar(&report), CSV),
        Err(e) => e.into_response(),
    }
}

/// Handle `GET /v1/similar/stats`.
#[must_use]
pub fn stats(state: &ServerState) -> Response {
    Response::ok(state.sim.stats_page(), TEXT)
}

/// The similarity CSV: `#` comment lines with query/index/search context,
/// then `rank,id,distance` rows ascending by `(distance, id)`.
fn render_similar(report: &SimilarReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# query: {}", report.query);
    let _ = writeln!(
        out,
        "# index: {} vectors in {} cells, {} clusters",
        report.size, report.cells, report.clusters
    );
    let _ = writeln!(
        out,
        "# search: k={} probed={} pruned={}",
        report.k, report.probed, report.pruned
    );
    out.push_str("rank,id,distance\n");
    for (i, n) in report.neighbors.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{:.6}",
            i + 1,
            crate::routes::csv_escape(&n.id),
            n.dist
        );
    }
    out
}

/// The value of `name` in the query string (exact-key match, so `k` never
/// swallows `kernel`).
fn param<'q>(query: Option<&'q str>, name: &str) -> Option<&'q str> {
    query?.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

fn k_from_query(query: Option<&str>) -> Result<usize, String> {
    let Some(raw) = param(query, "k") else {
        return Ok(K_DEFAULT);
    };
    match raw.parse::<usize>() {
        Ok(k) if (1..=K_MAX).contains(&k) => Ok(k),
        _ => Err(format!("k must be an integer in [1, {K_MAX}], got {raw:?}")),
    }
}

fn parse_vector(raw: &str) -> Result<Vec<f64>, String> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("vector component {s:?} is not a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_matches_exact_keys_only() {
        let q = Some("kernel=force&k=7&device=rtx-3080");
        assert_eq!(param(q, "k"), Some("7"));
        assert_eq!(param(q, "kernel"), Some("force"));
        assert_eq!(param(q, "device"), Some("rtx-3080"));
        assert_eq!(param(q, "scale"), None);
        assert_eq!(param(None, "k"), None);
    }

    #[test]
    fn k_parses_and_bounds() {
        assert_eq!(k_from_query(None), Ok(K_DEFAULT));
        assert_eq!(k_from_query(Some("k=1")), Ok(1));
        assert_eq!(k_from_query(Some("k=50")), Ok(50));
        assert!(k_from_query(Some("k=0")).is_err());
        assert!(k_from_query(Some("k=51")).is_err());
        assert!(k_from_query(Some("k=two")).is_err());
    }

    #[test]
    fn vectors_parse_or_explain() {
        assert_eq!(parse_vector("1,2.5,-3"), Ok(vec![1.0, 2.5, -3.0]));
        assert!(parse_vector("1,x,3").is_err());
    }

    #[test]
    fn unfitted_service_reports_empty() {
        let svc = SimService::new();
        assert!(matches!(
            svc.search_inline(&[0.0; cactus_simindex::VECTOR_DIMS], 3, None),
            Err(SimError::Empty)
        ));
        assert!(svc.stats_page().starts_with("fitted false"));
        let snap = svc.snapshot();
        assert_eq!(snap.index.size, 0);
        assert_eq!(snap.dims, 0);
    }
}
