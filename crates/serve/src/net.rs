//! Listener binding with `SO_REUSEADDR`.
//!
//! `std::net::TcpListener::bind` does not set `SO_REUSEADDR`, so rebinding
//! a port whose previous listener just closed fails with `EADDRINUSE` while
//! accepted connections from the old process linger in `TIME_WAIT`. The
//! gateway's `Supervisor` restarts backends on *pinned* ports (the hash
//! ring addresses them by `host:port`), so it needs the flag. In the same
//! spirit as [`crate::signal`], the Linux path declares the four socket
//! calls `extern "C"` against the C library `std` already links instead of
//! pulling in a libc crate; other platforms fall back to the std bind.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Bind a TCP listener on `addr` with `SO_REUSEADDR` set (IPv4 on Linux;
/// falls back to `TcpListener::bind` elsewhere or for IPv6).
///
/// # Errors
///
/// Address resolution and socket/bind/listen failures.
pub fn bind_reusable(addr: &str) -> io::Result<TcpListener> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    match resolved {
        #[cfg(target_os = "linux")]
        SocketAddr::V4(v4) => linux::bind_v4_reusable(v4),
        _ => TcpListener::bind(resolved),
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::unix::io::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    // Close-on-exec at creation, so supervised restarts never leak fds.
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` (all fields network byte order where relevant).
    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_v4_reusable(addr: SocketAddrV4) -> io::Result<TcpListener> {
        // SAFETY: plain syscall wrappers over a fd we own exclusively until
        // `from_raw_fd`; on any failure the fd is closed before returning.
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let one: i32 = 1;
            let sockaddr = SockAddrIn {
                // lint:allow(no_panic, AF_INET is the constant 2)
                sin_family: u16::try_from(AF_INET).expect("AF_INET fits"),
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
                sin_zero: [0; 8],
            };
            // lint:allow(no_panic, size_of::<SockAddrIn>() is 16)
            let len = u32::try_from(std::mem::size_of::<SockAddrIn>()).expect("sockaddr size");
            // lint:allow(no_panic, size_of::<i32>() is 4)
            let optlen = u32::try_from(std::mem::size_of::<i32>()).expect("int size");
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, optlen) < 0
                || bind(fd, &sockaddr, len) < 0
                || listen(fd, 128) < 0
            {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_resolves_and_accepts() {
        let listener = bind_reusable("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        assert!(addr.port() != 0);
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (_peer, peer_addr) = listener.accept().expect("accept");
        assert_eq!(peer_addr.ip(), addr.ip());
        drop(client);
    }

    #[test]
    fn rebinds_same_port_immediately() {
        let first = bind_reusable("127.0.0.1:0").expect("bind");
        let addr = first.local_addr().expect("addr");
        // Hold a connection so the port has live state, then drop the
        // listener and rebind the exact port straight away.
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (server_side, _) = first.accept().expect("accept");
        drop(server_side);
        drop(first);
        let again = bind_reusable(&addr.to_string()).expect("rebind same port");
        assert_eq!(again.local_addr().expect("addr").port(), addr.port());
        drop(client);
    }

    #[test]
    fn rejects_unresolvable_address() {
        assert!(bind_reusable("not an address").is_err());
    }
}
