//! Registry-backed request metrics behind `/v1/metricsz`.
//!
//! Counters, the queue-depth gauge, and the latency histogram are handles
//! into the server's shared [`MetricsRegistry`] — the registry renders the
//! whole exposition page (one code path shared with the gateway), so this
//! module only names the server's metrics and routes status codes to the
//! right counter. Latency lives in a log-bucket histogram: quantile
//! estimates never undershoot the true value and overshoot by at most 2×,
//! and `cactus_serve_latency_p50_us`/`_p90_us`/`_p99_us` keep rendering
//! under the same flat names the pre-registry dashboards scraped.

use cactus_obs::{Counter, Gauge, Histogram, MetricsRegistry, RegistryError};

/// Thread-safe request/latency counters for one server, registered in its
/// metrics registry under `cactus_serve_*` names.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Requests parsed and handled (a keep-alive connection contributes one
    /// per request it carries).
    pub requests: Counter,
    /// Connections accepted (including `503`-rejected ones).
    pub connections: Counter,
    /// Requests served over an already-open keep-alive connection.
    pub keepalive_reuses: Counter,
    /// Responses with a 2xx status.
    pub responses_ok: Counter,
    /// Responses with a 4xx status.
    pub responses_client_error: Counter,
    /// 503 backpressure responses (accept-queue full).
    pub responses_busy: Counter,
    /// Responses with a 5xx status other than 503.
    pub responses_error: Counter,
    /// Requests served through a deprecated pre-`/v1` path alias.
    pub legacy_requests: Counter,
    /// Connections currently waiting in the accept queue.
    pub queue_depth: Gauge,
    /// Request-handling latency histogram (µs).
    pub latency: Histogram,
}

impl ServerMetrics {
    /// Register every server metric in `registry`.
    ///
    /// # Errors
    ///
    /// Fails if any `cactus_serve_*` name is already registered (one server
    /// per registry).
    pub fn register(registry: &MetricsRegistry) -> Result<Self, RegistryError> {
        Ok(Self {
            requests: registry
                .counter("cactus_serve_requests_total", "requests parsed and handled")?,
            connections: registry.counter(
                "cactus_serve_connections_total",
                "connections accepted (including 503-rejected)",
            )?,
            keepalive_reuses: registry.counter(
                "cactus_serve_keepalive_reuses_total",
                "requests served over an already-open keep-alive connection",
            )?,
            responses_ok: registry.counter("cactus_serve_responses_ok_total", "2xx responses")?,
            responses_client_error: registry
                .counter("cactus_serve_responses_client_error_total", "4xx responses")?,
            responses_busy: registry.counter(
                "cactus_serve_responses_busy_total",
                "503 backpressure responses",
            )?,
            responses_error: registry.counter(
                "cactus_serve_responses_error_total",
                "5xx responses other than 503",
            )?,
            legacy_requests: registry.counter(
                "cactus_serve_legacy_requests_total",
                "requests served through a deprecated pre-/v1 path alias",
            )?,
            queue_depth: registry.gauge(
                "cactus_serve_queue_depth",
                "connections waiting in the accept queue",
            )?,
            latency: registry.histogram(
                "cactus_serve_latency",
                "request handling latency in microseconds",
            )?,
        })
    }

    /// Record the handling latency of one request, in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        self.latency.observe_us(us);
    }

    /// Tally one written response under the right status-class counter.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            503 => &self.responses_busy,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_error,
        };
        counter.inc();
    }

    /// Latency quantile estimates (p50, p90, p99) in microseconds; zeros
    /// when nothing was recorded yet.
    #[must_use]
    pub fn latency_quantiles_us(&self) -> (u64, u64, u64) {
        (
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.90),
            self.latency.quantile_us(0.99),
        )
    }
}

/// Nearest-rank quantile over an already-sorted slice (0 when empty). Used
/// by the gateway's sliding latency windows and the load generator, which
/// keep exact samples rather than histogram buckets.
#[must_use]
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ServerMetrics {
        ServerMetrics::register(&MetricsRegistry::new()).expect("fresh registry")
    }

    #[test]
    fn quantile_estimates_bound_the_truth() {
        let m = metrics();
        assert_eq!(m.latency_quantiles_us(), (0, 0, 0));
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let (p50, p90, p99) = m.latency_quantiles_us();
        for (est, truth) in [(p50, 50), (p90, 90), (p99, 99)] {
            assert!(est >= truth, "estimate {est} undershoots {truth}");
            assert!(est <= 2 * truth, "estimate {est} overshoots 2x{truth}");
        }
    }

    #[test]
    fn latency_renders_under_flat_quantile_names() {
        let registry = MetricsRegistry::new();
        let m = ServerMetrics::register(&registry).expect("register");
        m.record_latency_us(100);
        let page = registry.render();
        for name in [
            "cactus_serve_latency_p50_us ",
            "cactus_serve_latency_p90_us ",
            "cactus_serve_latency_p99_us ",
            "cactus_serve_latency_count 1",
        ] {
            assert!(page.contains(name), "missing {name} in:\n{page}");
        }
    }

    #[test]
    fn status_classes_route_to_counters() {
        let m = metrics();
        for status in [200, 200, 404, 503, 500] {
            m.count_status(status);
        }
        assert_eq!(m.responses_ok.get(), 2);
        assert_eq!(m.responses_client_error.get(), 1);
        assert_eq!(m.responses_busy.get(), 1);
        assert_eq!(m.responses_error.get(), 1);
    }

    #[test]
    fn double_registration_collides() {
        let registry = MetricsRegistry::new();
        let _first = ServerMetrics::register(&registry).expect("first");
        assert!(
            ServerMetrics::register(&registry).is_err(),
            "one server per registry"
        );
    }

    #[test]
    fn quantile_of_singleton() {
        assert_eq!(quantile(&[42], 0.99), 42);
    }
}
