//! Request counters and latency quantiles behind `/metricsz`.
//!
//! Counters are relaxed atomics (monotonic, read-mostly); latencies go into
//! a fixed-size ring of recent samples so quantiles reflect current
//! behaviour without unbounded memory. The `/metricsz` rendering is a flat
//! `name value` text format (one metric per line, `#`-prefixed comments),
//! parseable by the typed client and human-readable with `curl`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latency samples kept for quantile estimation.
const LATENCY_RING: usize = 4096;

#[derive(Debug, Default)]
struct Ring {
    samples: Vec<u64>,
    next: usize,
}

/// Thread-safe request/latency counters for one server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests parsed and handled (a keep-alive connection contributes one
    /// per request it carries).
    pub requests: AtomicU64,
    /// Connections accepted (including `503`-rejected ones).
    pub connections: AtomicU64,
    /// Requests served over an already-open keep-alive connection.
    pub keepalive_reuses: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_client_error: AtomicU64,
    /// 503 backpressure responses (accept-queue full).
    pub responses_busy: AtomicU64,
    /// Responses with a 5xx status other than 503.
    pub responses_error: AtomicU64,
    /// Connections currently waiting in the accept queue.
    pub queue_depth: AtomicU64,
    latencies_us: Mutex<Ring>,
}

impl ServerMetrics {
    /// Record the handling latency of one request, in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies_us.lock().expect("latency ring poisoned");
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us);
        } else {
            let at = ring.next;
            ring.samples[at] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Tally one written response under the right status-class counter.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            503 => &self.responses_busy,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Latency quantiles (p50, p90, p99) over the retained samples, in
    /// microseconds; zeros when nothing was recorded yet.
    #[must_use]
    pub fn latency_quantiles_us(&self) -> (u64, u64, u64) {
        let mut samples = self
            .latencies_us
            .lock()
            .expect("latency ring poisoned")
            .samples
            .clone();
        samples.sort_unstable();
        (
            quantile(&samples, 0.50),
            quantile(&samples, 0.90),
            quantile(&samples, 0.99),
        )
    }
}

/// Nearest-rank quantile over an already-sorted slice (0 when empty).
#[must_use]
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_known_samples() {
        let m = ServerMetrics::default();
        assert_eq!(m.latency_quantiles_us(), (0, 0, 0));
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let (p50, p90, p99) = m.latency_quantiles_us();
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        assert!((85..=95).contains(&p90), "p90 = {p90}");
        assert!((95..=100).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn ring_caps_retained_samples() {
        let m = ServerMetrics::default();
        for _ in 0..(LATENCY_RING + 100) {
            m.record_latency_us(7);
        }
        assert_eq!(m.latency_quantiles_us(), (7, 7, 7));
    }

    #[test]
    fn status_classes_route_to_counters() {
        let m = ServerMetrics::default();
        for status in [200, 200, 404, 503, 500] {
            m.count_status(status);
        }
        assert_eq!(m.responses_ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_client_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_busy.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_error.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quantile_of_singleton() {
        assert_eq!(quantile(&[42], 0.99), 42);
    }
}
