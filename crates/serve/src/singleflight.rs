//! Single-flight coalescing: N concurrent computations of the same key run
//! the computation exactly once.
//!
//! When a burst of requests arrives for the same uncached (device, scale,
//! workload) triple, simulating it once per request would multiply the most
//! expensive step of the serving hierarchy by the burst size. A
//! [`SingleFlight`] group keys each in-flight computation; the first caller
//! for a key becomes the **leader** and runs the closure, every concurrent
//! caller for the same key becomes a **follower** and blocks on a condvar
//! until the leader publishes the shared result. Once published, the key is
//! retired — a later caller starts a fresh flight (the response cache above
//! this layer is what makes *repeat* requests cheap; this layer only
//! collapses *concurrent* ones).
//!
//! The leader's result type is `Result<T, String>` so failures propagate to
//! every waiter, and a leader that panics publishes an error instead of
//! stranding its followers.

use std::collections::HashMap;
use std::sync::{Arc, Condvar};

use cactus_obs::lock::{rank, RankedMutex};

/// The shared result slot of one in-flight computation.
#[derive(Debug)]
struct Slot<T> {
    result: RankedMutex<Option<Result<T, String>>>,
    ready: Condvar,
}

/// Publishes an error on drop unless the leader completed normally, so a
/// panicking leader never strands followers.
struct LeaderGuard<'a, T: Clone> {
    flight: &'a SingleFlight<T>,
    key: String,
    slot: Arc<Slot<T>>,
    completed: bool,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.publish(
                &self.key,
                &self.slot,
                Err("computation panicked".to_owned()),
            );
        }
    }
}

/// A group of keyed, coalesced computations.
#[derive(Debug)]
pub struct SingleFlight<T: Clone> {
    inflight: RankedMutex<HashMap<String, Arc<Slot<T>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        Self {
            inflight: RankedMutex::new(
                rank::SINGLEFLIGHT_MAP,
                "serve.singleflight_map",
                HashMap::new(),
            ),
        }
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty group.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `compute` for `key`, coalescing with any concurrent call for the
    /// same key. Returns the shared result and whether this caller was the
    /// leader (i.e. actually ran `compute`).
    pub fn run<F>(&self, key: &str, compute: F) -> (Result<T, String>, bool)
    where
        F: FnOnce() -> Result<T, String>,
    {
        let (slot, leader) = {
            let mut inflight = self.inflight.lock();
            match inflight.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        result: RankedMutex::new(
                            rank::SINGLEFLIGHT_SLOT,
                            "serve.singleflight_slot",
                            None,
                        ),
                        ready: Condvar::new(),
                    });
                    inflight.insert(key.to_owned(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if leader {
            let mut guard = LeaderGuard {
                flight: self,
                key: key.to_owned(),
                slot: Arc::clone(&slot),
                completed: false,
            };
            let result = compute();
            guard.completed = true;
            self.publish(key, &slot, result.clone());
            (result, true)
        } else {
            let mut result = slot.result.lock();
            loop {
                if let Some(shared) = result.as_ref() {
                    return (shared.clone(), false);
                }
                result = result.wait(&slot.ready);
            }
        }
    }

    /// Keys currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.lock().len()
    }

    /// True when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn publish(&self, key: &str, slot: &Arc<Slot<T>>, result: Result<T, String>) {
        *slot.result.lock() = Some(result);
        slot.ready.notify_all();
        self.inflight.lock().remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn single_caller_leads_and_retires_the_key() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        let (result, leader) = flight.run("k", || Ok(7));
        assert_eq!(result, Ok(7));
        assert!(leader);
        assert!(flight.is_empty(), "key retired after completion");
        // A later call starts a fresh flight.
        let (result, leader) = flight.run("k", || Ok(8));
        assert_eq!(result, Ok(8));
        assert!(leader);
    }

    #[test]
    fn concurrent_callers_coalesce_to_one_computation() {
        const CALLERS: usize = 8;
        let flight: SingleFlight<u64> = SingleFlight::new();
        let computations = AtomicU64::new(0);
        let barrier = Barrier::new(CALLERS);

        let results: Vec<(Result<u64, String>, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        flight.run("triple", || {
                            // Linger so every follower arrives while the
                            // leader is still computing.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok(computations.fetch_add(1, Ordering::SeqCst) + 1)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });

        assert_eq!(computations.load(Ordering::SeqCst), 1, "one computation");
        assert_eq!(results.iter().filter(|(_, leader)| *leader).count(), 1);
        for (result, _) in &results {
            assert_eq!(*result, Ok(1), "every caller sees the leader's value");
        }
        assert!(flight.is_empty());
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        let a = flight.run("a", || Ok(1));
        let b = flight.run("b", || Ok(2));
        assert_eq!(a.0, Ok(1));
        assert_eq!(b.0, Ok(2));
    }

    #[test]
    fn errors_propagate_to_every_waiter() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        let (result, _) = flight.run("bad", || Err("boom".to_owned()));
        assert_eq!(result, Err("boom".to_owned()));
        assert!(flight.is_empty());
    }

    #[test]
    fn panicking_leader_does_not_strand_followers() {
        let flight: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));

        let f = Arc::clone(&flight);
        let b = Arc::clone(&barrier);
        let leader = std::thread::spawn(move || {
            let _ = f.run("k", || {
                b.wait(); // follower is about to join the flight
                std::thread::sleep(std::time::Duration::from_millis(50));
                panic!("leader dies");
            });
        });

        barrier.wait();
        // Give the follower path time to register on the same key.
        let (result, was_leader) = flight.run("k", || Ok(42));
        assert!(leader.join().is_err(), "leader panicked");
        // The follower either coalesced with the dying leader (gets the
        // published error) or arrived after the key retired (computes 42).
        match (result, was_leader) {
            (Err(e), false) => assert!(e.contains("panicked"), "{e}"),
            (Ok(42), true) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(flight.is_empty());
    }
}
