//! The daemon: accept loop, bounded queue, worker pool, backpressure, and
//! graceful shutdown.
//!
//! ```text
//! accept thread ──try_send──► bounded queue ──recv──► worker pool (N threads)
//!      │                        (cap = Q)                 │
//!      └── queue full: write `503 Retry-After` ───────────┴── handle():
//!                                                  LRU → store → single-flight sim
//! ```
//!
//! The accept loop never blocks on a slow client: a connection either
//! enqueues or is answered `503` immediately, so saturation degrades into
//! fast, explicit pushback instead of unbounded queueing. Connections are
//! keep-alive by default: a worker serves sequential requests from one
//! stream until the client asks `Connection: close`, the idle read timeout
//! fires, [`KEEP_ALIVE_MAX`] requests have been served, or shutdown begins
//! (the last response then advertises `close`). Shutdown is graceful by
//! construction — the accept thread exits and drops the queue sender, each
//! worker drains what was already queued, finishes its in-flight
//! connection, and exits on the closed channel; [`Server::join`] returns
//! once every response has been written.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResponseCache;
use crate::http::{self, HttpError, Response};
use crate::metrics::ServerMetrics;
use crate::net;
use crate::routes;
use crate::service::ProfileService;

/// How long the accept loop sleeps between polls when idle. Accepted
/// connections are processed back to back; this only bounds the latency of
/// the first request after an idle period.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Requests served over one keep-alive connection before the server forces
/// a close, bounding how long a single client can pin a worker.
pub const KEEP_ALIVE_MAX: usize = 256;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the server
    /// starts answering `503`.
    pub queue: usize,
    /// Response-cache capacity (entries); 0 disables response caching.
    pub cache_capacity: usize,
    /// `Retry-After` seconds advertised on `503`.
    pub retry_after_s: u32,
    /// Per-connection read timeout; doubles as the keep-alive idle timeout
    /// (slow, silent, or idle clients).
    pub read_timeout: Duration,
    /// Profile-store directory override (`None` = the workspace default,
    /// honouring `CACTUS_PROFILE_STORE`).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            cache_capacity: 256,
            retry_after_s: 1,
            read_timeout: Duration::from_secs(5),
            store_dir: None,
        }
    }
}

/// State shared by the accept thread and every worker.
pub struct ServerState {
    /// Store + simulation levels of the hierarchy.
    pub service: ProfileService,
    /// The LRU response cache (first level).
    pub cache: ResponseCache,
    /// Request counters and latency ring.
    pub metrics: ServerMetrics,
    config: ServeConfig,
}

impl ServerState {
    /// Render the `/metricsz` body.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let m = &self.metrics;
        let (p50, p90, p99) = m.latency_quantiles_us();
        let mut out = String::from("# cactus-serve\n");
        for (name, value) in [
            ("requests_total", m.requests.load(Ordering::Relaxed)),
            ("connections_total", m.connections.load(Ordering::Relaxed)),
            (
                "keepalive_reuses_total",
                m.keepalive_reuses.load(Ordering::Relaxed),
            ),
            ("responses_ok_total", m.responses_ok.load(Ordering::Relaxed)),
            (
                "responses_client_error_total",
                m.responses_client_error.load(Ordering::Relaxed),
            ),
            (
                "responses_busy_total",
                m.responses_busy.load(Ordering::Relaxed),
            ),
            (
                "responses_error_total",
                m.responses_error.load(Ordering::Relaxed),
            ),
            ("queue_depth", m.queue_depth.load(Ordering::Relaxed)),
            ("queue_capacity", self.config.queue as u64),
            ("workers", self.config.workers as u64),
            ("cache_hits_total", self.cache.hits()),
            ("cache_misses_total", self.cache.misses()),
            ("cache_entries", self.cache.len() as u64),
            ("latency_p50_us", p50),
            ("latency_p90_us", p90),
            ("latency_p99_us", p99),
        ] {
            out.push_str(&format!("cactus_serve_{name} {value}\n"));
        }
        out.push_str(&routes::service_metrics_lines(&self.service));
        out
    }
}

/// A running daemon. Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind, spawn the worker pool and accept thread, and return.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        // SO_REUSEADDR so a supervised restart can rebind its pinned port
        // immediately (lingering TIME_WAIT sockets would otherwise block it).
        let listener = net::bind_reusable(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let state = Arc::new(ServerState {
            service: ProfileService::new(config.store_dir.clone()),
            cache: ResponseCache::new(config.cache_capacity),
            metrics: ServerMetrics::default(),
            config: config.clone(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = config.read_timeout;
                std::thread::spawn(move || worker_loop(&state, &rx, read_timeout, &shutdown))
            })
            .collect();

        let accept = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &tx, &state, &shutdown))
        };

        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            state,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (tests and benches read counters through this).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Begin graceful shutdown: stop accepting, let workers drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Shut down (if not already requested) and wait until every queued and
    /// in-flight request has been answered and all threads exited.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Drop every cached response and pooled engine (benches use this to
    /// re-measure cold paths on a running server).
    pub fn reset_caches(&self) {
        self.state.cache.clear();
        self.state.service.reset();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    state: &ServerState,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        reject_busy(state, stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping `tx` here closes the queue: workers drain what is already
    // enqueued, then exit on the closed channel.
}

/// Answer `503 + Retry-After` without occupying a worker.
fn reject_busy(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    // Drain the request head before answering: closing with unread bytes in
    // the receive buffer sends an RST that can discard the in-flight 503.
    let mut stream = stream;
    let mut buf = [0u8; 1024];
    loop {
        match io::Read::read(&mut stream, &mut buf) {
            Ok(n) if n > 0 => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    let response = Response::busy(state.config.retry_after_s);
    state.metrics.requests.fetch_add(1, Ordering::Relaxed);
    state.metrics.connections.fetch_add(1, Ordering::Relaxed);
    state.metrics.count_status(response.status);
    let _ = response.write_to(&mut stream);
}

fn worker_loop(
    state: &ServerState,
    rx: &Mutex<Receiver<TcpStream>>,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    loop {
        let next = rx.lock().expect("queue receiver poisoned").recv();
        let Ok(stream) = next else { break };
        state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        handle_connection(state, &stream, read_timeout, shutdown);
    }
}

/// Serve sequential keep-alive requests from one connection until the
/// client closes (or asks to), an error or idle timeout occurs, the
/// per-connection request cap is reached, or shutdown begins.
fn handle_connection(
    state: &ServerState,
    stream: &TcpStream,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    state.metrics.connections.fetch_add(1, Ordering::Relaxed);

    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    loop {
        let request = http::read_request(&mut reader);
        let start = Instant::now();
        let (response, client_close) = match request {
            Ok(request) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                if served > 0 {
                    state
                        .metrics
                        .keepalive_reuses
                        .fetch_add(1, Ordering::Relaxed);
                }
                // A panicking handler must not kill the worker thread;
                // convert it into a 500 and keep serving.
                let response =
                    std::panic::catch_unwind(AssertUnwindSafe(|| routes::respond(state, &request)))
                        .unwrap_or_else(|_| {
                            Response::error(500, "internal error: handler panicked")
                        });
                (response, request.wants_close())
            }
            // Clean close or idle timeout between requests: nothing to answer.
            Err(HttpError::ClosedEarly | HttpError::Io(_)) => return,
            // A malformed head gets its 400, then the connection closes
            // (framing can no longer be trusted).
            Err(e) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(400, format!("bad request: {e}"));
                state.metrics.count_status(response.status);
                let mut out = stream;
                let _ = response.write_to(&mut out);
                return;
            }
        };

        served += 1;
        let keep_alive =
            !client_close && served < KEEP_ALIVE_MAX && !shutdown.load(Ordering::SeqCst);
        let mut out = stream;
        let write_result = response.write_conn(&mut out, keep_alive);
        let _ = out.flush();
        state.metrics.count_status(response.status);
        let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record_latency_us(elapsed_us);
        if !keep_alive || write_result.is_err() {
            return;
        }
    }
}
