//! The daemon: accept loop, bounded queue, worker pool, backpressure, and
//! graceful shutdown.
//!
//! ```text
//! accept thread ──try_send──► bounded queue ──recv──► worker pool (N threads)
//!      │                        (cap = Q)                 │
//!      └── queue full: write `503 Retry-After` ───────────┴── handle():
//!                                                  LRU → store → single-flight sim
//! ```
//!
//! The accept loop never blocks on a slow client: a connection either
//! enqueues or is answered `503` immediately, so saturation degrades into
//! fast, explicit pushback instead of unbounded queueing. Connections are
//! keep-alive by default: a worker serves sequential requests from one
//! stream until the client asks `Connection: close`, the idle read timeout
//! fires, [`KEEP_ALIVE_MAX`] requests have been served, or shutdown begins
//! (the last response then advertises `close`). Shutdown is graceful by
//! construction — the accept thread exits and drops the queue sender, each
//! worker drains what was already queued, finishes its in-flight
//! connection, and exits on the closed channel; [`Server::join`] returns
//! once every response has been written.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cactus_gpu::MODEL_VERSION;
use cactus_obs::lock::{rank, RankedMutex};
use cactus_obs::{Gauge, MetricsRegistry, TraceId, Tracer};

use crate::cache::{CachedResponse, ResponseCache};
use crate::http::{self, HttpError, Response};
use crate::metrics::ServerMetrics;
use crate::net;
use crate::routes;
use crate::service::ProfileService;
use crate::similar::SimService;

/// How long the accept loop sleeps between polls when idle. Accepted
/// connections are processed back to back; this only bounds the latency of
/// the first request after an idle period.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Requests served over one keep-alive connection before the server forces
/// a close, bounding how long a single client can pin a worker.
pub const KEEP_ALIVE_MAX: usize = 256;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the server
    /// starts answering `503`.
    pub queue: usize,
    /// Response-cache capacity (entries); 0 disables response caching.
    pub cache_capacity: usize,
    /// `Retry-After` seconds advertised on `503`.
    pub retry_after_s: u32,
    /// Per-connection read timeout; doubles as the keep-alive idle timeout
    /// (slow, silent, or idle clients).
    pub read_timeout: Duration,
    /// Profile-store directory override (`None` = the workspace default,
    /// honouring `CACTUS_PROFILE_STORE`).
    pub store_dir: Option<PathBuf>,
    /// Catalog ids this backend models (one engine pool each, advertised on
    /// `/v1/healthz` and `/v1/devices`); empty = the full catalog.
    pub devices: Vec<String>,
    /// Spans retained in the in-memory ring served by `/v1/tracez`.
    pub trace_capacity: usize,
    /// Append every finished span as one JSON line to this file (`None`
    /// disables the log; the in-memory ring is always on).
    pub span_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 64,
            cache_capacity: 256,
            retry_after_s: 1,
            read_timeout: Duration::from_secs(5),
            store_dir: None,
            devices: Vec::new(),
            trace_capacity: 2048,
            span_log: None,
        }
    }
}

/// State shared by the accept thread and every worker.
pub struct ServerState {
    /// Store + simulation levels of the hierarchy.
    pub service: ProfileService,
    /// The LRU response cache (first level).
    pub cache: ResponseCache,
    /// Request counters and the latency histogram.
    pub metrics: ServerMetrics,
    /// The central registry every `cactus_serve_*` metric lives in; renders
    /// `/v1/metricsz` through the shared exposition code.
    pub registry: MetricsRegistry,
    /// Span ring (and optional JSONL log) behind `/v1/tracez`.
    pub tracer: Tracer,
    /// The online kernel-similarity service behind `/v1/similar`.
    pub sim: SimService,
    config: ServeConfig,
    /// Values owned elsewhere (cache, service, config), mirrored into
    /// registry gauges at scrape time so one renderer covers everything.
    scraped: ScrapedGauges,
}

struct ScrapedGauges {
    queue_capacity: Gauge,
    workers: Gauge,
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_entries: Gauge,
    memo_hit_rate: Gauge,
    wir_definitions: Gauge,
    simindex_size: Gauge,
    simindex_cells: Gauge,
    simindex_clusters: Gauge,
    simindex_queries: Gauge,
    simindex_probes: Gauge,
    simindex_pruned: Gauge,
    simindex_inserts: Gauge,
    simindex_reclusters: Gauge,
    store_segments: Gauge,
    store_live_records: Gauge,
    store_dead_records: Gauge,
    store_live_bytes: Gauge,
    store_dead_bytes: Gauge,
    store_appends: Gauge,
    store_gets: Gauge,
    store_compactions: Gauge,
    store_imported: Gauge,
    store_truncations: Gauge,
}

impl ScrapedGauges {
    fn register(registry: &MetricsRegistry) -> Result<Self, cactus_obs::RegistryError> {
        Ok(Self {
            queue_capacity: registry.gauge("cactus_serve_queue_capacity", "accept queue bound")?,
            workers: registry.gauge("cactus_serve_workers", "worker threads")?,
            cache_hits: registry.gauge("cactus_serve_cache_hits_total", "response cache hits")?,
            cache_misses: registry
                .gauge("cactus_serve_cache_misses_total", "response cache misses")?,
            cache_entries: registry
                .gauge("cactus_serve_cache_entries", "response cache entries")?,
            memo_hit_rate: registry.gauge(
                "cactus_serve_engine_memo_hit_rate",
                "fraction of launches replayed from memo caches",
            )?,
            wir_definitions: registry.gauge(
                "cactus_wir_definitions",
                "IR workload definitions in the routing registry",
            )?,
            simindex_size: registry
                .gauge("cactus_simindex_size", "vectors in the similarity index")?,
            simindex_cells: registry.gauge(
                "cactus_simindex_cells",
                "coarse cells in the index partition",
            )?,
            simindex_clusters: registry
                .gauge("cactus_simindex_clusters", "online similarity clusters")?,
            simindex_queries: registry.gauge(
                "cactus_simindex_queries_total",
                "similarity searches answered",
            )?,
            simindex_probes: registry.gauge(
                "cactus_simindex_probes_total",
                "full distance computations across similarity searches",
            )?,
            simindex_pruned: registry.gauge(
                "cactus_simindex_pruned_total",
                "vectors skipped by pruning across similarity searches",
            )?,
            simindex_inserts: registry.gauge(
                "cactus_simindex_inserts_total",
                "vectors inserted into the similarity index",
            )?,
            simindex_reclusters: registry.gauge(
                "cactus_simindex_reclusters_total",
                "bounded local re-cluster passes",
            )?,
            store_segments: registry.gauge(
                "cactus_store_segments",
                "segment files in the durable store",
            )?,
            store_live_records: registry.gauge(
                "cactus_store_live_records",
                "records the store index points at",
            )?,
            store_dead_records: registry.gauge(
                "cactus_store_dead_records",
                "superseded records awaiting compaction",
            )?,
            store_live_bytes: registry
                .gauge("cactus_store_live_bytes", "payload bytes of live records")?,
            store_dead_bytes: registry.gauge(
                "cactus_store_dead_bytes",
                "payload bytes reclaimable by compaction",
            )?,
            store_appends: registry
                .gauge("cactus_store_appends_total", "records appended since open")?,
            store_gets: registry
                .gauge("cactus_store_gets_total", "store point reads since open")?,
            store_compactions: registry.gauge(
                "cactus_store_compactions_total",
                "compaction passes since open",
            )?,
            store_imported: registry.gauge(
                "cactus_store_imported_total",
                "records imported from the legacy filesystem tree",
            )?,
            store_truncations: registry.gauge(
                "cactus_store_truncations_total",
                "torn segment tails truncated during recovery",
            )?,
        })
    }
}

impl ServerState {
    /// Render the `/v1/metricsz` body via the shared exposition renderer,
    /// refreshing the scrape-time gauges first.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        self.scraped.queue_capacity.set(self.config.queue as f64);
        self.scraped.workers.set(self.config.workers as f64);
        self.scraped.cache_hits.set(self.cache.hits() as f64);
        self.scraped.cache_misses.set(self.cache.misses() as f64);
        self.scraped.cache_entries.set(self.cache.len() as f64);
        let memo = self.service.engine_memo_stats();
        self.scraped.memo_hit_rate.set(memo.hit_rate());
        self.scraped
            .wir_definitions
            .set(self.service.wir_count() as f64);
        let sim = self.sim.snapshot();
        self.scraped.simindex_size.set(sim.index.size as f64);
        self.scraped.simindex_cells.set(sim.index.cells as f64);
        self.scraped.simindex_clusters.set(sim.clusters as f64);
        self.scraped.simindex_queries.set(sim.index.queries as f64);
        self.scraped.simindex_probes.set(sim.index.probes as f64);
        self.scraped.simindex_pruned.set(sim.index.pruned as f64);
        self.scraped.simindex_inserts.set(sim.index.inserts as f64);
        self.scraped.simindex_reclusters.set(sim.reclusters as f64);
        let store = self.service.store().stats();
        self.scraped.store_segments.set(store.segments as f64);
        self.scraped
            .store_live_records
            .set(store.live_records as f64);
        self.scraped
            .store_dead_records
            .set(store.dead_records as f64);
        self.scraped.store_live_bytes.set(store.live_bytes as f64);
        self.scraped.store_dead_bytes.set(store.dead_bytes as f64);
        self.scraped.store_appends.set(store.appends as f64);
        self.scraped.store_gets.set(store.gets as f64);
        self.scraped.store_compactions.set(store.compactions as f64);
        self.scraped.store_imported.set(store.imported as f64);
        self.scraped.store_truncations.set(store.truncations as f64);
        self.registry.render()
    }
}

/// A running daemon. Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind, spawn the worker pool and accept thread, and return.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        // SO_REUSEADDR so a supervised restart can rebind its pinned port
        // immediately (lingering TIME_WAIT sockets would otherwise block it).
        let listener = net::bind_reusable(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let registry = MetricsRegistry::new();
        let registered = || io::Error::other("fresh registry collided");
        let metrics = ServerMetrics::register(&registry).map_err(|_| registered())?;
        let scraped = ScrapedGauges::register(&registry).map_err(|_| registered())?;
        let service =
            ProfileService::with_registry(config.store_dir.clone(), &config.devices, &registry)
                .map_err(io::Error::other)?;
        let mut tracer = Tracer::new(config.trace_capacity);
        if let Some(path) = &config.span_log {
            tracer = tracer.with_span_log(path)?;
        }

        let state = Arc::new(ServerState {
            service,
            cache: ResponseCache::new(config.cache_capacity),
            metrics,
            registry,
            tracer,
            sim: SimService::new(),
            config: config.clone(),
            scraped,
        });
        warm_cache(&state, config.cache_capacity);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue.max(1));
        let rx = Arc::new(RankedMutex::new(
            rank::WORKER_QUEUE,
            "serve.worker_queue",
            rx,
        ));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = config.read_timeout;
                std::thread::spawn(move || worker_loop(&state, &rx, read_timeout, &shutdown))
            })
            .collect();

        let accept = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &tx, &state, &shutdown))
        };

        let compactor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || compactor_loop(&state, &shutdown))
        };

        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            compactor: Some(compactor),
            state,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (tests and benches read counters through this).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Begin graceful shutdown: stop accepting, let workers drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Shut down (if not already requested) and wait until every queued and
    /// in-flight request has been answered and all threads exited.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
    }

    /// Drop every cached response and pooled engine (benches use this to
    /// re-measure cold paths on a running server).
    pub fn reset_caches(&self) {
        self.state.cache.clear();
        self.state.service.reset();
    }
}

/// Warm the response cache from the durable store at startup. A record
/// already at this binary's `MODEL_VERSION` is byte-identical to the
/// `/v1/profile` body it would produce, so a restarted daemon serves its
/// persisted working set from the very first request — no re-simulation,
/// no cold LRU.
fn warm_cache(state: &ServerState, capacity: usize) {
    if capacity == 0 {
        return;
    }
    let store = state.service.store();
    let mut warmed = 0usize;
    for entry in store.entries() {
        if warmed >= capacity {
            break;
        }
        if entry.version != MODEL_VERSION {
            continue;
        }
        // Replicated records for devices this backend does not model are
        // unreachable through the routes; do not spend cache slots on them.
        let device = entry.key.split('/').next().unwrap_or_default();
        if !state.service.models(device) {
            continue;
        }
        let Ok(Some(record)) = store.get(&entry.key) else {
            continue;
        };
        let Ok(body) = String::from_utf8(record.value) else {
            continue;
        };
        state.cache.put(
            &format!("profile/{}", entry.key),
            CachedResponse {
                content_type: routes::TEXT,
                body,
            },
        );
        warmed += 1;
    }
}

/// How often the background compactor polls the store for reclaimable
/// segments. Compaction itself only runs when `maybe_compact`'s dead-byte
/// threshold trips, so the steady-state cost of the loop is one stats
/// read per interval.
const COMPACT_INTERVAL: Duration = Duration::from_secs(1);

/// Background compaction: poll `maybe_compact` until shutdown. Emits one
/// `store.compact` span per pass that actually ran (or failed) — idle
/// polls stay out of the trace ring.
fn compactor_loop(state: &ServerState, shutdown: &AtomicBool) {
    const TICK: Duration = Duration::from_millis(20);
    let mut idle = Duration::ZERO;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        idle += TICK;
        if idle < COMPACT_INTERVAL {
            continue;
        }
        idle = Duration::ZERO;
        match state.service.store().maybe_compact() {
            Ok(None) => {}
            Ok(Some(report)) => {
                let mut span = state.tracer.ctx(TraceId::mint()).child("store.compact");
                span.tag("victims", report.victims.to_string());
                span.tag("copied", report.copied.to_string());
                span.tag("reclaimed_bytes", report.reclaimed_bytes.to_string());
            }
            Err(e) => {
                let mut span = state.tracer.ctx(TraceId::mint()).child("store.compact");
                span.tag("error", e.to_string());
            }
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    state: &ServerState,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.queue_depth.add(1.0);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        state.metrics.queue_depth.add(-1.0);
                        reject_busy(state, stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping `tx` here closes the queue: workers drain what is already
    // enqueued, then exit on the closed channel.
}

/// Answer `503 + Retry-After` without occupying a worker.
fn reject_busy(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    // Drain the request head before answering: closing with unread bytes in
    // the receive buffer sends an RST that can discard the in-flight 503.
    let mut stream = stream;
    let mut buf = [0u8; 1024];
    loop {
        match io::Read::read(&mut stream, &mut buf) {
            Ok(n) if n > 0 => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    let response = Response::busy(state.config.retry_after_s);
    state.metrics.requests.inc();
    state.metrics.connections.inc();
    state.metrics.count_status(response.status);
    let _ = response.write_to(&mut stream);
}

fn worker_loop(
    state: &ServerState,
    rx: &RankedMutex<Receiver<TcpStream>>,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    loop {
        let next = rx.lock().recv();
        let Ok(stream) = next else { break };
        state.metrics.queue_depth.add(-1.0);
        handle_connection(state, &stream, read_timeout, shutdown);
    }
}

/// Serve sequential keep-alive requests from one connection until the
/// client closes (or asks to), an error or idle timeout occurs, the
/// per-connection request cap is reached, or shutdown begins.
fn handle_connection(
    state: &ServerState,
    stream: &TcpStream,
    read_timeout: Duration,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    state.metrics.connections.inc();

    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    loop {
        let request = http::read_request(&mut reader);
        let start = Instant::now();
        let (response, client_close) = match request {
            Ok(request) => {
                state.metrics.requests.inc();
                if served > 0 {
                    state.metrics.keepalive_reuses.inc();
                }
                // One trace id per request: propagated from the gateway via
                // the x-cactus-trace header, or minted here when the client
                // hit this tier directly. The serve.request span roots this
                // tier's span tree; handlers hang sub-spans off its ctx.
                let trace = request.trace_id().unwrap_or_else(TraceId::mint);
                let mut span = state.tracer.ctx(trace).child("serve.request");
                span.tag("path", request.path.clone());
                // A panicking handler must not kill the worker thread;
                // convert it into a 500 and keep serving.
                let response = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    routes::respond(state, &request, span.ctx())
                }))
                .unwrap_or_else(|_| Response::error(500, "internal error: handler panicked"));
                span.tag("status", response.status.to_string());
                (response.traced(trace), request.wants_close())
            }
            // Clean close or idle timeout between requests: nothing to answer.
            Err(HttpError::ClosedEarly | HttpError::Io(_)) => return,
            // A malformed head gets its 400, then the connection closes
            // (framing can no longer be trusted).
            Err(e) => {
                state.metrics.requests.inc();
                let response = Response::error(400, format!("bad request: {e}"));
                state.metrics.count_status(response.status);
                let mut out = stream;
                let _ = response.write_to(&mut out);
                return;
            }
        };

        served += 1;
        let keep_alive =
            !client_close && served < KEEP_ALIVE_MAX && !shutdown.load(Ordering::SeqCst);
        let mut out = stream;
        let write_result = response.write_conn(&mut out, keep_alive);
        let _ = out.flush();
        state.metrics.count_status(response.status);
        let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record_latency_us(elapsed_us);
        if !keep_alive || write_result.is_err() {
            return;
        }
    }
}
