//! Property tests over the HTTP request-head parser.
//!
//! Three properties, each over generated inputs:
//!
//! * **Round-trip** — any well-formed request head (random path segments,
//!   optional query, random headers whose values may contain `:`)
//!   serializes to the wire and parses back to exactly the fields that went
//!   in, with header names lowercased and values trimmed.
//! * **Totality** — arbitrary bytes never panic the parser; they produce
//!   `Ok` or a typed `HttpError`, nothing else.
//! * **Strictness** — request lines with whitespace abuse (double or
//!   leading spaces, tabs, extra tokens) are rejected as `Malformed`, never
//!   silently reinterpreted.

use std::io::BufReader;

use cactus_serve::http::{read_request, HttpError};
use proptest::prelude::*;

const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~";
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-";
/// Header-value alphabet deliberately includes `:` (URLs, IPv6 literals)
/// and spaces — the parser must split on the *first* colon only and trim.
const VALUE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 :;=/,.-_()";

/// A random string over `chars` with length drawn from `len`.
fn charset_string(
    chars: &'static [u8],
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..chars.len(), len)
        .prop_map(move |idxs| idxs.into_iter().map(|i| chars[i] as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn well_formed_heads_round_trip(
        segments in prop::collection::vec(charset_string(PATH_CHARS, 1..8), 1..5),
        headers in prop::collection::vec(
            (charset_string(NAME_CHARS, 1..10), charset_string(VALUE_CHARS, 0..24)),
            0..6,
        ),
        with_query in 0u32..2,
    ) {
        let path = format!("/{}", segments.join("/"));
        let query = "device=rtx-3080&threshold=0.7";
        let target = if with_query == 1 {
            format!("{path}?{query}")
        } else {
            path.clone()
        };
        let mut wire = format!("GET {target} HTTP/1.1\r\n");
        for (name, value) in &headers {
            wire.push_str(&format!("{name}: {value}\r\n"));
        }
        wire.push_str("\r\n");

        let mut reader = BufReader::new(wire.as_bytes());
        let request = read_request(&mut reader).expect("well-formed head must parse");
        prop_assert_eq!(&request.method, "GET");
        prop_assert_eq!(&request.path, &path);
        prop_assert_eq!(
            request.query.as_deref(),
            (with_query == 1).then_some(query)
        );
        prop_assert_eq!(request.headers.len(), headers.len());
        for ((parsed_name, parsed_value), (name, value)) in request.headers.iter().zip(&headers) {
            prop_assert_eq!(parsed_name, &name.to_ascii_lowercase());
            prop_assert_eq!(parsed_value, value.trim());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let mut reader = BufReader::new(bytes.as_slice());
        // Ok or a typed error — reaching this line at all is the property.
        let _ = read_request(&mut reader);
    }

    #[test]
    fn whitespace_abuse_is_malformed(kind in 0usize..6, seg in charset_string(PATH_CHARS, 1..8)) {
        let line = match kind {
            0 => format!("GET  /{seg} HTTP/1.1"),        // double space
            1 => format!("GET /{seg}  HTTP/1.1"),        // double space before version
            2 => format!(" GET /{seg} HTTP/1.1"),        // leading space
            3 => format!("GET\t/{seg} HTTP/1.1"),        // tab separator
            4 => format!("GET /{seg} HTTP/1.1 "),        // trailing space
            _ => format!("GET /{seg} HTTP/1.1 smuggled"), // extra token
        };
        let wire = format!("{line}\r\n\r\n");
        let mut reader = BufReader::new(wire.as_bytes());
        match read_request(&mut reader) {
            Err(HttpError::Malformed(_)) => {}
            other => panic!("{line:?} must be rejected as malformed, got {other:?}"),
        }
    }
}
