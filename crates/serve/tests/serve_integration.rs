//! End-to-end tests over a live loopback server: routing, typed round-trips,
//! the single-flight acceptance criterion, backpressure, store integration,
//! and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use cactus_bench::store::save_set_in;
use cactus_bench::ProfiledWorkload;
use cactus_core::SuiteScale;
use cactus_serve::client::ClientError;
use cactus_serve::{Client, DeviceId, ProfileQuery, ServeConfig, Server, SimilarQuery};

/// Resolve a catalog id for query literals.
fn dev(slug: &str) -> DeviceId {
    DeviceId::resolve(slug).expect("catalog id")
}

/// A server on an ephemeral port with a unique empty store directory.
fn start(workers: usize, queue: usize) -> (Server, Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "cactus-serve-it-{}-{workers}-{queue}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers,
        queue,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral loopback server");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(120));
    (server, client, dir)
}

fn metric(client: &Client, name: &str) -> f64 {
    client
        .metrics()
        .expect("metrics")
        .get(name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn healthz_metrics_and_unknown_routes() {
    let (server, client, dir) = start(2, 16);

    assert!(client.healthz().expect("healthz"));
    assert!(metric(&client, "cactus_serve_requests_total") >= 1.0);

    // Unknown paths and bad triples are 404 with a hint; bad methods 405.
    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(
        client
            .get("/v1/profile/rtx-9999/tiny/GMS")
            .expect("bad device")
            .status,
        404
    );
    assert_eq!(
        client
            .get("/v1/profile/rtx-3080/tiny/NOPE")
            .expect("bad workload")
            .status,
        404
    );
    assert_eq!(
        client
            .get("/v1/dominant/rtx-3080/tiny/GMS?threshold=7")
            .expect("bad threshold")
            .status,
        400
    );
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "POST /healthz HTTP/1.1\r\n\r\n").expect("send");
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 405"), "got {raw:?}");

    // The catalog lists both suites.
    let catalog = client.get("/v1/workloads").expect("catalog");
    assert_eq!(catalog.status, 200);
    assert!(catalog.body.contains("Cactus,GMS"));
    assert!(catalog.body.contains("Parboil"));

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_round_trip_matches_local_simulation() {
    let (server, client, dir) = start(2, 16);

    let served = client
        .profile(ProfileQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
        })
        .expect("served profile");
    let local = cactus_core::run("GMS", SuiteScale::Tiny);
    assert_eq!(
        served, local,
        "served profile must equal a local simulation"
    );

    // CSV endpoints agree on the kernel set.
    let kernels = client
        .get("/v1/kernels/rtx-3080/tiny/GMS")
        .expect("kernels");
    assert_eq!(kernels.status, 200);
    assert_eq!(
        kernels.body.lines().count() - 1,
        local.kernels().len(),
        "one CSV row per kernel"
    );
    let roofline = client
        .get("/v1/roofline/rtx-3080/tiny/GMS")
        .expect("roofline");
    assert_eq!(roofline.status, 200);
    assert!(roofline.body.starts_with("kernel,instruction_intensity"));
    let dominant = client
        .get("/v1/dominant/rtx-3080/tiny/GMS?threshold=0.5")
        .expect("dominant");
    assert_eq!(dominant.status, 200);
    assert!(
        dominant.body.lines().count() >= 2,
        "at least one dominant kernel"
    );

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance criterion: 8 concurrent clients requesting the same
/// uncached triple produce exactly one simulation and byte-identical
/// bodies; a second wave is served entirely from the response cache.
#[test]
fn single_flight_coalesces_concurrent_identical_requests() {
    let (server, client, dir) = start(8, 64);
    let addr = server.addr();

    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 0.0);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let client = Client::new(addr).with_timeout(Duration::from_secs(240));
                let reply = client
                    .get("/v1/profile/rtx-3080/tiny/GMS")
                    .expect("coalesced request");
                assert_eq!(reply.status, 200);
                reply.body
            })
        })
        .collect();
    let bodies: Vec<String> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    assert!(
        bodies[0].contains("kernel"),
        "profile body: {:?}",
        &bodies[0][..60]
    );
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "all coalesced bodies must be byte-identical"
        );
    }
    assert_eq!(
        metric(&client, "cactus_serve_simulations_total"),
        1.0,
        "8 concurrent identical requests must cost exactly 1 simulation"
    );

    // Second wave: answered from the LRU, still exactly one simulation.
    let hits_before = metric(&client, "cactus_serve_cache_hits_total");
    for _ in 0..3 {
        let reply = client
            .get("/v1/profile/rtx-3080/tiny/GMS")
            .expect("cached request");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, bodies[0]);
    }
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 1.0);
    assert!(metric(&client, "cactus_serve_cache_hits_total") >= hits_before + 3.0);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Keep-alive: one client connection carries sequential requests, and the
/// server's connection/reuse counters show it.
#[test]
fn keep_alive_connection_reuses_one_stream() {
    let (server, client, dir) = start(2, 16);

    let mut conn = client.connection();
    for _ in 0..3 {
        let reply = conn.get("/healthz").expect("keep-alive request");
        assert_eq!(reply.status, 200);
    }
    assert_eq!(conn.dials(), 1, "three requests over one dial");
    assert_eq!(conn.reuses(), 2);

    let connections = metric(&client, "cactus_serve_connections_total");
    let reuses = metric(&client, "cactus_serve_keepalive_reuses_total");
    assert!(
        reuses >= 2.0,
        "server must count reused keep-alive requests, saw {reuses}"
    );
    // The keep-alive conn plus the two one-shot metric scrapes.
    assert!(connections >= 2.0, "saw {connections}");

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A saturated worker pool answers `503 + Retry-After` immediately rather
/// than hanging: one worker and a one-slot queue are pinned down by idle
/// connections (the worker blocks in its read timeout), so the next
/// connection must be rejected by the accept thread.
#[test]
fn saturated_pool_returns_503_with_retry_after() {
    let dir = std::env::temp_dir().join(format!("cactus-serve-it-busy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers: 1,
        queue: 1,
        retry_after_s: 2,
        read_timeout: Duration::from_secs(20),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Pin down the worker and fill the queue with connections that send
    // nothing: the worker blocks reading the first, the second waits in the
    // queue.
    let idle: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    // Give the accept thread time to enqueue both.
    std::thread::sleep(Duration::from_millis(300));

    let client = Client::new(addr).with_timeout(Duration::from_secs(5));
    let mut saw_busy = false;
    for _ in 0..10 {
        match client.get("/healthz") {
            Ok(reply) if reply.status == 503 => {
                assert_eq!(reply.retry_after_s(), Some(2), "503 must carry Retry-After");
                saw_busy = true;
                break;
            }
            Ok(_) | Err(ClientError::Io(_)) => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
    }
    assert!(saw_busy, "a saturated server must answer 503, not hang");

    drop(idle);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown drains: a request already in flight when shutdown is requested
/// still gets its response before `join()` returns.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (server, _client, dir) = start(2, 16);
    let addr = server.addr();

    let in_flight = std::thread::spawn(move || {
        let client = Client::new(addr).with_timeout(Duration::from_secs(240));
        client
            .get("/v1/profile/rtx-3080/tiny/DCG")
            .expect("in-flight request")
    });
    // Let the request reach a worker, then request shutdown while the
    // simulation is (plausibly) still running.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    server.join();

    let reply = in_flight.join().expect("client thread");
    assert_eq!(
        reply.status, 200,
        "in-flight request must complete during drain"
    );

    // The listener is closed: new connections are refused.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Profile-scale requests for rtx-3080 are served from durable storage
/// when a legacy set exists, without simulating: the set is imported into
/// the store on open and the startup warmer pre-loads the response cache
/// from it, so the very first request is an LRU hit.
#[test]
fn store_backed_profiles_skip_simulation() {
    let dir = std::env::temp_dir().join(format!("cactus-serve-it-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seeded = cactus_core::run("GMS", SuiteScale::Tiny);
    save_set_in(
        &dir,
        "cactus",
        &[ProfiledWorkload {
            name: "GMS".to_owned(),
            suite: "Cactus".to_owned(),
            profile: seeded.clone(),
            memo: None,
        }],
    )
    .expect("seed store");

    let server = Server::start(ServeConfig {
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(120));

    let served = client
        .profile(ProfileQuery {
            device: dev("rtx-3080"),
            scale: "profile",
            workload: "GMS",
        })
        .expect("store-backed profile");
    assert_eq!(served, seeded, "store round-trip must be bit-exact");
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 0.0);
    // The warmer answered from the LRU, so the store level itself was
    // never consulted at request time — it was read once at startup.
    assert_eq!(metric(&client, "cactus_serve_store_hits_total"), 0.0);
    assert!(metric(&client, "cactus_serve_cache_hits_total") >= 1.0);
    assert!(metric(&client, "cactus_store_imported_total") >= 1.0);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The raw store surface end to end: manifest and statz pages render, a
/// record GET answers the stored bytes verbatim, and a record POST
/// ingests a document that later profile requests serve without
/// simulating (the path gateway replication and anti-entropy use).
#[test]
fn store_endpoints_round_trip() {
    let (server, client, dir) = start(2, 16);

    // Simulate once so the store holds a record.
    let profile = client
        .profile(ProfileQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
        })
        .expect("profile");

    let manifest = client.get("/v1/store/manifest").expect("manifest");
    assert_eq!(manifest.status, 200);
    assert!(
        manifest.body.starts_with("cactus-store manifest v1\n"),
        "got {}",
        manifest.body
    );
    assert!(manifest.body.contains("rtx-3080/tiny/GMS"));

    let statz = client.get("/v1/store/statz").expect("statz");
    assert_eq!(statz.status, 200);
    assert!(statz.body.contains("live_records 1"), "got {}", statz.body);

    // The raw record is byte-identical to the profile endpoint's body.
    let key = "rtx-3080/tiny/GMS";
    let record = client
        .get(&format!("/v1/store/record/{key}"))
        .expect("record");
    assert_eq!(record.status, 200);
    let body = client.get("/v1/profile/rtx-3080/tiny/GMS").expect("body");
    assert_eq!(record.body, body.body);

    // POST the document under another key: the next profile request for
    // that triple is a store hit, not a second simulation.
    let small = "rtx-3080/small/GMS";
    let posted = client
        .post_traced(&format!("/v1/store/record/{small}"), &record.body, None)
        .expect("post");
    assert_eq!(posted.status, 200, "got {}", posted.body);
    let replicated = client
        .profile(ProfileQuery {
            device: dev("rtx-3080"),
            scale: "small",
            workload: "GMS",
        })
        .expect("replicated profile");
    assert_eq!(replicated, profile);
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 1.0);
    assert_eq!(metric(&client, "cactus_serve_store_hits_total"), 1.0);

    // Garbage documents are rejected; absent records 404 without
    // falling through to simulation.
    let bad = client
        .post_traced(
            "/v1/store/record/rtx-3080/tiny/BAD",
            "not a profile\n",
            None,
        )
        .expect("bad post");
    assert_eq!(bad.status, 400);
    let missing = client
        .get("/v1/store/record/rtx-3080/tiny/SRAD")
        .expect("missing record");
    assert_eq!(missing.status, 404);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/v1/similar` end to end: the first reference query lazily fits the
/// encoder and seeds the index from the profile's kernels, the query
/// kernel comes back at distance zero, inline vector queries work once
/// seeded (and 400 before), stats and scraped gauges reflect the corpus,
/// and the span tree lands in `/v1/tracez`.
#[test]
fn similar_queries_ingest_search_and_trace_end_to_end() {
    let (server, client, dir) = start(2, 16);

    // Before any ingest the index is empty: inline vector queries answer
    // 400 with a seeding hint, and the stats page says so.
    let err = client
        .similar_vector(&[1.0; cactus_simindex::VECTOR_DIMS], Some(3))
        .expect_err("unseeded index must reject vector queries");
    assert_eq!(err.status(), Some(400), "got {err}");
    let stats = client.get("/v1/similar/stats").expect("stats");
    assert_eq!(stats.status, 200);
    assert!(
        stats.body.starts_with("fitted false"),
        "unseeded stats: {:?}",
        stats.body
    );

    // A traced reference query seeds the index from the GMS/tiny profile
    // and must find the query kernel itself at distance zero.
    let trace = cactus_obs::TraceId::mint();
    let reply = client
        .get_traced(
            "/v1/similar?device=rtx-3080&scale=tiny&workload=GMS&k=3",
            Some(trace),
        )
        .expect("reference similar");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(
        reply.body.contains("# query: rtx-3080/tiny/GMS/"),
        "query comment missing: {}",
        reply.body
    );

    let hits = client
        .similar(SimilarQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
            kernel: None,
            k: Some(5),
        })
        .expect("typed similar");
    assert!(!hits.is_empty());
    assert_eq!(hits[0].rank, 1);
    assert_eq!(hits[0].distance, 0.0, "self-match must be exact");
    assert!(
        hits[0].id.starts_with("rtx-3080/tiny/GMS/"),
        "top hit {:?}",
        hits[0].id
    );
    assert!(
        hits.windows(2).all(|w| w[0].distance <= w[1].distance),
        "distances must ascend: {hits:?}"
    );

    // Naming a stored kernel searches for that kernel; an unknown name
    // is 404.
    let local = cactus_core::run("GMS", SuiteScale::Tiny);
    let first = &local.kernels()[0];
    let named = client
        .similar(SimilarQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
            kernel: Some(&first.name),
            k: Some(5),
        })
        .expect("named-kernel similar");
    let own_id = format!("rtx-3080/tiny/GMS/{}", first.name);
    assert_eq!(named[0].distance, 0.0);
    assert!(
        named.iter().any(|h| h.id == own_id && h.distance == 0.0),
        "named kernel must match itself: {named:?}"
    );
    let err = client
        .similar(SimilarQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
            kernel: Some("no-such-kernel"),
            k: None,
        })
        .expect_err("unknown kernel");
    assert_eq!(err.status(), Some(404), "got {err}");

    // The raw metric vector of a stored kernel, sent inline, encodes to
    // the same point: it must come back at distance zero.
    let inline = client
        .similar_vector(&first.metrics.vector(), Some(5))
        .expect("inline vector similar");
    assert_eq!(inline[0].distance, 0.0);
    assert!(
        inline.iter().any(|h| h.id == own_id && h.distance == 0.0),
        "inline vector must rediscover its kernel: {inline:?}"
    );

    // Stats and scraped gauges reflect the seeded corpus: one vector per
    // distinct kernel name, and every query above was counted.
    let stats = client.get("/v1/similar/stats").expect("stats").body;
    assert!(stats.starts_with("fitted true"), "seeded stats: {stats:?}");
    assert!(
        stats.contains("proxies "),
        "proxy subset missing: {stats:?}"
    );
    let distinct: std::collections::BTreeSet<&str> =
        local.kernels().iter().map(|k| k.name.as_str()).collect();
    assert_eq!(
        metric(&client, "cactus_simindex_size"),
        distinct.len() as f64
    );
    assert!(metric(&client, "cactus_simindex_queries_total") >= 4.0);
    assert!(metric(&client, "cactus_simindex_inserts_total") >= 1.0);

    // The traced request's span tree is in the ring.
    let tracez = client
        .get(&format!("/v1/tracez?trace={trace}"))
        .expect("tracez");
    assert_eq!(tracez.status, 200);
    for span in ["serve.similar", "simindex.encode", "simindex.search"] {
        assert!(
            tracez.body.contains(span),
            "span {span} missing from trace: {}",
            tracez.body
        );
    }

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The heterogeneous surface: a backend started with a device subset
/// advertises exactly that subset, serves only those devices, and answers
/// catalog triples outside its subset with the 404 envelope.
#[test]
fn device_subset_is_advertised_and_gated() {
    let dir = std::env::temp_dir().join(format!("cactus-serve-it-devices-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers: 2,
        queue: 16,
        store_dir: Some(dir.clone()),
        devices: vec!["rtx-3060".to_owned(), "uhd-630".to_owned()],
        ..ServeConfig::default()
    })
    .expect("bind");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(120));

    // /v1/healthz advertises the modeled subset after the `ok` line.
    let health = client.get("/v1/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\ndevices rtx-3060 uhd-630\n");
    assert_eq!(
        cactus_serve::parse_health_devices(&health.body),
        Some(vec!["rtx-3060".to_owned(), "uhd-630".to_owned()])
    );

    // /v1/devices lists the whole catalog, flagging the modeled subset.
    let devices = client.devices().expect("devices page");
    assert_eq!(devices.len(), cactus_gpu::CATALOG.len());
    let modeled: Vec<&str> = devices
        .iter()
        .filter(|d| d.modeled)
        .map(|d| d.id.as_str())
        .collect();
    assert_eq!(modeled, ["rtx-3060", "uhd-630"]);
    for d in &devices {
        assert!(d.peak_gips > 0.0, "{}: ceilings must be positive", d.id);
        assert!(d.peak_gtxn_per_s > 0.0);
        assert!(d.store_version.starts_with("2."), "{}", d.store_version);
    }

    // A catalog device outside the subset: 404 envelope, not a simulation.
    let err = client
        .profile(ProfileQuery {
            device: dev("rtx-3080"),
            scale: "tiny",
            workload: "GMS",
        })
        .expect_err("unmodeled device");
    match err {
        ClientError::Api(e) => {
            assert_eq!(e.code, 404);
            assert!(e.message.contains("not modeled"), "{}", e.message);
            assert!(e.message.contains("rtx-3060"), "{}", e.message);
        }
        other => panic!("expected the JSON envelope, got {other:?}"),
    }
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 0.0);

    // A modeled device simulates as usual.
    let profile = client
        .profile(ProfileQuery {
            device: dev("uhd-630"),
            scale: "tiny",
            workload: "GMS",
        })
        .expect("modeled device");
    assert!(!profile.kernels().is_empty());

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A slug that is not in the catalog at all never leaves the client: the
/// typed `DeviceId` constructor answers the same 404 envelope locally.
#[test]
fn unknown_device_ids_fail_at_the_client() {
    let err = DeviceId::resolve("rtx-9090").expect_err("not a catalog id");
    match err {
        ClientError::Api(e) => {
            assert_eq!(e.code, 404);
            assert!(e.message.contains("rtx-9090"), "{}", e.message);
            assert!(e.message.contains("rtx-3080"), "{}", e.message);
        }
        other => panic!("expected the JSON envelope, got {other:?}"),
    }
    assert_eq!(
        dev("RTX-3080").as_str(),
        "rtx-3080",
        "ids are canonicalized"
    );
}

/// The pre-`/v1` aliases still answer, but carry deprecation headers and
/// tick the legacy counter; the `/v1` spellings carry neither.
#[test]
fn legacy_aliases_carry_deprecation_headers() {
    let (server, client, dir) = start(2, 16);

    let legacy = client.get("/healthz").expect("legacy alias");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.body.lines().next(), Some("ok"));
    assert_eq!(legacy.header("deprecation"), Some("true"));
    assert_eq!(
        legacy.header("link"),
        Some("</v1/healthz>; rel=\"successor-version\"")
    );

    let legacy_metrics = client.get("/metricsz").expect("legacy metrics alias");
    assert_eq!(legacy_metrics.status, 200);
    assert_eq!(legacy_metrics.header("deprecation"), Some("true"));
    assert_eq!(
        legacy_metrics.header("link"),
        Some("</v1/metricsz>; rel=\"successor-version\"")
    );

    let current = client.get("/v1/healthz").expect("v1 healthz");
    assert_eq!(current.status, 200);
    assert_eq!(current.header("deprecation"), None);
    assert_eq!(current.header("link"), None);

    assert_eq!(metric(&client, "cactus_serve_legacy_requests_total"), 2.0);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `POST /v1/workloads` end to end: an invalid definition is refused with
/// `422` and line-accurate findings, a valid one registers, lists, serves
/// profiles through the ordinary triple routes, and survives a restart
/// from the durable store — bit-identical to a direct interpretation.
#[test]
fn workload_submission_validates_persists_and_serves() {
    let (server, client, dir) = start(2, 16);

    // Seeded defect: unknown kernel on line 2 — the types pass refuses it.
    let bad = "workload \"bad\" {\n  run { launch ghost; }\n}\n";
    let reply = client
        .post_traced("/v1/workloads", bad, None)
        .expect("post invalid");
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert!(reply.body.contains("\"findings\":["), "{}", reply.body);
    assert!(reply.body.contains("\"pass\":\"types\""), "{}", reply.body);
    assert!(reply.body.contains("\"line\":2"), "{}", reply.body);
    assert_eq!(
        metric(&client, "cactus_serve_workloads_rejected_total"),
        1.0
    );
    assert_eq!(metric(&client, "cactus_wir_definitions"), 0.0);

    // A built-in name cannot be shadowed.
    let clash = "workload \"gms\" {\n  kernel k { launch grid(1, 128); }\n  run { launch k; }\n}\n";
    let reply = client
        .post_traced("/v1/workloads", clash, None)
        .expect("post clash");
    assert_eq!(reply.status, 400, "{}", reply.body);

    // The shipped GNN definition is accepted and immediately servable.
    let gnn = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../wir/defs/gnn.wir"),
    )
    .expect("gnn def");
    let reply = client
        .post_traced("/v1/workloads", &gnn, None)
        .expect("post gnn");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.body.contains("registered workload \"gnn\""),
        "{}",
        reply.body
    );
    assert_eq!(
        metric(&client, "cactus_serve_workloads_submitted_total"),
        1.0
    );
    assert_eq!(metric(&client, "cactus_wir_definitions"), 1.0);

    // The cached catalog was invalidated and now lists the submission.
    let catalog = client.get("/v1/workloads").expect("catalog");
    assert!(catalog.body.contains("WIR,gnn"), "{}", catalog.body);

    // Profiles route like built-ins and match a direct interpretation of
    // the same definition byte for byte.
    let served = client
        .get("/v1/profile/rtx-3080/tiny/gnn")
        .expect("gnn profile");
    assert_eq!(served.status, 200, "{}", served.body);
    let def =
        cactus_wir::analyze(&gnn, &cactus_wir::CostCeilings::default()).expect("gnn validates");
    let mut gpu = cactus_gpu::Gpu::new(cactus_gpu::Device::rtx3080());
    cactus_wir::run(&def, Some("tiny"), &mut gpu).expect("interpret");
    let local = cactus_profiler::Profile::from_records(gpu.records());
    assert_eq!(
        served.body,
        cactus_profiler::store::write_profile(&local),
        "served IR profile must equal a direct interpretation"
    );

    // Resubmission replaces, not duplicates.
    let reply = client
        .post_traced("/v1/workloads", &gnn, None)
        .expect("post gnn again");
    assert_eq!(reply.status, 200);
    assert!(
        reply.body.contains("replaced workload \"gnn\""),
        "{}",
        reply.body
    );

    server.join();

    // Restart over the same store: the definition reloads and its profile
    // is answered from the durable store without re-simulation.
    let server = Server::start(ServeConfig {
        workers: 2,
        queue: 16,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("restart");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(120));
    assert_eq!(metric(&client, "cactus_wir_definitions"), 1.0);
    let replayed = client
        .get("/v1/profile/rtx-3080/tiny/gnn")
        .expect("gnn profile after restart");
    assert_eq!(replayed.status, 200, "{}", replayed.body);
    assert_eq!(replayed.body, served.body, "restart must not change bytes");
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 0.0);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replacing a definition by re-POSTing under the same name must not keep
/// serving results computed from the old definition: cached responses are
/// dropped and stored profiles superseded, so the next read re-simulates
/// under the replacement. A byte-identical resubmission keeps the stored
/// profiles (same bytes would be re-derived anyway).
#[test]
fn replacing_a_definition_invalidates_cached_and_stored_profiles() {
    let (server, client, dir) = start(4, 16);

    let v1 = "workload \"swap\" { kernel a { mix { int = 1000; } } \
              run { repeat 4 { launch a; } } }";
    let reply = client
        .post_traced("/v1/workloads", v1, None)
        .expect("post v1");
    assert_eq!(reply.status, 200, "{}", reply.body);

    let first = client
        .get("/v1/profile/rtx-3080/tiny/swap")
        .expect("v1 profile");
    assert_eq!(first.status, 200, "{}", first.body);
    let dominant = client
        .get("/v1/dominant/rtx-3080/tiny/swap")
        .expect("v1 dominant");
    assert_eq!(dominant.status, 200, "{}", dominant.body);
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 1.0);

    // Byte-identical resubmission replaces the registry entry but keeps
    // the stored profile: the re-read is a store hit, not a simulation.
    let reply = client
        .post_traced("/v1/workloads", v1, None)
        .expect("repost v1");
    assert!(reply.body.contains("replaced"), "{}", reply.body);
    let unchanged = client
        .get("/v1/profile/rtx-3080/tiny/swap")
        .expect("profile after identical repost");
    assert_eq!(unchanged.body, first.body);
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 1.0);

    // A changed definition supersedes: the same routes now answer from a
    // fresh simulation of the new definition, not the old cache or store.
    let v2 = "workload \"swap\" { kernel a { mix { int = 1000; } } \
              run { repeat 8 { launch a; } } }";
    let reply = client
        .post_traced("/v1/workloads", v2, None)
        .expect("post v2");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("replaced"), "{}", reply.body);
    let second = client
        .get("/v1/profile/rtx-3080/tiny/swap")
        .expect("v2 profile");
    assert_eq!(second.status, 200, "{}", second.body);
    assert_ne!(
        second.body, first.body,
        "replacement must not serve the old definition's profile"
    );
    let dominant2 = client
        .get("/v1/dominant/rtx-3080/tiny/swap")
        .expect("v2 dominant");
    assert_ne!(
        dominant2.body, dominant.body,
        "derived views must be invalidated too"
    );
    assert_eq!(metric(&client, "cactus_serve_simulations_total"), 2.0);

    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
