//! Property tests pinning the batched trace-replay path to the scalar
//! simulator: for any geometry (including non-power-of-two set counts and
//! every associativity the model supports) and any synthetic access
//! pattern, `access_batch_record` must produce the exact per-access
//! hit/miss stream the scalar `access` loop produces — not just the same
//! totals. The batched path's counting-sort partition, SIMD tag compare,
//! rank-based LRU replay and warm-run deferral are all invisible if and
//! only if these properties hold.

use cactus_gpu::access::AccessPattern;
use cactus_gpu::cache::{trace, SetAssocCache};
use cactus_gpu::device::CacheGeometry;

use proptest::prelude::*;

const LINE: u32 = 32;

fn geometry(sets: u64, assoc: u32) -> CacheGeometry {
    CacheGeometry {
        size_bytes: sets * u64::from(assoc) * u64::from(LINE),
        line_bytes: LINE,
        sector_bytes: LINE,
        associativity: assoc,
    }
}

/// Every `AccessPattern` variant, with sizes spanning "fits easily" to
/// "thrashes hard" relative to the generated geometries.
fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Streaming),
        (6u32..22).prop_map(|b| AccessPattern::RandomUniform {
            working_set_bytes: 1u64 << b,
        }),
        ((6u32..18), (1u32..6)).prop_map(|(b, s)| AccessPattern::Sweep {
            working_set_bytes: 1u64 << b,
            sweeps: s,
        }),
        ((0.0f64..1.0), (6u32..14), (12u32..22)).prop_map(|(f, h, c)| {
            AccessPattern::HotCold {
                hot_fraction: f,
                hot_bytes: 1u64 << h,
                cold_bytes: 1u64 << c,
            }
        }),
        (6u32..16).prop_map(|b| AccessPattern::Broadcast { bytes: 1u64 << b }),
    ]
}

/// Replay `addrs` through both paths on fresh caches of `geom`; require a
/// bit-identical outcome stream and identical counters.
fn assert_equivalent(geom: CacheGeometry, addrs: &[u64]) {
    let mut batched = SetAssocCache::new(geom);
    let mut got = Vec::new();
    batched.access_batch_record(addrs, &mut got);

    let mut scalar = SetAssocCache::new(geom);
    let expect: Vec<bool> = addrs.iter().map(|&a| scalar.access(a)).collect();

    assert_eq!(got, expect, "per-access hit/miss streams diverged");
    assert_eq!(batched.hits(), scalar.hits());
    assert_eq!(batched.misses(), scalar.misses());
    assert_eq!(batched.accesses(), addrs.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched replay is bit-identical to scalar for arbitrary geometries
    /// (1..400 sets — mostly non-powers-of-two — and associativity 1..=16)
    /// across every access-pattern family.
    #[test]
    fn batched_replay_is_bit_identical_to_scalar(
        sets in 1u64..400,
        assoc in 1u32..17,
        pattern in pattern_strategy(),
        n in 1usize..5000,
        seed in 0u64..1000,
    ) {
        let mut addrs = Vec::new();
        trace::generate_into(&pattern, LINE, n, seed, &mut addrs);
        assert_equivalent(geometry(sets, assoc), &addrs);
    }

    /// Interleaving batched and scalar accesses on one cache must land in
    /// the same state as the pure-scalar history.
    #[test]
    fn mixed_batch_and_scalar_history_converges(
        sets in 1u64..128,
        assoc in 1u32..9,
        n in 1usize..2000,
        seed in 0u64..500,
    ) {
        let pattern = AccessPattern::RandomUniform { working_set_bytes: 1 << 18 };
        let mut addrs = Vec::new();
        trace::generate_into(&pattern, LINE, n, seed, &mut addrs);
        let (head, tail) = addrs.split_at(addrs.len() / 2);

        let geom = geometry(sets, assoc);
        let mut mixed = SetAssocCache::new(geom);
        mixed.access_batch(head);
        for &a in tail {
            mixed.access(a);
        }

        let mut scalar = SetAssocCache::new(geom);
        for &a in &addrs {
            scalar.access(a);
        }
        prop_assert_eq!(mixed.hits(), scalar.hits());
        prop_assert_eq!(mixed.misses(), scalar.misses());
    }
}

/// Multi-chunk warm replay at the SIMD-specialized associativities: a
/// fitting working set leaves every set fully resident, which routes runs
/// through the register-resident tag lanes and the deferred pair-replay
/// path; the trace is long enough to span several internal batch chunks.
#[test]
fn warm_resident_multichunk_matches_scalar() {
    for assoc in [4u32, 8] {
        let sets = 512u64;
        let geom = geometry(sets, assoc);
        let pattern = AccessPattern::RandomUniform {
            // Half the cache: every set goes warm and stays resident.
            working_set_bytes: sets * u64::from(assoc) * u64::from(LINE) / 2,
        };
        let mut addrs = Vec::new();
        trace::generate_into(&pattern, LINE, 100_000, 42, &mut addrs);

        let mut batched = SetAssocCache::new(geom);
        let mut got = Vec::new();
        batched.access_batch_record(&addrs, &mut got);

        let mut scalar = SetAssocCache::new(geom);
        let expect: Vec<bool> = addrs.iter().map(|&a| scalar.access(a)).collect();
        assert_eq!(got, expect, "assoc {assoc}");
        assert_eq!(batched.hits(), scalar.hits(), "assoc {assoc}");
    }
}

/// Thrashing multi-chunk replay: runs are long and mostly missing, which
/// exercises the eviction/victim-selection half of the batched path across
/// chunk boundaries.
#[test]
fn thrashing_multichunk_matches_scalar() {
    let geom = geometry(96, 8); // non-pow2 set count at the SIMD width
    let pattern = AccessPattern::Sweep {
        working_set_bytes: 4 * 96 * 8 * u64::from(LINE),
        sweeps: 3,
    };
    let mut addrs = Vec::new();
    trace::generate_into(&pattern, LINE, 80_000, 9, &mut addrs);

    let mut batched = SetAssocCache::new(geom);
    let mut got = Vec::new();
    batched.access_batch_record(&addrs, &mut got);

    let mut scalar = SetAssocCache::new(geom);
    let expect: Vec<bool> = addrs.iter().map(|&a| scalar.access(a)).collect();
    assert_eq!(got, expect);
    assert_eq!(batched.misses(), scalar.misses());
}
