//! Property tests over the device model: for arbitrary kernel descriptors
//! the timing must be positive and finite, no kernel may beat its roofline,
//! all ratio metrics must stay in `[0, 1]`, and adding work must never make
//! a kernel faster.

use cactus_gpu::access::{AccessPattern, AccessStream};
use cactus_gpu::instmix::InstructionMix;
use cactus_gpu::kernel::KernelDesc;
use cactus_gpu::launch::LaunchConfig;
use cactus_gpu::{Device, Gpu};

use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Streaming),
        (1u64..1 << 26).prop_map(|ws| AccessPattern::RandomUniform {
            working_set_bytes: ws
        }),
        ((1u64..1 << 24), (1u32..16)).prop_map(|(ws, s)| AccessPattern::Sweep {
            working_set_bytes: ws,
            sweeps: s
        }),
        ((0.0f64..1.0), (1u64..1 << 18), (1u64..1 << 26)).prop_map(|(f, h, c)| {
            AccessPattern::HotCold {
                hot_fraction: f,
                hot_bytes: h,
                cold_bytes: c,
            }
        }),
        (1u64..1 << 16).prop_map(|b| AccessPattern::Broadcast { bytes: b }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        1u64..1 << 24, // threads
        32u32..1024,   // threads per block
        0u64..4096,    // fp32 per warp
        0u64..512,     // loads per warp
        1.0f64..32.0,  // coalescing
        arb_pattern(),
        0.0f64..1.0, // dependency fraction
    )
        .prop_map(|(n, tpb, fp, loads, txn, pattern, dep)| {
            let lc = LaunchConfig::linear(n, tpb);
            let warps = lc.total_warps();
            KernelDesc::builder("prop_kernel")
                .launch(lc)
                .mix(
                    InstructionMix::new()
                        .with_fp32(warps * fp)
                        .with_int(warps * 2)
                        .with_load(warps * loads),
                )
                .stream(AccessStream::raw(
                    cactus_gpu::access::Direction::Read,
                    warps * loads.max(1),
                    txn,
                    pattern,
                ))
                .dependency_fraction(dep)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timing is positive/finite and ratio metrics stay in range for any
    /// kernel shape.
    #[test]
    fn metrics_are_sane_for_arbitrary_kernels(kernel in arb_kernel()) {
        let mut gpu = Gpu::new(Device::rtx3080());
        let m = gpu.launch(&kernel).metrics;
        prop_assert!(m.duration_s > 0.0 && m.duration_s.is_finite());
        prop_assert!(m.gips >= 0.0 && m.gips.is_finite());
        prop_assert!(m.instruction_intensity >= 0.0);
        for v in [
            m.sm_efficiency, m.l1_hit_rate, m.l2_hit_rate, m.ldst_utilization,
            m.sp_utilization, m.fraction_branches, m.fraction_ldst,
            m.execution_stall, m.pipe_stall, m.sync_stall, m.memory_stall,
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "ratio {v}");
        }
        let total_stall =
            m.execution_stall + m.pipe_stall + m.sync_stall + m.memory_stall;
        prop_assert!(total_stall <= 1.0 + 1e-9, "stalls sum to {total_stall}");
        prop_assert!(m.warp_occupancy <= 48.0 + 1e-9);
    }

    /// No kernel beats the roofline: GIPS ≤ min(peak, II × GTXN/s).
    #[test]
    fn no_kernel_beats_its_roof(kernel in arb_kernel()) {
        let device = Device::rtx3080();
        let peak = device.peak_gips();
        let gtxn = device.peak_gtxn_per_s();
        let mut gpu = Gpu::new(device);
        let m = gpu.launch(&kernel).metrics;
        prop_assert!(m.gips <= peak * 1.0001, "{} > compute roof", m.gips);
        if m.dram_transactions >= 1.0 {
            let mem_roof = m.instruction_intensity * gtxn;
            prop_assert!(
                m.gips <= mem_roof.min(peak) * 1.02,
                "{} GIPS above roof {mem_roof}",
                m.gips
            );
        }
    }

    /// Adding FP32 work never makes a kernel finish sooner.
    #[test]
    fn more_work_is_never_faster(
        n in 1u64..1 << 22,
        fp in 1u64..2048,
        extra in 1u64..2048,
    ) {
        let lc = LaunchConfig::linear(n, 256);
        let warps = lc.total_warps();
        let run = |flops: u64| -> f64 {
            let k = KernelDesc::builder("k")
                .launch(lc)
                .mix(InstructionMix::new().with_fp32(warps * flops))
                .build();
            let mut gpu = Gpu::new(Device::rtx3080());
            gpu.launch(&k).metrics.duration_s
        };
        prop_assert!(run(fp + extra) >= run(fp) - 1e-15);
    }

    /// A larger grid of the same per-thread work never finishes sooner.
    #[test]
    fn more_threads_are_never_faster(n in 1u64..1 << 20, factor in 2u64..8) {
        let run = |threads: u64| -> f64 {
            let lc = LaunchConfig::linear(threads, 256);
            let warps = lc.total_warps();
            let k = KernelDesc::builder("k")
                .launch(lc)
                .mix(InstructionMix::new().with_fp32(warps * 64))
                .stream(AccessStream::read(threads, 4, AccessPattern::Streaming))
                .build();
            let mut gpu = Gpu::new(Device::rtx3080());
            gpu.launch(&k).metrics.duration_s
        };
        // Relative tolerance: ceil-based warp/load counts make the
        // per-warp instruction count wobble at the 1e-5 level.
        let (small, big) = (run(n), run(n * factor));
        prop_assert!(big >= small * (1.0 - 1e-3), "{small} -> {big}");
    }

    /// The trace serializer round-trips arbitrary launches.
    #[test]
    fn trace_roundtrip(kernel in arb_kernel()) {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&kernel);
        let text = cactus_gpu::tracefile::serialize(gpu.records());
        let parsed = cactus_gpu::tracefile::parse(&text).expect("roundtrip");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(
            parsed[0].metrics.warp_instructions,
            gpu.records()[0].metrics.warp_instructions
        );
    }
}
