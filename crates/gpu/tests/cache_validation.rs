//! Validation of the analytic cache model against the trace-driven
//! set-associative simulator — the "analytic vs. trace-driven" ablation
//! called out in DESIGN.md.
//!
//! For each access pattern we generate a synthetic block-granular trace,
//! replay it through [`SetAssocCache`] (configured at sector granularity, as
//! the analytic model assumes for sectored GPU caches), and require the
//! closed-form hit rate to land within a tolerance band of the measured one.

use cactus_gpu::access::AccessPattern;
use cactus_gpu::cache::analytic;
use cactus_gpu::cache::trace;
use cactus_gpu::cache::SetAssocCache;
use cactus_gpu::device::CacheGeometry;

use proptest::prelude::*;

const BLOCK: u32 = 32;

/// Sector-granular cache with the given capacity in blocks.
fn sector_cache(capacity_blocks: u64, associativity: u32) -> SetAssocCache {
    SetAssocCache::new(CacheGeometry {
        size_bytes: capacity_blocks * u64::from(BLOCK),
        line_bytes: BLOCK,
        sector_bytes: BLOCK,
        associativity,
    })
}

fn measured_hit_rate(pattern: &AccessPattern, capacity_blocks: u64, n: usize, seed: u64) -> f64 {
    // One trace buffer per test thread, reused across every validation
    // case; replay goes through the batched path (bit-identical to scalar,
    // see tests/batch_equivalence.rs).
    thread_local! {
        static BUF: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    BUF.with(|buf| {
        let mut addrs = buf.borrow_mut();
        trace::generate_into(pattern, BLOCK, n, seed, &mut addrs);
        let mut cache = sector_cache(capacity_blocks, 8);
        cache.access_batch(&addrs);
        cache.hit_rate()
    })
}

fn analytic_hit_rate(pattern: &AccessPattern, capacity_blocks: u64, n: usize) -> f64 {
    analytic::hit_rate(pattern, capacity_blocks as f64, BLOCK, n as f64)
}

#[test]
fn streaming_matches_simulator() {
    let pat = AccessPattern::Streaming;
    let m = measured_hit_rate(&pat, 1024, 50_000, 1);
    let a = analytic_hit_rate(&pat, 1024, 50_000);
    assert!(m < 1e-9, "simulator measured {m}");
    assert!((m - a).abs() < 1e-9);
}

#[test]
fn fitting_random_matches_simulator() {
    let pat = AccessPattern::RandomUniform {
        working_set_bytes: 512 * u64::from(BLOCK),
    };
    let m = measured_hit_rate(&pat, 2048, 100_000, 2);
    let a = analytic_hit_rate(&pat, 2048, 100_000);
    assert!((m - a).abs() < 0.02, "measured {m}, analytic {a}");
}

#[test]
fn oversized_random_matches_simulator() {
    // Working set 4x the cache: steady-state hit ≈ 1/4.
    let pat = AccessPattern::RandomUniform {
        working_set_bytes: 4096 * u64::from(BLOCK),
    };
    let m = measured_hit_rate(&pat, 1024, 200_000, 3);
    let a = analytic_hit_rate(&pat, 1024, 200_000);
    assert!((m - a).abs() < 0.03, "measured {m}, analytic {a}");
}

#[test]
fn fitting_sweep_matches_simulator() {
    let ws_blocks = 700u64;
    let sweeps = 10u32;
    let n = (ws_blocks * u64::from(sweeps)) as usize;
    let pat = AccessPattern::Sweep {
        working_set_bytes: ws_blocks * u64::from(BLOCK),
        sweeps,
    };
    let m = measured_hit_rate(&pat, 1024, n, 4);
    let a = analytic_hit_rate(&pat, 1024, n);
    assert!((m - a).abs() < 0.02, "measured {m}, analytic {a}");
}

#[test]
fn thrashing_sweep_matches_simulator() {
    let ws_blocks = 3000u64;
    let sweeps = 5u32;
    let n = (ws_blocks * u64::from(sweeps)) as usize;
    let pat = AccessPattern::Sweep {
        working_set_bytes: ws_blocks * u64::from(BLOCK),
        sweeps,
    };
    let m = measured_hit_rate(&pat, 1024, n, 5);
    let a = analytic_hit_rate(&pat, 1024, n);
    assert!(m < 0.02, "cyclic LRU should thrash, measured {m}");
    assert!((m - a).abs() < 0.02, "measured {m}, analytic {a}");
}

#[test]
fn hot_cold_matches_simulator() {
    let pat = AccessPattern::HotCold {
        hot_fraction: 0.85,
        hot_bytes: 512 * u64::from(BLOCK),
        cold_bytes: 16_384 * u64::from(BLOCK),
    };
    let m = measured_hit_rate(&pat, 2048, 300_000, 6);
    let a = analytic_hit_rate(&pat, 2048, 300_000);
    // Che's approximation is an IRM average; true LRU slightly beats it on
    // skewed streams, so allow a wider band here.
    assert!((m - a).abs() < 0.07, "measured {m}, analytic {a}");
}

#[test]
fn broadcast_matches_simulator() {
    let pat = AccessPattern::Broadcast {
        bytes: 128 * u64::from(BLOCK),
    };
    let m = measured_hit_rate(&pat, 1024, 50_000, 7);
    let a = analytic_hit_rate(&pat, 1024, 50_000);
    assert!(m > 0.99);
    assert!((m - a).abs() < 0.01, "measured {m}, analytic {a}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analytic model tracks the simulator for uniform-random working sets
    /// across a wide range of capacity ratios.
    #[test]
    fn prop_random_uniform_tracks_simulator(
        ws_blocks in 64u64..8192,
        cap_blocks in 128u64..4096,
        seed in 0u64..1000,
    ) {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: ws_blocks * u64::from(BLOCK),
        };
        let n = 60_000usize;
        let m = measured_hit_rate(&pat, cap_blocks, n, seed);
        let a = analytic_hit_rate(&pat, cap_blocks, n);
        // LRU beats the IRM capacity-ratio bound slightly; allow 6 points.
        prop_assert!((m - a).abs() < 0.06, "ws={ws_blocks} cap={cap_blocks}: measured {m}, analytic {a}");
    }

    /// Hit rates from both models always stay in [0, 1] and the analytic
    /// model is monotonically non-decreasing in capacity.
    #[test]
    fn prop_analytic_monotone_in_capacity(
        ws_blocks in 1u64..10_000,
        hot_frac in 0.0f64..1.0,
    ) {
        let pats = [
            AccessPattern::RandomUniform { working_set_bytes: ws_blocks * 32 },
            AccessPattern::Sweep { working_set_bytes: ws_blocks * 32, sweeps: 4 },
            AccessPattern::HotCold {
                hot_fraction: hot_frac,
                hot_bytes: (ws_blocks / 8).max(1) * 32,
                cold_bytes: ws_blocks * 32,
            },
        ];
        for pat in &pats {
            let mut prev = -1.0f64;
            for cap in [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0] {
                let h = analytic::hit_rate(pat, cap, BLOCK, 1e6);
                prop_assert!((0.0..=1.0).contains(&h));
                // Sweep is a step function but still monotone in capacity.
                prop_assert!(h + 1e-9 >= prev, "{pat:?}: cap {cap} gave {h} < {prev}");
                prev = h;
            }
        }
    }

    /// The trace-driven simulator conserves accesses.
    #[test]
    fn prop_simulator_conserves_accesses(
        n in 1usize..5000,
        cap in 8u64..512,
        seed in 0u64..100,
    ) {
        let pat = AccessPattern::RandomUniform { working_set_bytes: 1 << 16 };
        let mut addrs = Vec::new();
        trace::generate_into(&pat, BLOCK, n, seed, &mut addrs);
        let mut cache = sector_cache(cap, 4);
        // Scalar replay on purpose: this property pins the scalar path's
        // accounting, complementing the batched replay used above.
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), n as u64);
        prop_assert_eq!(cache.accesses(), n as u64);
    }
}
