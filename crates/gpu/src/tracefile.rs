//! Kernel-trace serialization.
//!
//! The paper's future-work section plans "Cactus instruction traces that
//! are compatible with state-of-the-art GPU simulators so that researchers
//! can simulate Cactus workloads without requiring access to a real GPU
//! device". This module implements that exchange format for the
//! reproduction: a line-oriented, self-describing text format carrying one
//! kernel launch per record with its grid geometry and full metric vector,
//! plus a parser so traces can be re-analyzed (or replayed through the
//! profiler) without re-running the workload.
//!
//! Format (`#`-prefixed lines are comments):
//!
//! ```text
//! cactus-trace v1
//! kernel <name> grid=<blocks>x<tpb> dur_s=<f> insts=<u> txns=<f> m=<15 csv floats>
//! ```

use std::fmt::Write as _;

use crate::engine::LaunchRecord;
use crate::metrics::{KernelMetrics, MetricId};

/// Magic header of version 1 traces.
pub const HEADER: &str = "cactus-trace v1";

/// One deserialized trace record (grid geometry + metrics; the timing
/// internals are not round-tripped).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Kernel name.
    pub name: String,
    /// Grid blocks.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// The metric vector.
    pub metrics: KernelMetrics,
}

/// Error produced when parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Serialize an execution trace.
#[must_use]
pub fn serialize(records: &[LaunchRecord]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "# {} kernel launches", records.len());
    for r in records {
        let m = &r.metrics;
        let _ = write!(
            out,
            "kernel {} grid={}x{} dur_s={:e} insts={} txns={:e} m=",
            sanitize(&r.name),
            r.timing.occupancy.full_waves * r.timing.occupancy.blocks_per_wave
                + r.timing.occupancy.tail_blocks,
            threads_per_block_of(r),
            m.duration_s,
            m.warp_instructions,
            m.dram_transactions,
        );
        let vector = m.vector();
        for (i, v) in vector.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v:e}");
        }
        out.push('\n');
    }
    out
}

fn threads_per_block_of(r: &LaunchRecord) -> u32 {
    // Resident warps per block × warp size; reconstructed from occupancy.
    let blocks = r.timing.occupancy.blocks_per_sm.max(1);
    (r.timing.occupancy.resident_warps_per_sm / blocks).max(1) * 32
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Parse a serialized trace.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on a missing/unknown header or malformed
/// record line.
pub fn parse(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => {
            return Err(ParseTraceError {
                line: 1,
                message: format!("unknown header {h:?}"),
            })
        }
        None => {
            return Err(ParseTraceError {
                line: 1,
                message: "empty trace".to_owned(),
            })
        }
    }

    let mut out = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: lineno,
            message,
        };
        let mut fields = line.split_whitespace();
        if fields.next() != Some("kernel") {
            return Err(err("expected `kernel` record".to_owned()));
        }
        let name = fields
            .next()
            .ok_or_else(|| err("missing kernel name".to_owned()))?
            .to_owned();

        let mut grid_blocks = 0u64;
        let mut tpb = 0u32;
        let mut metrics = KernelMetrics::default();
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(format!("malformed field {field:?}")))?;
            match key {
                "grid" => {
                    let (b, t) = value
                        .split_once('x')
                        .ok_or_else(|| err(format!("malformed grid {value:?}")))?;
                    grid_blocks = b.parse().map_err(|e| err(format!("grid blocks: {e}")))?;
                    tpb = t.parse().map_err(|e| err(format!("grid tpb: {e}")))?;
                }
                "dur_s" => {
                    metrics.duration_s = value.parse().map_err(|e| err(format!("dur_s: {e}")))?;
                }
                "insts" => {
                    metrics.warp_instructions =
                        value.parse().map_err(|e| err(format!("insts: {e}")))?;
                }
                "txns" => {
                    metrics.dram_transactions =
                        value.parse().map_err(|e| err(format!("txns: {e}")))?;
                }
                "m" => {
                    let values: Vec<f64> = value
                        .split(',')
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .map_err(|e| err(format!("metric vector: {e}")))?;
                    if values.len() != MetricId::ALL.len() {
                        return Err(err(format!(
                            "metric vector has {} entries, expected {}",
                            values.len(),
                            MetricId::ALL.len()
                        )));
                    }
                    apply_vector(&mut metrics, &values);
                }
                other => return Err(err(format!("unknown field {other:?}"))),
            }
        }
        out.push(TraceRecord {
            name,
            grid_blocks,
            threads_per_block: tpb,
            metrics,
        });
    }
    Ok(out)
}

fn apply_vector(m: &mut KernelMetrics, v: &[f64]) {
    // MetricId::ALL order.
    m.gips = v[0];
    m.instruction_intensity = v[1];
    m.warp_occupancy = v[2];
    m.sm_efficiency = v[3];
    m.l1_hit_rate = v[4];
    m.l2_hit_rate = v[5];
    m.dram_read_throughput_gbps = v[6];
    m.ldst_utilization = v[7];
    m.sp_utilization = v[8];
    m.fraction_branches = v[9];
    m.fraction_ldst = v[10];
    m.execution_stall = v[11];
    m.pipe_stall = v[12];
    m.sync_stall = v[13];
    m.memory_stall = v[14];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessPattern, AccessStream};
    use crate::kernel::KernelDesc;
    use crate::launch::LaunchConfig;
    use crate::{Device, Gpu};

    fn sample_trace() -> Vec<LaunchRecord> {
        let mut gpu = Gpu::new(Device::rtx3080());
        for (name, n) in [("alpha beta", 1u64 << 20), ("gamma", 1 << 18)] {
            let k = KernelDesc::builder(name)
                .launch(LaunchConfig::linear(n, 256))
                .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
                .build();
            gpu.launch(&k);
        }
        gpu.take_records()
    }

    #[test]
    fn roundtrip_preserves_metrics() {
        let records = sample_trace();
        let text = serialize(&records);
        let parsed = parse(&text).expect("roundtrip");
        assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            assert_eq!(p.name, sanitize(&r.name));
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
            assert!(rel(p.metrics.duration_s, r.metrics.duration_s) < 1e-9);
            assert_eq!(p.metrics.warp_instructions, r.metrics.warp_instructions);
            assert!(rel(p.metrics.gips, r.metrics.gips) < 1e-9);
            assert!(
                rel(p.metrics.l2_hit_rate, r.metrics.l2_hit_rate.max(1e-30)) < 1e-6
                    || r.metrics.l2_hit_rate == 0.0
            );
        }
    }

    #[test]
    fn whitespace_in_names_is_sanitized() {
        let text = serialize(&sample_trace());
        assert!(text.contains("kernel alpha_beta "));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{HEADER}\n# a comment\n\n");
        assert_eq!(parse(&text).unwrap(), vec![]);
    }

    #[test]
    fn bad_header_is_rejected() {
        let e = parse("not-a-trace\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown header"));
    }

    #[test]
    fn malformed_record_reports_line() {
        let text = format!("{HEADER}\nkernel k grid=oops\n");
        let e = parse(&text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn wrong_metric_arity_is_rejected() {
        let text = format!("{HEADER}\nkernel k grid=1x32 m=1.0,2.0\n");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("expected 15"));
    }
}
