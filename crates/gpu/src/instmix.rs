//! Warp-instruction mixes.
//!
//! A kernel launch's dynamic instruction stream is summarized as counts of
//! *warp instructions* (one warp instruction = 32 thread instructions, as in
//! the paper) per functional class. Workloads derive these counts
//! analytically from the work they actually perform (e.g. a GEMM tile kernel
//! contributes 2·M·N·K/32 FMA thread-ops → M·N·K/16 warp FMA instructions).

/// Warp-instruction counts for one kernel launch, by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionMix {
    /// FP32 arithmetic (add/mul/FMA) warp instructions.
    pub fp32: u64,
    /// Special-function (transcendental: exp, rsqrt, sin…) warp instructions.
    pub special: u64,
    /// Integer / address arithmetic warp instructions.
    pub int: u64,
    /// Control-flow (branch) warp instructions.
    pub branch: u64,
    /// Global/local memory load warp instructions.
    pub load: u64,
    /// Global/local memory store warp instructions.
    pub store: u64,
    /// Shared-memory load/store warp instructions.
    pub shared: u64,
    /// Barrier/synchronization warp instructions.
    pub sync: u64,
    /// Anything else (predicate manipulation, moves…).
    pub misc: u64,
}

impl InstructionMix {
    /// An empty mix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mix for an elementwise kernel over `n` threads performing
    /// `flops_per_elem` FP32 operations each (plus the implied address
    /// arithmetic and loop control), expressed in warp instructions.
    #[must_use]
    pub fn elementwise(n: u64, flops_per_elem: u64) -> Self {
        let warps = n.div_ceil(32);
        Self {
            fp32: warps * flops_per_elem,
            int: warps * 4,
            branch: warps,
            misc: warps,
            ..Self::default()
        }
    }

    /// Total warp instructions in the launch.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.fp32
            + self.special
            + self.int
            + self.branch
            + self.load
            + self.store
            + self.shared
            + self.sync
            + self.misc
    }

    /// Fraction of branch instructions (a Table IV metric).
    #[must_use]
    pub fn fraction_branches(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.branch as f64 / t as f64
        }
    }

    /// Fraction of memory (load/store, global + shared) instructions
    /// (a Table IV metric).
    #[must_use]
    pub fn fraction_ldst(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.load + self.store + self.shared) as f64 / t as f64
        }
    }

    /// Global-memory instructions (loads + stores).
    #[must_use]
    pub fn global_ldst(&self) -> u64 {
        self.load + self.store
    }

    /// Merge another mix into this one.
    pub fn add(&mut self, other: &Self) {
        self.fp32 += other.fp32;
        self.special += other.special;
        self.int += other.int;
        self.branch += other.branch;
        self.load += other.load;
        self.store += other.store;
        self.shared += other.shared;
        self.sync += other.sync;
        self.misc += other.misc;
    }

    /// Scale every class by an integer factor (e.g. per-iteration mix ×
    /// iteration count).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> Self {
        Self {
            fp32: self.fp32 * factor,
            special: self.special * factor,
            int: self.int * factor,
            branch: self.branch * factor,
            load: self.load * factor,
            store: self.store * factor,
            shared: self.shared * factor,
            sync: self.sync * factor,
            misc: self.misc * factor,
        }
    }
}

/// Builder-style helpers so workload code reads declaratively.
impl InstructionMix {
    /// Set FP32 count.
    #[must_use]
    pub fn with_fp32(mut self, n: u64) -> Self {
        self.fp32 = n;
        self
    }
    /// Set special-function count.
    #[must_use]
    pub fn with_special(mut self, n: u64) -> Self {
        self.special = n;
        self
    }
    /// Set integer count.
    #[must_use]
    pub fn with_int(mut self, n: u64) -> Self {
        self.int = n;
        self
    }
    /// Set branch count.
    #[must_use]
    pub fn with_branch(mut self, n: u64) -> Self {
        self.branch = n;
        self
    }
    /// Set global-load count.
    #[must_use]
    pub fn with_load(mut self, n: u64) -> Self {
        self.load = n;
        self
    }
    /// Set global-store count.
    #[must_use]
    pub fn with_store(mut self, n: u64) -> Self {
        self.store = n;
        self
    }
    /// Set shared-memory count.
    #[must_use]
    pub fn with_shared(mut self, n: u64) -> Self {
        self.shared = n;
        self
    }
    /// Set synchronization count.
    #[must_use]
    pub fn with_sync(mut self, n: u64) -> Self {
        self.sync = n;
        self
    }
    /// Set miscellaneous count.
    #[must_use]
    pub fn with_misc(mut self, n: u64) -> Self {
        self.misc = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_classes() {
        let mix = InstructionMix::new()
            .with_fp32(10)
            .with_int(5)
            .with_branch(2)
            .with_load(3)
            .with_store(1)
            .with_shared(4)
            .with_sync(1)
            .with_special(2)
            .with_misc(2);
        assert_eq!(mix.total(), 30);
    }

    #[test]
    fn fractions() {
        let mix = InstructionMix::new()
            .with_branch(1)
            .with_load(2)
            .with_fp32(7);
        assert!((mix.fraction_branches() - 0.1).abs() < 1e-12);
        assert!((mix.fraction_ldst() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fractions_of_empty_mix_are_zero() {
        let mix = InstructionMix::new();
        assert_eq!(mix.fraction_branches(), 0.0);
        assert_eq!(mix.fraction_ldst(), 0.0);
    }

    #[test]
    fn elementwise_shape() {
        let mix = InstructionMix::elementwise(3200, 3);
        assert_eq!(mix.fp32, 300);
        assert_eq!(mix.branch, 100);
    }

    #[test]
    fn add_and_scale_agree() {
        let a = InstructionMix::elementwise(1024, 2);
        let mut twice = a;
        twice.add(&a);
        assert_eq!(twice, a.scaled(2));
    }
}
