//! Declarative memory access streams.
//!
//! Rather than replaying per-thread address traces (infeasible at the
//! billions-of-instructions scale of the Cactus workloads), each kernel
//! describes its global-memory behaviour as a set of [`AccessStream`]s: how
//! many warp-level memory instructions it executes, how well they coalesce,
//! and what reuse *pattern* the generated transactions follow. The cache
//! hierarchy ([`crate::cache`]) turns these into per-level hit rates and DRAM
//! transaction counts, using closed-form models that are validated against a
//! trace-driven set-associative simulator in this crate's test suite.

/// Direction of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Loads.
    Read,
    /// Stores.
    Write,
}

/// Spatial/temporal reuse pattern of a stream's transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Every sector is touched exactly once, in order (pure streaming: SAXPY
    /// inputs, copy kernels). No cache reuse beyond the sector itself.
    Streaming,
    /// Transactions are distributed uniformly at random across a working set
    /// (hash tables, random gather). Hit rate follows the classic capacity
    /// ratio for LRU under independent uniform references.
    RandomUniform {
        /// Size of the touched region in bytes.
        working_set_bytes: u64,
    },
    /// Repeated in-order sweeps over a working set (iterative stencils,
    /// per-step re-reads of simulation state). Fully reused between sweeps if
    /// the set fits in the cache, and thrashes in classic cyclic-LRU fashion
    /// if it does not.
    Sweep {
        /// Size of the region swept, in bytes.
        working_set_bytes: u64,
        /// Number of complete sweeps the kernel performs.
        sweeps: u32,
    },
    /// Skewed gather: a `hot_fraction` of transactions target a small hot
    /// region; the remainder are uniform over a cold region (frontier-based
    /// graph kernels, embedding lookups with Zipfian ids).
    HotCold {
        /// Fraction of transactions hitting the hot region, in `[0, 1]`.
        hot_fraction: f64,
        /// Hot region size in bytes.
        hot_bytes: u64,
        /// Cold region size in bytes.
        cold_bytes: u64,
    },
    /// All warps repeatedly read the same small block (convolution filter
    /// weights, lookup tables). Essentially always cached after warm-up.
    Broadcast {
        /// Size of the shared block in bytes.
        bytes: u64,
    },
}

impl AccessPattern {
    /// Footprint: the number of distinct bytes this pattern touches.
    #[must_use]
    pub fn footprint_bytes(&self, total_transaction_bytes: u64) -> u64 {
        match *self {
            AccessPattern::Streaming => total_transaction_bytes,
            AccessPattern::RandomUniform { working_set_bytes } => {
                working_set_bytes.min(total_transaction_bytes)
            }
            AccessPattern::Sweep {
                working_set_bytes, ..
            } => working_set_bytes,
            AccessPattern::HotCold {
                hot_bytes,
                cold_bytes,
                ..
            } => hot_bytes + cold_bytes,
            AccessPattern::Broadcast { bytes } => bytes,
        }
    }
}

/// One global-memory access stream of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessStream {
    /// Loads or stores.
    pub direction: Direction,
    /// Number of warp-level memory instructions in the stream.
    pub warp_accesses: u64,
    /// Average 32-byte transactions generated per warp access, in `[1, 32]`.
    /// 4 for a fully coalesced FP32 access (32 threads × 4 B = 128 B = 4
    /// sectors); up to 32 for fully divergent scalar gathers.
    pub transactions_per_access: f64,
    /// Reuse pattern of the generated transactions.
    pub pattern: AccessPattern,
}

impl AccessStream {
    /// A read stream of `warp_accesses` warp loads of `bytes_per_thread`
    /// bytes each, fully coalesced.
    #[must_use]
    pub fn read(n_threads: u64, bytes_per_thread: u32, pattern: AccessPattern) -> Self {
        Self {
            direction: Direction::Read,
            warp_accesses: n_threads.div_ceil(32),
            transactions_per_access: coalesced_transactions(bytes_per_thread),
            pattern,
        }
    }

    /// A write stream, fully coalesced.
    #[must_use]
    pub fn write(n_threads: u64, bytes_per_thread: u32, pattern: AccessPattern) -> Self {
        Self {
            direction: Direction::Write,
            warp_accesses: n_threads.div_ceil(32),
            transactions_per_access: coalesced_transactions(bytes_per_thread),
            pattern,
        }
    }

    /// Explicit constructor for irregular streams.
    #[must_use]
    pub fn raw(
        direction: Direction,
        warp_accesses: u64,
        transactions_per_access: f64,
        pattern: AccessPattern,
    ) -> Self {
        Self {
            direction,
            warp_accesses,
            transactions_per_access: transactions_per_access.clamp(1.0, 32.0),
            pattern,
        }
    }

    /// Total 32-byte transactions generated by the stream (before caching).
    #[must_use]
    pub fn transactions(&self) -> f64 {
        self.warp_accesses as f64 * self.transactions_per_access
    }

    /// Total bytes moved by the stream at the L1 interface.
    #[must_use]
    pub fn bytes(&self, sector_bytes: u32) -> f64 {
        self.transactions() * f64::from(sector_bytes)
    }
}

/// Transactions per warp access for a coalesced access of
/// `bytes_per_thread` bytes per lane: 32 lanes × bytes / 32-byte sectors.
#[must_use]
pub fn coalesced_transactions(bytes_per_thread: u32) -> f64 {
    (f64::from(bytes_per_thread) * 32.0 / 32.0).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_fp32_is_four_sectors() {
        assert!((coalesced_transactions(4) - 4.0).abs() < 1e-12);
        assert!((coalesced_transactions(8) - 8.0).abs() < 1e-12);
        // Sub-word accesses still cost at least one transaction.
        assert!((coalesced_transactions(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stream_transaction_math() {
        let s = AccessStream::read(1 << 20, 4, AccessPattern::Streaming);
        assert_eq!(s.warp_accesses, 1 << 15);
        assert!((s.transactions() - (4 << 15) as f64).abs() < 1e-6);
        assert!((s.bytes(32) - (128 << 15) as f64).abs() < 1e-3);
    }

    #[test]
    fn footprints() {
        let streaming = AccessPattern::Streaming;
        assert_eq!(streaming.footprint_bytes(1000), 1000);
        let rnd = AccessPattern::RandomUniform {
            working_set_bytes: 500,
        };
        assert_eq!(rnd.footprint_bytes(1000), 500);
        // A random pattern cannot touch more bytes than it moves.
        assert_eq!(rnd.footprint_bytes(100), 100);
        let hc = AccessPattern::HotCold {
            hot_fraction: 0.9,
            hot_bytes: 10,
            cold_bytes: 90,
        };
        assert_eq!(hc.footprint_bytes(1000), 100);
    }

    #[test]
    fn raw_clamps_coalescing() {
        let s = AccessStream::raw(Direction::Read, 10, 100.0, AccessPattern::Streaming);
        assert!((s.transactions_per_access - 32.0).abs() < 1e-12);
    }
}
