//! Kernel launch configuration and the occupancy calculator.

use crate::device::Device;

/// Threads per warp on every device this crate models.
pub const WARP_SIZE: u32 = 32;

/// A CUDA-style kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (occupancy limiter).
    pub registers_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub shared_mem_per_block: u32,
}

impl LaunchConfig {
    /// A launch with explicit grid and block dimensions and default resource
    /// usage (32 registers per thread, no shared memory).
    #[must_use]
    pub fn new(grid_blocks: u64, threads_per_block: u32) -> Self {
        Self {
            grid_blocks: grid_blocks.max(1),
            threads_per_block: threads_per_block.clamp(WARP_SIZE, 1024),
            registers_per_thread: 32,
            shared_mem_per_block: 0,
        }
    }

    /// A launch sized to cover `n_threads` worth of elements with the given
    /// block size, the canonical elementwise-kernel pattern.
    #[must_use]
    pub fn linear(n_threads: u64, threads_per_block: u32) -> Self {
        let tpb = threads_per_block.clamp(WARP_SIZE, 1024);
        let blocks = n_threads.div_ceil(u64::from(tpb)).max(1);
        Self::new(blocks, tpb)
    }

    /// Set registers per thread (builder style).
    #[must_use]
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs.max(16);
        self
    }

    /// Set shared memory per block in bytes (builder style).
    #[must_use]
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Warps per block.
    #[must_use]
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(WARP_SIZE)
    }

    /// Total warps in the grid.
    #[must_use]
    pub fn total_warps(&self) -> u64 {
        self.grid_blocks * u64::from(self.warps_per_block())
    }

    /// Total threads in the grid.
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks * u64::from(self.threads_per_block)
    }

    /// Compute theoretical occupancy on `device`.
    #[must_use]
    pub fn occupancy(&self, device: &Device) -> Occupancy {
        let warps_per_block = self.warps_per_block();

        // Limit 1: resident blocks per SM.
        let by_blocks = device.max_blocks_per_sm;

        // Limit 2: warps per SM.
        let by_warps = device.max_warps_per_sm / warps_per_block;

        // Limit 3: register file.
        let regs_per_block =
            u64::from(self.registers_per_thread) * u64::from(self.threads_per_block);
        let by_regs = u64::from(device.registers_per_sm)
            .checked_div(regs_per_block)
            .unwrap_or(u64::from(device.max_blocks_per_sm));

        // Limit 4: shared memory.
        let by_smem = if self.shared_mem_per_block == 0 {
            u64::from(device.max_blocks_per_sm)
        } else {
            u64::from(device.shared_mem_per_sm) / u64::from(self.shared_mem_per_block)
        };

        let blocks_per_sm = u64::from(by_blocks)
            .min(u64::from(by_warps))
            .min(by_regs)
            .min(by_smem)
            .max(1) as u32;

        let resident_warps = (blocks_per_sm * warps_per_block).min(device.max_warps_per_sm);
        let occupancy = f64::from(resident_warps) / f64::from(device.max_warps_per_sm);

        // Wave accounting: how many rounds of device-wide block scheduling
        // does the grid take, and how full is the tail wave?
        let blocks_per_wave = u64::from(blocks_per_sm) * u64::from(device.sm_count);
        let full_waves = self.grid_blocks / blocks_per_wave;
        let tail_blocks = self.grid_blocks % blocks_per_wave;
        let tail_fraction = tail_blocks as f64 / blocks_per_wave as f64;

        Occupancy {
            blocks_per_sm,
            resident_warps_per_sm: resident_warps,
            occupancy,
            blocks_per_wave,
            full_waves,
            tail_blocks,
            tail_fraction,
        }
    }
}

/// Result of the occupancy calculation for one launch on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM while the SM is saturated.
    pub resident_warps_per_sm: u32,
    /// Theoretical occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Blocks the device retires per scheduling wave.
    pub blocks_per_wave: u64,
    /// Number of completely full waves.
    pub full_waves: u64,
    /// Blocks in the final, partial wave (0 if the grid divides evenly).
    pub tail_blocks: u64,
    /// Fill fraction of the tail wave in `[0, 1)`.
    pub tail_fraction: f64,
}

impl Occupancy {
    /// Total waves, counting a partial tail wave as one.
    #[must_use]
    pub fn waves(&self) -> u64 {
        self.full_waves + u64::from(self.tail_blocks > 0)
    }

    /// Effective number of waves weighting the tail by its duration
    /// contribution (a tail wave still takes a full wave of time on the SMs
    /// it occupies, but for grids smaller than one wave the device is simply
    /// underfilled).
    #[must_use]
    pub fn effective_waves(&self) -> f64 {
        self.full_waves as f64 + if self.tail_blocks > 0 { 1.0 } else { 0.0 }
    }

    /// Fraction of SMs that hold at least one block, averaged over waves.
    /// This is the backbone of the paper's "SM efficiency" metric: small
    /// grids leave most SMs idle.
    #[must_use]
    pub fn sm_utilization(&self, sm_count: u32) -> f64 {
        let waves = self.effective_waves();
        if waves == 0.0 {
            return 0.0;
        }
        let tail_sms = self
            .tail_blocks
            .div_ceil(u64::from(self.blocks_per_sm.max(1)))
            .min(u64::from(sm_count)) as f64;
        let full_part = self.full_waves as f64 * f64::from(sm_count);
        let tail_part = if self.tail_blocks > 0 { tail_sms } else { 0.0 };
        ((full_part + tail_part) / (waves * f64::from(sm_count))).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::rtx3080()
    }

    #[test]
    fn linear_covers_all_threads() {
        let lc = LaunchConfig::linear(1000, 256);
        assert_eq!(lc.grid_blocks, 4);
        assert_eq!(lc.total_threads(), 1024);
        assert_eq!(lc.warps_per_block(), 8);
    }

    #[test]
    fn occupancy_full_for_light_kernels() {
        let lc = LaunchConfig::linear(1 << 20, 256);
        let occ = lc.occupancy(&device());
        // 256 threads/block, 32 regs/thread: 6 blocks of 8 warps = 48 warps.
        assert_eq!(occ.resident_warps_per_sm, 48);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let lc = LaunchConfig::linear(1 << 20, 256).with_registers(128);
        let occ = lc.occupancy(&device());
        // 128 regs × 256 threads = 32768 regs/block → 2 blocks → 16 warps.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.resident_warps_per_sm, 16);
        assert!(occ.occupancy < 0.5);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let lc = LaunchConfig::linear(1 << 20, 256).with_shared_mem(48 * 1024);
        let occ = lc.occupancy(&device());
        assert_eq!(occ.blocks_per_sm, 2);
    }

    #[test]
    fn single_block_grid_underfills_device() {
        let lc = LaunchConfig::new(1, 256);
        let occ = lc.occupancy(&device());
        assert_eq!(occ.full_waves, 0);
        assert_eq!(occ.tail_blocks, 1);
        let util = occ.sm_utilization(68);
        assert!(util < 0.02, "one block on 68 SMs, got {util}");
    }

    #[test]
    fn wave_accounting_sums_to_grid() {
        let lc = LaunchConfig::linear(3 << 20, 128);
        let occ = lc.occupancy(&device());
        assert_eq!(
            occ.full_waves * occ.blocks_per_wave + occ.tail_blocks,
            lc.grid_blocks
        );
    }

    #[test]
    fn tiny_block_is_rounded_to_a_warp() {
        let lc = LaunchConfig::new(10, 1);
        assert_eq!(lc.threads_per_block, WARP_SIZE);
    }
}
