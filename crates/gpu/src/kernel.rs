//! Kernel descriptors — the interface between workloads and the device
//! model.

use crate::access::AccessStream;
use crate::instmix::InstructionMix;
use crate::launch::LaunchConfig;

/// Full description of one kernel launch: name, grid geometry, warp
/// instruction mix, and global-memory access streams.
///
/// Workloads build these with [`KernelDesc::builder`]; the
/// [`crate::engine::Gpu`] executes them.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    name: String,
    launch: LaunchConfig,
    mix: InstructionMix,
    streams: Vec<AccessStream>,
    dependency_fraction: f64,
}

impl KernelDesc {
    /// Start building a kernel descriptor with the given kernel name.
    ///
    /// Kernel names identify kernels across invocations (the profiler
    /// aggregates by name), so give distinct specializations distinct names,
    /// as real GPU libraries do (`volta_sgemm_128x64_nn`, …).
    #[must_use]
    pub fn builder(name: impl Into<String>) -> KernelDescBuilder {
        KernelDescBuilder {
            name: name.into(),
            launch: LaunchConfig::new(1, 128),
            mix: InstructionMix::default(),
            streams: Vec::new(),
            dependency_fraction: 0.35,
        }
    }

    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Launch configuration.
    #[must_use]
    pub fn launch(&self) -> &LaunchConfig {
        &self.launch
    }

    /// Warp-instruction mix.
    #[must_use]
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }

    /// Memory access streams.
    #[must_use]
    pub fn streams(&self) -> &[AccessStream] {
        &self.streams
    }

    /// Fraction of instructions that serialize on their producer.
    #[must_use]
    pub fn dependency_fraction(&self) -> f64 {
        self.dependency_fraction
    }
}

/// Builder for [`KernelDesc`].
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    name: String,
    launch: LaunchConfig,
    mix: InstructionMix,
    streams: Vec<AccessStream>,
    dependency_fraction: f64,
}

impl KernelDescBuilder {
    /// Set the launch configuration.
    #[must_use]
    pub fn launch(mut self, launch: LaunchConfig) -> Self {
        self.launch = launch;
        self
    }

    /// Set the warp-instruction mix.
    #[must_use]
    pub fn mix(mut self, mix: InstructionMix) -> Self {
        self.mix = mix;
        self
    }

    /// Add one memory access stream.
    #[must_use]
    pub fn stream(mut self, stream: AccessStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Add several memory access streams.
    #[must_use]
    pub fn streams(mut self, streams: impl IntoIterator<Item = AccessStream>) -> Self {
        self.streams.extend(streams);
        self
    }

    /// Set the dependency fraction (default 0.35). Higher values model
    /// tighter dependency chains (e.g. reductions, pointer chasing).
    #[must_use]
    pub fn dependency_fraction(mut self, f: f64) -> Self {
        self.dependency_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Finish building.
    ///
    /// The builder keeps the descriptor internally consistent: the load and
    /// store instruction counts of the mix are raised to at least the number
    /// of warp accesses declared by the streams, so a workload cannot
    /// declare memory traffic without the instructions that generate it.
    #[must_use]
    pub fn build(mut self) -> KernelDesc {
        let declared_loads: u64 = self
            .streams
            .iter()
            .filter(|s| s.direction == crate::access::Direction::Read)
            .map(|s| s.warp_accesses)
            .sum();
        let declared_stores: u64 = self
            .streams
            .iter()
            .filter(|s| s.direction == crate::access::Direction::Write)
            .map(|s| s.warp_accesses)
            .sum();
        self.mix.load = self.mix.load.max(declared_loads);
        self.mix.store = self.mix.store.max(declared_stores);

        KernelDesc {
            name: self.name,
            launch: self.launch,
            mix: self.mix,
            streams: self.streams,
            dependency_fraction: self.dependency_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessPattern, AccessStream};

    #[test]
    fn builder_defaults() {
        let k = KernelDesc::builder("k").build();
        assert_eq!(k.name(), "k");
        assert!((k.dependency_fraction() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn build_reconciles_mix_with_streams() {
        let k = KernelDesc::builder("k")
            .stream(AccessStream::read(3200, 4, AccessPattern::Streaming))
            .stream(AccessStream::write(3200, 4, AccessPattern::Streaming))
            .build();
        assert_eq!(k.mix().load, 100);
        assert_eq!(k.mix().store, 100);
    }

    #[test]
    fn explicit_mix_larger_than_streams_is_kept() {
        let k = KernelDesc::builder("k")
            .mix(InstructionMix::new().with_load(500))
            .stream(AccessStream::read(3200, 4, AccessPattern::Streaming))
            .build();
        assert_eq!(k.mix().load, 500);
    }

    #[test]
    fn dependency_fraction_is_clamped() {
        let k = KernelDesc::builder("k").dependency_fraction(7.0).build();
        assert_eq!(k.dependency_fraction(), 1.0);
    }
}
