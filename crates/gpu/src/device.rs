//! Physical device descriptors.
//!
//! A [`Device`] captures every hardware parameter the timing and cache models
//! consume. The preset [`Device::rtx3080`] matches the paper's Table II
//! platform; the derived quantities reproduce the paper's Section IV numbers:
//! 516.8 peak GIPS, 23.75 GTXN/s peak memory transaction rate, and a roofline
//! elbow at 21.76 warp instructions per DRAM transaction.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (allocation granularity).
    pub line_bytes: u32,
    /// Sector size in bytes (fill/transaction granularity).
    pub sector_bytes: u32,
    /// Set associativity.
    pub associativity: u32,
}

impl CacheGeometry {
    /// Number of cache lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        (self.lines() / u64::from(self.associativity)).max(1)
    }
}

/// Characteristic load-to-use latencies, in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latencies {
    /// Dependent-issue latency of a simple ALU instruction.
    pub alu: f64,
    /// Dependent-issue latency of a special-function (SFU) instruction.
    pub sfu: f64,
    /// Shared-memory load-to-use latency.
    pub shared: f64,
    /// L1 hit load-to-use latency.
    pub l1_hit: f64,
    /// L2 hit load-to-use latency.
    pub l2_hit: f64,
    /// DRAM load-to-use latency.
    pub dram: f64,
}

impl Latencies {
    /// Latencies representative of the Ampere generation.
    #[must_use]
    pub fn ampere() -> Self {
        Self {
            alu: 4.0,
            sfu: 8.0,
            shared: 22.0,
            l1_hit: 32.0,
            l2_hit: 210.0,
            dram: 470.0,
        }
    }
}

/// A simulated GPU device.
///
/// This is a passive configuration record; all fields are public so that
/// hypothetical-hardware studies can tweak individual parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name, e.g. `"RTX 3080"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Warp schedulers per SM (SM sub-partitions).
    pub schedulers_per_sm: u32,
    /// Warp instructions issued per scheduler per cycle.
    pub issue_per_scheduler: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Register file size per SM, in 32-bit registers.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// FP32 lanes per SM (CUDA cores).
    pub fp32_lanes_per_sm: u32,
    /// Load/store lanes per SM.
    pub ldst_lanes_per_sm: u32,
    /// Per-SM L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Device-wide L2 cache geometry.
    pub l2: CacheGeometry,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM transaction size in bytes.
    pub dram_transaction_bytes: u32,
    /// L2-to-SM aggregate bandwidth in GB/s.
    pub l2_bandwidth_gbps: f64,
    /// Characteristic latencies.
    pub latencies: Latencies,
    /// Fixed per-launch front-end overhead in core cycles (pipeline fill and
    /// drain; kernel launch gaps are excluded, matching how Nsight reports
    /// kernel durations).
    pub launch_overhead_cycles: f64,
}

impl Device {
    /// The paper's platform (Table II): Nvidia RTX 3080, 68 SMs with 128 CUDA
    /// cores each at 1.9 GHz, 10 GB GDDR6X at 760.3 GB/s, 5 MB L2.
    ///
    /// ```
    /// let d = cactus_gpu::device::Device::rtx3080();
    /// assert!((d.peak_gips() - 516.8).abs() < 1e-9);
    /// assert!((d.peak_gtxn_per_s() - 23.759_375).abs() < 1e-6);
    /// assert!((d.elbow_intensity() - 21.75).abs() < 0.2);
    /// ```
    #[must_use]
    pub fn rtx3080() -> Self {
        Self {
            name: "RTX 3080".to_owned(),
            sm_count: 68,
            schedulers_per_sm: 4,
            issue_per_scheduler: 1.0,
            clock_ghz: 1.9,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 102_400,
            fp32_lanes_per_sm: 128,
            ldst_lanes_per_sm: 32,
            l1: CacheGeometry {
                size_bytes: 128 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 4,
            },
            l2: CacheGeometry {
                size_bytes: 5 * 1024 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 760.3,
            dram_transaction_bytes: 32,
            l2_bandwidth_gbps: 2200.0,
            latencies: Latencies::ampere(),
            launch_overhead_cycles: 1500.0,
        }
    }

    /// A previous-generation Turing card: Nvidia RTX 2080 Ti (68 SMs at
    /// 1.545 GHz, 11 GB GDDR6 at 616 GB/s, 5.5 MB L2).
    #[must_use]
    pub fn rtx2080ti() -> Self {
        Self {
            name: "RTX 2080 Ti".to_owned(),
            sm_count: 68,
            clock_ghz: 1.545,
            max_warps_per_sm: 32,
            fp32_lanes_per_sm: 64,
            l1: CacheGeometry {
                size_bytes: 96 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 4,
            },
            l2: CacheGeometry {
                size_bytes: 5632 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 616.0,
            l2_bandwidth_gbps: 1800.0,
            ..Self::rtx3080()
        }
    }

    /// A data-center Ampere part: Nvidia A100 (108 SMs at 1.41 GHz, 40 GB
    /// HBM2 at 1555 GB/s, 40 MB L2).
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            sm_count: 108,
            clock_ghz: 1.41,
            max_warps_per_sm: 64,
            fp32_lanes_per_sm: 64,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 164 * 1024,
            l1: CacheGeometry {
                size_bytes: 192 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 4,
            },
            l2: CacheGeometry {
                size_bytes: 40 * 1024 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 1555.0,
            l2_bandwidth_gbps: 4500.0,
            ..Self::rtx3080()
        }
    }

    /// An older Pascal card: Nvidia GTX 1080 (20 SMs at 1.733 GHz, 8 GB
    /// GDDR5X at 320 GB/s, 2 MB L2).
    #[must_use]
    pub fn gtx1080() -> Self {
        Self {
            name: "GTX 1080".to_owned(),
            sm_count: 20,
            clock_ghz: 1.733,
            max_warps_per_sm: 64,
            fp32_lanes_per_sm: 128,
            l1: CacheGeometry {
                size_bytes: 48 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 4,
            },
            l2: CacheGeometry {
                size_bytes: 2 * 1024 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 320.0,
            l2_bandwidth_gbps: 1000.0,
            ..Self::rtx3080()
        }
    }

    /// A mainstream Ampere card: Nvidia RTX 3060 (28 SMs at 1.777 GHz, 12 GB
    /// GDDR6 at 360 GB/s, 3 MB L2). The discrete half of the
    /// discrete-vs-integrated contrast pair.
    #[must_use]
    pub fn rtx3060() -> Self {
        Self {
            name: "RTX 3060".to_owned(),
            sm_count: 28,
            clock_ghz: 1.777,
            l2: CacheGeometry {
                size_bytes: 3 * 1024 * 1024,
                line_bytes: 128,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 360.0,
            l2_bandwidth_gbps: 1100.0,
            ..Self::rtx3080()
        }
    }

    /// An integrated part: Intel UHD Graphics 630 (Gen9.5 GT2). Modeled as
    /// 3 subslices of 8 EUs at 1.15 GHz sharing system DDR4 at 41.6 GB/s,
    /// with a small 512 KB last-level cache — the "tiny L2, a fraction of
    /// the DRAM bandwidth" end of the heterogeneity spectrum.
    #[must_use]
    pub fn uhd630() -> Self {
        Self {
            name: "UHD 630".to_owned(),
            sm_count: 3,
            schedulers_per_sm: 8,
            issue_per_scheduler: 1.0,
            clock_ghz: 1.15,
            max_warps_per_sm: 56,
            max_blocks_per_sm: 16,
            max_threads_per_block: 256,
            registers_per_sm: 28_672,
            shared_mem_per_sm: 64 * 1024,
            fp32_lanes_per_sm: 64,
            ldst_lanes_per_sm: 16,
            l1: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                sector_bytes: 32,
                associativity: 4,
            },
            l2: CacheGeometry {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                sector_bytes: 32,
                associativity: 16,
            },
            dram_bandwidth_gbps: 41.6,
            dram_transaction_bytes: 32,
            l2_bandwidth_gbps: 120.0,
            latencies: Latencies {
                dram: 600.0,
                ..Latencies::ampere()
            },
            launch_overhead_cycles: 3000.0,
        }
    }

    /// Core clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Theoretical peak performance in Giga warp Instructions Per Second.
    ///
    /// For the RTX 3080 this is 68 × 4 × 1 × 1.9 = 516.8 GIPS, exactly the
    /// compute roof used in the paper's roofline analyses.
    #[must_use]
    pub fn peak_gips(&self) -> f64 {
        f64::from(self.sm_count)
            * f64::from(self.schedulers_per_sm)
            * self.issue_per_scheduler
            * self.clock_ghz
    }

    /// Peak DRAM transaction rate in Giga transactions per second.
    ///
    /// 760.3 GB/s over 32-byte transactions gives 23.76 GTXN/s, the paper's
    /// memory roof slope.
    #[must_use]
    pub fn peak_gtxn_per_s(&self) -> f64 {
        self.dram_bandwidth_gbps / f64::from(self.dram_transaction_bytes)
    }

    /// Roofline elbow: the instruction intensity (warp instructions per DRAM
    /// transaction) at which the memory roof meets the compute roof. The
    /// paper reports 21.76 for the RTX 3080.
    #[must_use]
    pub fn elbow_intensity(&self) -> f64 {
        self.peak_gips() / self.peak_gtxn_per_s()
    }

    /// The bandwidth/latency-bound classification threshold used by the
    /// paper's qualitative roofline labels: 1 % of peak performance
    /// (5.16 GIPS for the RTX 3080).
    #[must_use]
    pub fn latency_bound_threshold_gips(&self) -> f64 {
        self.peak_gips() * 0.01
    }

    /// Total warp-issue slots per second across the device.
    #[must_use]
    pub fn issue_slots_per_s(&self) -> f64 {
        self.peak_gips() * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3080_matches_paper_constants() {
        let d = Device::rtx3080();
        assert!((d.peak_gips() - 516.8).abs() < 1e-9, "peak GIPS");
        assert!(
            (d.peak_gtxn_per_s() - 23.759_375).abs() < 1e-6,
            "peak GTXN/s"
        );
        // Paper reports the elbow as 21.76 warp instructions per transaction.
        assert!((d.elbow_intensity() - 21.76).abs() < 0.05, "elbow");
        assert!((d.latency_bound_threshold_gips() - 5.168).abs() < 1e-9);
    }

    #[test]
    fn cache_geometry_derivations() {
        let d = Device::rtx3080();
        assert_eq!(d.l1.lines(), 1024);
        assert_eq!(d.l2.lines(), 40_960);
        assert_eq!(d.l1.sets(), 256);
        assert_eq!(d.l2.sets(), 2560);
    }

    #[test]
    fn clock_is_in_hz() {
        let d = Device::rtx3080();
        assert!((d.clock_hz() - 1.9e9).abs() < 1.0);
    }

    #[test]
    fn device_presets_order_sensibly() {
        let g1080 = Device::gtx1080();
        let t2080 = Device::rtx2080ti();
        let a3080 = Device::rtx3080();
        let a100 = Device::a100();
        // Peak compute rises across generations (A100's FP32 lane count is
        // lower per SM but its SM count and scheduler throughput dominate
        // the warp-issue roof).
        assert!(g1080.peak_gips() < t2080.peak_gips());
        assert!(t2080.peak_gips() < a3080.peak_gips());
        // Memory bandwidth strictly orders the cards.
        assert!(g1080.dram_bandwidth_gbps < t2080.dram_bandwidth_gbps);
        assert!(t2080.dram_bandwidth_gbps < a3080.dram_bandwidth_gbps);
        assert!(a3080.dram_bandwidth_gbps < a100.dram_bandwidth_gbps);
        // Every preset has a positive, finite elbow.
        for d in [g1080, t2080, a3080, a100] {
            assert!(d.elbow_intensity() > 0.0 && d.elbow_intensity().is_finite());
        }
    }

    #[test]
    fn integrated_part_sits_below_every_discrete_card() {
        let uhd = Device::uhd630();
        let g1080 = Device::gtx1080();
        let r3060 = Device::rtx3060();
        assert!(uhd.peak_gips() < g1080.peak_gips());
        assert!(uhd.dram_bandwidth_gbps < g1080.dram_bandwidth_gbps / 4.0);
        assert!(uhd.l2.size_bytes < r3060.l2.size_bytes / 4, "tiny L2");
        assert!(uhd.elbow_intensity() > 0.0 && uhd.elbow_intensity().is_finite());
    }

    #[test]
    fn rtx3060_is_a_scaled_down_3080() {
        let r3060 = Device::rtx3060();
        let r3080 = Device::rtx3080();
        assert!(r3060.peak_gips() < r3080.peak_gips());
        assert!(r3060.dram_bandwidth_gbps < r3080.dram_bandwidth_gbps);
        assert_eq!(r3060.fp32_lanes_per_sm, r3080.fp32_lanes_per_sm);
        assert!((r3060.peak_gips() - 199.024).abs() < 1e-9);
    }

    #[test]
    fn a100_has_the_big_l2() {
        assert_eq!(Device::a100().l2.size_bytes, 40 * 1024 * 1024);
        assert!(Device::a100().peak_gtxn_per_s() > 2.0 * Device::rtx3080().peak_gtxn_per_s());
    }
}
