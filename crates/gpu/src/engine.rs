//! The simulated GPU device: executes kernel descriptors and records an
//! execution trace.
//!
//! Kernel simulation is **memoized**: the timing model and memory hierarchy
//! are pure functions of the device and the kernel descriptor, and the
//! Cactus workloads relaunch the same kernel configuration many times per
//! run (MD force kernels every timestep, attention kernels every decoder
//! step), so each [`Gpu`] caches `(Timing, KernelMetrics)` per distinct
//! launch fingerprint and replays the cached result on repeat launches. The
//! trace a workload observes is bit-identical with memoization on or off —
//! only the simulation cost changes. See [`Gpu::memo_hits`].

use std::collections::HashMap;

use crate::cache::{MemoryModel, StreamTraffic};
use crate::device::Device;
use crate::kernel::KernelDesc;
use crate::metrics::KernelMetrics;
use crate::timing::{self, Timing};

/// Reusable per-engine scratch for the launch hot path.
///
/// Every launch needs a fingerprint (to consult the memo cache) and every
/// memo miss resolves the kernel's access streams; both used to allocate
/// per call. The scratch keeps those temporaries alive on the [`Gpu`] so a
/// long-lived engine — in particular one cycling through a
/// [`crate::pool::GpuPool`] — touches the allocator only when a memo miss
/// inserts a new cache key.
#[derive(Debug, Clone, Default)]
struct LaunchScratch {
    /// Fingerprint words staged here before the memo lookup; boxed into a
    /// key only on a miss.
    fingerprint: Vec<u64>,
    /// Per-stream traffic staging for [`MemoryModel::resolve_with`].
    streams: Vec<StreamTraffic>,
}

/// Snapshot of a device's launch-memoization counters.
///
/// `hits + misses` equals the number of launches issued while memoization
/// was enabled; `misses` is also the number of *distinct* kernel
/// configurations simulated (each miss populates one cache entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Launches answered from the memo cache.
    pub hits: u64,
    /// Launches that ran the full simulation.
    pub misses: u64,
}

impl MemoStats {
    /// Total memoized-path launches.
    #[must_use]
    pub fn launches(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of launches answered from the cache (0 when none ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.launches();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise sum of two snapshots.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Record of one executed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// Kernel name (aggregation key for the profiler).
    pub name: String,
    /// Metric record (Table IV + roofline coordinates).
    pub metrics: KernelMetrics,
    /// Timing internals (bound classification, wave structure).
    pub timing: Timing,
}

impl LaunchRecord {
    /// Kernel duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.metrics.duration_s
    }
}

/// Words per access stream in a launch fingerprint: direction,
/// warp accesses, transactions-per-access bits, pattern tag, three
/// pattern parameters (zero-padded).
const STREAM_FINGERPRINT_WORDS: usize = 7;

/// Exact fingerprint of everything [`timing::simulate`] and
/// [`MemoryModel::resolve`] read from a kernel descriptor. The kernel *name*
/// is deliberately excluded — two kernels with identical launch geometry,
/// instruction mix, and access streams simulate identically — and the device
/// is excluded because a fingerprint never leaves the `Gpu` whose device
/// produced it.
#[cfg(test)]
fn fingerprint(kernel: &KernelDesc) -> Box<[u64]> {
    let mut words = Vec::new();
    fingerprint_into(kernel, &mut words);
    words.into_boxed_slice()
}

/// Stage a kernel's fingerprint into `words` (cleared first, capacity
/// reused) — the allocation-free form backing the launch hot path.
fn fingerprint_into(kernel: &KernelDesc, words: &mut Vec<u64>) {
    let launch = kernel.launch();
    let mix = kernel.mix();
    let streams = kernel.streams();

    words.clear();
    words.reserve(14 + streams.len() * STREAM_FINGERPRINT_WORDS);
    words.extend([
        launch.grid_blocks,
        u64::from(launch.threads_per_block),
        u64::from(launch.registers_per_thread),
        u64::from(launch.shared_mem_per_block),
    ]);
    words.extend([
        mix.fp32,
        mix.special,
        mix.int,
        mix.branch,
        mix.load,
        mix.store,
        mix.shared,
        mix.sync,
        mix.misc,
    ]);
    words.push(kernel.dependency_fraction().to_bits());
    for stream in streams {
        use crate::access::{AccessPattern, Direction};
        words.push(match stream.direction {
            Direction::Read => 0,
            Direction::Write => 1,
        });
        words.push(stream.warp_accesses);
        words.push(stream.transactions_per_access.to_bits());
        // Fixed-width pattern encoding so no two descriptors can share a
        // word sequence.
        let (tag, p0, p1, p2) = match stream.pattern {
            AccessPattern::Streaming => (0, 0, 0, 0),
            AccessPattern::RandomUniform { working_set_bytes } => (1, working_set_bytes, 0, 0),
            AccessPattern::Sweep {
                working_set_bytes,
                sweeps,
            } => (2, working_set_bytes, u64::from(sweeps), 0),
            AccessPattern::HotCold {
                hot_fraction,
                hot_bytes,
                cold_bytes,
            } => (3, hot_fraction.to_bits(), hot_bytes, cold_bytes),
            AccessPattern::Broadcast { bytes } => (4, bytes, 0, 0),
        };
        words.extend([tag, p0, p1, p2]);
    }
}

/// A simulated GPU: executes [`KernelDesc`]s in issue order and records the
/// resulting trace, playing the role the RTX 3080 + Nsight Compute play in
/// the paper.
///
/// # Example
///
/// ```
/// use cactus_gpu::prelude::*;
///
/// let mut gpu = Gpu::new(Device::rtx3080());
/// let k = KernelDesc::builder("copy")
///     .launch(LaunchConfig::linear(1 << 20, 256))
///     .stream(AccessStream::read(1 << 20, 4, AccessPattern::Streaming))
///     .stream(AccessStream::write(1 << 20, 4, AccessPattern::Streaming))
///     .build();
/// gpu.launch(&k);
/// gpu.launch(&k);
/// assert_eq!(gpu.records().len(), 2);
/// assert_eq!(gpu.memo_hits(), 1); // second launch replayed from cache
/// assert!(gpu.total_gpu_time_s() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    device: Device,
    records: Vec<LaunchRecord>,
    memo: HashMap<Box<[u64]>, (Timing, KernelMetrics)>,
    memo_enabled: bool,
    memo_hits: u64,
    memo_misses: u64,
    scratch: LaunchScratch,
    desc_log: Option<Vec<KernelDesc>>,
}

impl Gpu {
    /// Create a device with an empty trace. Launch memoization starts
    /// enabled; see [`Gpu::set_memoization`].
    #[must_use]
    pub fn new(device: Device) -> Self {
        Self {
            device,
            records: Vec::new(),
            memo: HashMap::new(),
            memo_enabled: true,
            memo_hits: 0,
            memo_misses: 0,
            scratch: LaunchScratch::default(),
            desc_log: None,
        }
    }

    /// The device descriptor.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Execute one kernel launch and append it to the trace; returns the
    /// record.
    ///
    /// If an identical launch (same geometry, mix, streams, and dependency
    /// fraction) was simulated before on this device, the cached result is
    /// replayed instead of re-running the memory and timing models.
    pub fn launch(&mut self, kernel: &KernelDesc) -> &LaunchRecord {
        if let Some(log) = self.desc_log.as_mut() {
            log.push(kernel.clone());
        }
        let (timing, metrics) = if self.memo_enabled {
            // Stage the fingerprint in the scratch arena and look it up by
            // slice; a heap-allocated key is built only when a miss has to
            // populate the cache.
            let mut fp = std::mem::take(&mut self.scratch.fingerprint);
            fingerprint_into(kernel, &mut fp);
            let result = if let Some(&cached) = self.memo.get(fp.as_slice()) {
                self.memo_hits += 1;
                cached
            } else {
                self.memo_misses += 1;
                let result = self.simulate(kernel);
                self.memo.insert(fp.as_slice().into(), result);
                result
            };
            self.scratch.fingerprint = fp;
            result
        } else {
            self.simulate(kernel)
        };
        self.records.push(LaunchRecord {
            name: kernel.name().to_owned(),
            metrics,
            timing,
        });
        // lint:allow(no_panic, a record was pushed two statements up)
        self.records.last().expect("record just pushed")
    }

    /// Run the memory and timing models for one kernel (the memo-miss path).
    ///
    /// Stream resolution stages per-stream traffic in the launch scratch
    /// ([`MemoryModel::resolve_with`]); `timing::simulate` itself operates
    /// on `Copy` data and needs no scratch.
    fn simulate(&mut self, kernel: &KernelDesc) -> (Timing, KernelMetrics) {
        let traffic =
            MemoryModel::resolve_with(&self.device, kernel.streams(), &mut self.scratch.streams);
        timing::simulate(
            &self.device,
            kernel.launch(),
            kernel.mix(),
            kernel.dependency_fraction(),
            &traffic,
        )
    }

    /// Enable or disable launch memoization. Disabling leaves existing
    /// cached entries in place (re-enable to use them again).
    pub fn set_memoization(&mut self, enabled: bool) {
        self.memo_enabled = enabled;
    }

    /// Start logging every launched descriptor (cleared of prior entries).
    /// Workload capture uses this to lift hardcoded runners into the IR;
    /// it is off by default because descriptors are heap-heavy.
    pub fn enable_desc_log(&mut self) {
        self.desc_log = Some(Vec::new());
    }

    /// Take the logged descriptors and stop logging.
    #[must_use]
    pub fn take_desc_log(&mut self) -> Vec<KernelDesc> {
        self.desc_log.take().unwrap_or_default()
    }

    /// Launches answered from the memo cache.
    #[must_use]
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Launches that ran the full simulation (and populated the cache).
    #[must_use]
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Both memo counters as one snapshot.
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.memo_hits,
            misses: self.memo_misses,
        }
    }

    /// Distinct launch fingerprints currently cached.
    #[must_use]
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Drop all cached simulation results and reset the hit/miss counters.
    pub fn clear_memo(&mut self) {
        self.memo.clear();
        self.memo_hits = 0;
        self.memo_misses = 0;
    }

    /// The execution trace so far, in launch order.
    #[must_use]
    pub fn records(&self) -> &[LaunchRecord] {
        &self.records
    }

    /// Total GPU time across all launches, in seconds.
    #[must_use]
    pub fn total_gpu_time_s(&self) -> f64 {
        self.records.iter().map(|r| r.metrics.duration_s).sum()
    }

    /// Total warp instructions across all launches.
    #[must_use]
    pub fn total_warp_instructions(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.metrics.warp_instructions)
            .sum()
    }

    /// Drop the trace (e.g. after a warm-up phase, mirroring how the paper
    /// profiles only a steady-state region). The memo cache survives — a
    /// post-warm-up run replays warm-up kernels from cache.
    pub fn reset_trace(&mut self) {
        self.records.clear();
    }

    /// Take ownership of the trace, leaving the device empty.
    #[must_use]
    pub fn take_records(&mut self) -> Vec<LaunchRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessPattern, AccessStream};
    use crate::instmix::InstructionMix;
    use crate::launch::LaunchConfig;

    fn copy_kernel(n: u64) -> KernelDesc {
        KernelDesc::builder("copy")
            .launch(LaunchConfig::linear(n, 256))
            .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
            .stream(AccessStream::write(n, 4, AccessPattern::Streaming))
            .build()
    }

    #[test]
    fn launch_appends_records() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        gpu.launch(&copy_kernel(1 << 21));
        assert_eq!(gpu.records().len(), 2);
        assert!(gpu.records()[1].duration_s() > gpu.records()[0].duration_s());
    }

    #[test]
    fn totals_accumulate() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        let t1 = gpu.total_gpu_time_s();
        gpu.launch(&copy_kernel(1 << 20));
        assert!((gpu.total_gpu_time_s() - 2.0 * t1).abs() < 1e-12);
        assert!(gpu.total_warp_instructions() > 0);
    }

    #[test]
    fn reset_trace_clears() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        gpu.reset_trace();
        assert!(gpu.records().is_empty());
        assert_eq!(gpu.total_gpu_time_s(), 0.0);
    }

    #[test]
    fn take_records_transfers_ownership() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        let records = gpu.take_records();
        assert_eq!(records.len(), 1);
        assert!(gpu.records().is_empty());
    }

    #[test]
    fn compute_kernel_is_compute_intensive() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let lc = LaunchConfig::linear(1 << 22, 256);
        let warps = lc.total_warps();
        let k = KernelDesc::builder("gemm_like")
            .launch(lc)
            .mix(
                InstructionMix::new()
                    .with_fp32(warps * 4000)
                    .with_shared(warps * 500),
            )
            .stream(AccessStream::read(1 << 22, 4, AccessPattern::Streaming))
            .build();
        let elbow = gpu.device().elbow_intensity();
        let r = gpu.launch(&k);
        assert!(
            r.metrics.instruction_intensity > elbow,
            "II {} vs elbow {elbow}",
            r.metrics.instruction_intensity
        );
    }

    #[test]
    fn repeat_launches_hit_the_memo() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let k = copy_kernel(1 << 20);
        for _ in 0..5 {
            gpu.launch(&k);
        }
        assert_eq!(gpu.memo_misses(), 1);
        assert_eq!(gpu.memo_hits(), 4);
        assert_eq!(gpu.memo_len(), 1);
        let first = gpu.records()[0].clone();
        for r in gpu.records() {
            assert_eq!(*r, first);
        }
    }

    #[test]
    fn memoized_trace_is_bit_identical_to_cold_trace() {
        let kernels: Vec<KernelDesc> = (0..4)
            .flat_map(|_| [copy_kernel(1 << 18), copy_kernel(1 << 20)])
            .collect();

        let mut warm = Gpu::new(Device::rtx3080());
        let mut cold = Gpu::new(Device::rtx3080());
        cold.set_memoization(false);
        for k in &kernels {
            warm.launch(k);
            cold.launch(k);
        }
        assert_eq!(warm.records(), cold.records());
        assert_eq!(warm.memo_misses(), 2);
        assert_eq!(warm.memo_hits(), 6);
        assert_eq!(cold.memo_hits() + cold.memo_misses(), 0);
    }

    #[test]
    fn fingerprint_separates_distinct_kernels() {
        // Same name, different geometry → distinct entries.
        let a = copy_kernel(1 << 18);
        let b = copy_kernel(1 << 20);
        assert_ne!(fingerprint(&a), fingerprint(&b));

        // Different name, same everything else → same fingerprint.
        let renamed = KernelDesc::builder("other_name")
            .launch(*a.launch())
            .mix(*a.mix())
            .streams(a.streams().iter().copied())
            .dependency_fraction(a.dependency_fraction())
            .build();
        assert_eq!(fingerprint(&a), fingerprint(&renamed));

        // Pattern parameters are part of the key.
        let sweep1 = KernelDesc::builder("s")
            .stream(AccessStream::read(
                1 << 16,
                4,
                AccessPattern::Sweep {
                    working_set_bytes: 1 << 20,
                    sweeps: 2,
                },
            ))
            .build();
        let sweep2 = KernelDesc::builder("s")
            .stream(AccessStream::read(
                1 << 16,
                4,
                AccessPattern::Sweep {
                    working_set_bytes: 1 << 20,
                    sweeps: 3,
                },
            ))
            .build();
        assert_ne!(fingerprint(&sweep1), fingerprint(&sweep2));
    }

    #[test]
    fn launch_scratch_capacity_is_reused_across_launches() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let a = copy_kernel(1 << 18);
        let b = copy_kernel(1 << 20);
        gpu.launch(&a);
        gpu.launch(&b);
        let fp_cap = gpu.scratch.fingerprint.capacity();
        let st_cap = gpu.scratch.streams.capacity();
        gpu.set_memoization(false); // force the simulate path every launch
        for _ in 0..8 {
            gpu.launch(&a);
            gpu.launch(&b);
        }
        gpu.set_memoization(true);
        gpu.launch(&a); // memo-hit path also goes through the staged lookup
        assert_eq!(gpu.scratch.fingerprint.capacity(), fp_cap);
        assert_eq!(gpu.scratch.streams.capacity(), st_cap);
        assert_eq!(gpu.memo_hits(), 1);
    }

    #[test]
    fn memo_survives_reset_trace_and_clears_on_demand() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let k = copy_kernel(1 << 20);
        gpu.launch(&k);
        gpu.reset_trace();
        gpu.launch(&k);
        assert_eq!(gpu.memo_hits(), 1, "cache must survive reset_trace");

        gpu.clear_memo();
        assert_eq!(gpu.memo_len(), 0);
        assert_eq!(gpu.memo_hits() + gpu.memo_misses(), 0);
        gpu.launch(&k);
        assert_eq!(gpu.memo_misses(), 1);
    }

    #[test]
    fn renamed_kernel_records_its_own_name_on_memo_hit() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let a = copy_kernel(1 << 20);
        let b = KernelDesc::builder("copy_v2")
            .launch(*a.launch())
            .mix(*a.mix())
            .streams(a.streams().iter().copied())
            .dependency_fraction(a.dependency_fraction())
            .build();
        gpu.launch(&a);
        gpu.launch(&b);
        assert_eq!(gpu.memo_hits(), 1);
        assert_eq!(gpu.records()[0].name, "copy");
        assert_eq!(gpu.records()[1].name, "copy_v2");
        assert_eq!(gpu.records()[0].metrics, gpu.records()[1].metrics);
    }
}
