//! The simulated GPU device: executes kernel descriptors and records an
//! execution trace.

use crate::cache::MemoryModel;
use crate::device::Device;
use crate::kernel::KernelDesc;
use crate::metrics::KernelMetrics;
use crate::timing::{self, Timing};

/// Record of one executed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// Kernel name (aggregation key for the profiler).
    pub name: String,
    /// Metric record (Table IV + roofline coordinates).
    pub metrics: KernelMetrics,
    /// Timing internals (bound classification, wave structure).
    pub timing: Timing,
}

impl LaunchRecord {
    /// Kernel duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.metrics.duration_s
    }
}

/// A simulated GPU: executes [`KernelDesc`]s in issue order and records the
/// resulting trace, playing the role the RTX 3080 + Nsight Compute play in
/// the paper.
///
/// # Example
///
/// ```
/// use cactus_gpu::prelude::*;
///
/// let mut gpu = Gpu::new(Device::rtx3080());
/// let k = KernelDesc::builder("copy")
///     .launch(LaunchConfig::linear(1 << 20, 256))
///     .stream(AccessStream::read(1 << 20, 4, AccessPattern::Streaming))
///     .stream(AccessStream::write(1 << 20, 4, AccessPattern::Streaming))
///     .build();
/// gpu.launch(&k);
/// assert_eq!(gpu.records().len(), 1);
/// assert!(gpu.total_gpu_time_s() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    device: Device,
    records: Vec<LaunchRecord>,
}

impl Gpu {
    /// Create a device with an empty trace.
    #[must_use]
    pub fn new(device: Device) -> Self {
        Self {
            device,
            records: Vec::new(),
        }
    }

    /// The device descriptor.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Execute one kernel launch and append it to the trace; returns the
    /// record.
    pub fn launch(&mut self, kernel: &KernelDesc) -> &LaunchRecord {
        let traffic = MemoryModel::resolve(&self.device, kernel.streams());
        let (timing, metrics) = timing::simulate(
            &self.device,
            kernel.launch(),
            kernel.mix(),
            kernel.dependency_fraction(),
            &traffic,
        );
        self.records.push(LaunchRecord {
            name: kernel.name().to_owned(),
            metrics,
            timing,
        });
        self.records.last().expect("record just pushed")
    }

    /// The execution trace so far, in launch order.
    #[must_use]
    pub fn records(&self) -> &[LaunchRecord] {
        &self.records
    }

    /// Total GPU time across all launches, in seconds.
    #[must_use]
    pub fn total_gpu_time_s(&self) -> f64 {
        self.records.iter().map(|r| r.metrics.duration_s).sum()
    }

    /// Total warp instructions across all launches.
    #[must_use]
    pub fn total_warp_instructions(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.metrics.warp_instructions)
            .sum()
    }

    /// Drop the trace (e.g. after a warm-up phase, mirroring how the paper
    /// profiles only a steady-state region).
    pub fn reset_trace(&mut self) {
        self.records.clear();
    }

    /// Take ownership of the trace, leaving the device empty.
    #[must_use]
    pub fn take_records(&mut self) -> Vec<LaunchRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessPattern, AccessStream};
    use crate::instmix::InstructionMix;
    use crate::launch::LaunchConfig;

    fn copy_kernel(n: u64) -> KernelDesc {
        KernelDesc::builder("copy")
            .launch(LaunchConfig::linear(n, 256))
            .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
            .stream(AccessStream::write(n, 4, AccessPattern::Streaming))
            .build()
    }

    #[test]
    fn launch_appends_records() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        gpu.launch(&copy_kernel(1 << 21));
        assert_eq!(gpu.records().len(), 2);
        assert!(gpu.records()[1].duration_s() > gpu.records()[0].duration_s());
    }

    #[test]
    fn totals_accumulate() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        let t1 = gpu.total_gpu_time_s();
        gpu.launch(&copy_kernel(1 << 20));
        assert!((gpu.total_gpu_time_s() - 2.0 * t1).abs() < 1e-12);
        assert!(gpu.total_warp_instructions() > 0);
    }

    #[test]
    fn reset_trace_clears() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        gpu.reset_trace();
        assert!(gpu.records().is_empty());
        assert_eq!(gpu.total_gpu_time_s(), 0.0);
    }

    #[test]
    fn take_records_transfers_ownership() {
        let mut gpu = Gpu::new(Device::rtx3080());
        gpu.launch(&copy_kernel(1 << 20));
        let records = gpu.take_records();
        assert_eq!(records.len(), 1);
        assert!(gpu.records().is_empty());
    }

    #[test]
    fn compute_kernel_is_compute_intensive() {
        let mut gpu = Gpu::new(Device::rtx3080());
        let lc = LaunchConfig::linear(1 << 22, 256);
        let warps = lc.total_warps();
        let k = KernelDesc::builder("gemm_like")
            .launch(lc)
            .mix(InstructionMix::new().with_fp32(warps * 4000).with_shared(warps * 500))
            .stream(AccessStream::read(1 << 22, 4, AccessPattern::Streaming))
            .build();
        let elbow = gpu.device().elbow_intensity();
        let r = gpu.launch(&k);
        assert!(
            r.metrics.instruction_intensity > elbow,
            "II {} vs elbow {elbow}",
            r.metrics.instruction_intensity
        );
    }
}
