//! Nsight-style per-kernel metrics (the paper's Table IV) plus the two
//! roofline coordinates.

/// The full metric record produced for one kernel launch.
///
/// Field semantics follow the paper's Table IV; `gips` and
/// `instruction_intensity` are the Section IV roofline coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelMetrics {
    /// Kernel duration in seconds.
    pub duration_s: f64,
    /// Dynamically executed warp instructions.
    pub warp_instructions: u64,
    /// DRAM transactions (32 B) generated.
    pub dram_transactions: f64,
    /// Performance: Giga warp Instructions Per Second.
    pub gips: f64,
    /// Instruction intensity: warp instructions per DRAM transaction.
    pub instruction_intensity: f64,
    /// Average number of active warps per SM (0 ..= max warps per SM).
    pub warp_occupancy: f64,
    /// Fraction of time with at least one active warp per SM, in `[0, 1]`.
    pub sm_efficiency: f64,
    /// L1 hit rate in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// DRAM read throughput in GB/s.
    pub dram_read_throughput_gbps: f64,
    /// Load/store functional-unit utilization in `[0, 1]`.
    pub ldst_utilization: f64,
    /// FP32 pipeline utilization in `[0, 1]`.
    pub sp_utilization: f64,
    /// Fraction of branch instructions in `[0, 1]`.
    pub fraction_branches: f64,
    /// Fraction of memory (LD/ST) instructions in `[0, 1]`.
    pub fraction_ldst: f64,
    /// Stall ratio due to execution dependencies, in `[0, 1]`.
    pub execution_stall: f64,
    /// Stall ratio due to busy pipelines, in `[0, 1]`.
    pub pipe_stall: f64,
    /// Stall ratio due to synchronization, in `[0, 1]`.
    pub sync_stall: f64,
    /// Stall ratio due to memory accesses, in `[0, 1]`.
    pub memory_stall: f64,
}

/// Identifier for one metric, used by the correlation and clustering
/// analyses to iterate over metric vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricId {
    /// Performance (GIPS) — primary.
    Gips,
    /// Instruction intensity — primary.
    InstructionIntensity,
    /// Warp occupancy — primary and Table IV.
    WarpOccupancy,
    /// SM efficiency — primary and Table IV.
    SmEfficiency,
    /// L1 hit rate.
    L1HitRate,
    /// L2 hit rate.
    L2HitRate,
    /// DRAM read throughput.
    DramReadThroughput,
    /// LD/ST unit utilization.
    LdstUtilization,
    /// FP32 pipeline utilization.
    SpUtilization,
    /// Fraction of branch instructions.
    FractionBranches,
    /// Fraction of LD/ST instructions.
    FractionLdst,
    /// Execution-dependency stall ratio.
    ExecutionStall,
    /// Pipe-busy stall ratio.
    PipeStall,
    /// Synchronization stall ratio.
    SyncStall,
    /// Memory stall ratio.
    MemoryStall,
}

impl MetricId {
    /// The four primary metrics of the paper's correlation analysis
    /// (Figure 8 rows).
    pub const PRIMARY: [MetricId; 4] = [
        MetricId::Gips,
        MetricId::InstructionIntensity,
        MetricId::SmEfficiency,
        MetricId::WarpOccupancy,
    ];

    /// The Table IV metrics (Figure 8 columns). The paper lists 12 rows;
    /// its "L1/L2 hit rate" row covers two distinct metrics, giving 13
    /// metric values.
    pub const TABLE_IV: [MetricId; 13] = [
        MetricId::WarpOccupancy,
        MetricId::SmEfficiency,
        MetricId::L1HitRate,
        MetricId::L2HitRate,
        MetricId::DramReadThroughput,
        MetricId::LdstUtilization,
        MetricId::SpUtilization,
        MetricId::FractionBranches,
        MetricId::FractionLdst,
        MetricId::ExecutionStall,
        MetricId::PipeStall,
        MetricId::SyncStall,
        MetricId::MemoryStall,
    ];

    /// All metrics, primaries first.
    pub const ALL: [MetricId; 15] = [
        MetricId::Gips,
        MetricId::InstructionIntensity,
        MetricId::WarpOccupancy,
        MetricId::SmEfficiency,
        MetricId::L1HitRate,
        MetricId::L2HitRate,
        MetricId::DramReadThroughput,
        MetricId::LdstUtilization,
        MetricId::SpUtilization,
        MetricId::FractionBranches,
        MetricId::FractionLdst,
        MetricId::ExecutionStall,
        MetricId::PipeStall,
        MetricId::SyncStall,
        MetricId::MemoryStall,
    ];

    /// Human-readable metric name (Table IV wording).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MetricId::Gips => "GIPS",
            MetricId::InstructionIntensity => "Instruction intensity",
            MetricId::WarpOccupancy => "Warp occupancy",
            MetricId::SmEfficiency => "SM efficiency",
            MetricId::L1HitRate => "L1 hit rate",
            MetricId::L2HitRate => "L2 hit rate",
            MetricId::DramReadThroughput => "DRAM read throughput",
            MetricId::LdstUtilization => "LD/ST utilization",
            MetricId::SpUtilization => "SP utilization",
            MetricId::FractionBranches => "Fraction branches",
            MetricId::FractionLdst => "Fraction LD/ST insts",
            MetricId::ExecutionStall => "Execution stall",
            MetricId::PipeStall => "Pipe stall",
            MetricId::SyncStall => "Sync stall",
            MetricId::MemoryStall => "Memory stall",
        }
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl KernelMetrics {
    /// Value of one metric.
    #[must_use]
    pub fn get(&self, id: MetricId) -> f64 {
        match id {
            MetricId::Gips => self.gips,
            MetricId::InstructionIntensity => self.instruction_intensity,
            MetricId::WarpOccupancy => self.warp_occupancy,
            MetricId::SmEfficiency => self.sm_efficiency,
            MetricId::L1HitRate => self.l1_hit_rate,
            MetricId::L2HitRate => self.l2_hit_rate,
            MetricId::DramReadThroughput => self.dram_read_throughput_gbps,
            MetricId::LdstUtilization => self.ldst_utilization,
            MetricId::SpUtilization => self.sp_utilization,
            MetricId::FractionBranches => self.fraction_branches,
            MetricId::FractionLdst => self.fraction_ldst,
            MetricId::ExecutionStall => self.execution_stall,
            MetricId::PipeStall => self.pipe_stall,
            MetricId::SyncStall => self.sync_stall,
            MetricId::MemoryStall => self.memory_stall,
        }
    }

    /// The full quantitative metric vector in [`MetricId::ALL`] order.
    #[must_use]
    pub fn vector(&self) -> Vec<f64> {
        MetricId::ALL.iter().map(|&id| self.get(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_matches_get() {
        let m = KernelMetrics {
            gips: 1.0,
            instruction_intensity: 2.0,
            warp_occupancy: 3.0,
            sm_efficiency: 0.4,
            ..KernelMetrics::default()
        };
        let v = m.vector();
        assert_eq!(v.len(), MetricId::ALL.len());
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        assert_eq!(v[3], 0.4);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MetricId::ALL.iter().map(MetricId::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MetricId::ALL.len());
    }

    #[test]
    fn table_iv_has_thirteen_metrics() {
        assert_eq!(MetricId::TABLE_IV.len(), 13);
        assert_eq!(MetricId::PRIMARY.len(), 4);
    }
}
