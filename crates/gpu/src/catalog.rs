//! The named device catalog.
//!
//! Every device the model can simulate is registered here under a stable
//! string id. The id — not the marketing name — is the unit of currency
//! across the stack: profile stores key their on-disk layout on it, the
//! serving tier resolves URL path segments against it, and the gateway's
//! capability map routes `(device, scale, workload)` requests only to
//! backends that model the id. Renaming an id is a breaking change; add a
//! new entry instead.
//!
//! Each entry also carries a per-device revision, bumped whenever that
//! device's descriptor changes without a global [`MODEL_VERSION`] bump.
//! Stores key on `MODEL_VERSION` *and* the revision, so retuning one
//! device invalidates only that device's cached profiles.

use crate::device::Device;
use crate::MODEL_VERSION;

/// One catalog row: a stable id, a per-device descriptor revision, and the
/// preset constructor.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Stable lowercase id, e.g. `"rtx-3080"`. Appears in URLs and on-disk
    /// store paths; never renamed.
    pub id: &'static str,
    /// Per-device descriptor revision; bumped when this device's parameters
    /// change. Combines with the global [`MODEL_VERSION`] to key stores.
    pub rev: u32,
    /// Preset constructor for the descriptor.
    pub build: fn() -> Device,
}

impl CatalogEntry {
    /// Build this entry's device descriptor.
    #[must_use]
    pub fn device(&self) -> Device {
        (self.build)()
    }

    /// The version tag profile stores key on: the global model version plus
    /// this device's descriptor revision, e.g. `"2.1"`.
    #[must_use]
    pub fn store_version(&self) -> String {
        format!("{MODEL_VERSION}.{}", self.rev)
    }
}

/// Every modeled device, in catalog order. The order is part of the public
/// surface: `/v1/devices` pages and default fleet assignments iterate it.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        id: "rtx-3080",
        rev: 1,
        build: Device::rtx3080,
    },
    CatalogEntry {
        id: "rtx-3060",
        rev: 1,
        build: Device::rtx3060,
    },
    CatalogEntry {
        id: "rtx-2080-ti",
        rev: 1,
        build: Device::rtx2080ti,
    },
    CatalogEntry {
        id: "a100",
        rev: 1,
        build: Device::a100,
    },
    CatalogEntry {
        id: "gtx-1080",
        rev: 1,
        build: Device::gtx1080,
    },
    CatalogEntry {
        id: "uhd-630",
        rev: 1,
        build: Device::uhd630,
    },
];

/// Look up a catalog entry by id (ASCII case-insensitive).
#[must_use]
pub fn by_id(id: &str) -> Option<&'static CatalogEntry> {
    CATALOG
        .iter()
        .find(|entry| entry.id.eq_ignore_ascii_case(id))
}

/// All catalog ids, in catalog order.
#[must_use]
pub fn device_ids() -> Vec<&'static str> {
    CATALOG.iter().map(|entry| entry.id).collect()
}

/// The catalog id a device descriptor belongs to, matched by marketing
/// name; `None` for ad-hoc descriptors built outside the catalog.
#[must_use]
pub fn id_for_device(device: &Device) -> Option<&'static str> {
    CATALOG
        .iter()
        .find(|entry| entry.device().name == device.name)
        .map(|entry| entry.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_lowercase_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for entry in CATALOG {
            assert!(seen.insert(entry.id), "duplicate id {}", entry.id);
            assert_eq!(entry.id, entry.id.to_ascii_lowercase());
            assert!(entry
                .id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        // The founding ids never disappear.
        for id in ["rtx-3080", "rtx-3060", "uhd-630", "rtx-2080-ti"] {
            assert!(by_id(id).is_some(), "{id} missing from catalog");
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_rejects_unknowns() {
        assert_eq!(by_id("RTX-3080").map(|e| e.id), Some("rtx-3080"));
        assert!(by_id("rtx-9090").is_none());
        assert!(by_id("").is_none());
    }

    #[test]
    fn entries_build_their_named_device() {
        for entry in CATALOG {
            let device = entry.device();
            assert!(device.peak_gips() > 0.0, "{}", entry.id);
            assert_eq!(id_for_device(&device), Some(entry.id));
        }
    }

    #[test]
    fn store_version_combines_global_and_per_device() {
        let entry = by_id("rtx-3080").expect("catalog entry");
        assert_eq!(entry.store_version(), format!("{MODEL_VERSION}.1"));
    }
}
