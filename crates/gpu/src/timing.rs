//! Wave-based SM timing model.
//!
//! The model descends from the analytic GPU-performance-model tradition
//! (Hong & Kim's MWP/CWP model and the instruction-roofline work the paper
//! builds on). A kernel executes in scheduling *waves* of thread blocks.
//! Within a wave, each SM interleaves its resident warps across its
//! schedulers; a wave's duration is the larger of
//!
//! * the **issue time** — warp instructions the scheduler must issue,
//!   one per cycle per scheduler, and
//! * the **serial time** — the dependency-limited latency of a single warp's
//!   instruction stream (instructions that wait on their producers pay the
//!   functional-unit or memory latency).
//!
//! With many resident warps the issue time dominates (latency is hidden);
//! with few warps the serial time dominates and the kernel is
//! *latency-bound*. Device-wide, the kernel can additionally be capped by
//! DRAM or L2 bandwidth; whichever of the four terms is largest determines
//! the duration, and the surplus over the issue time is attributed to the
//! stall categories of the paper's Table IV.

use crate::cache::TrafficResult;
use crate::device::Device;
use crate::instmix::InstructionMix;
use crate::launch::{LaunchConfig, Occupancy};
use crate::metrics::KernelMetrics;

/// Which resource bounds the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Warp-issue (compute) bound.
    Issue,
    /// Dependency-latency bound (too few warps to hide latency).
    Latency,
    /// DRAM-bandwidth bound.
    Dram,
    /// L2-bandwidth bound.
    L2,
}

/// Full timing result for one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Kernel duration in seconds (includes fixed launch overhead).
    pub duration_s: f64,
    /// Duration in core cycles.
    pub duration_cycles: f64,
    /// Which term determined the duration.
    pub bound: Bound,
    /// Per-wave issue cycles per scheduler.
    pub issue_cycles_per_wave: f64,
    /// Dependency-limited serial cycles of one warp.
    pub serial_cycles_per_warp: f64,
    /// Device-wide DRAM service cycles.
    pub dram_cycles: f64,
    /// Device-wide L2 service cycles.
    pub l2_cycles: f64,
    /// The occupancy record used.
    pub occupancy: Occupancy,
}

/// Compute the timing and the full metric record for one launch.
#[must_use]
pub fn simulate(
    device: &Device,
    launch: &LaunchConfig,
    mix: &InstructionMix,
    dependency_fraction: f64,
    traffic: &TrafficResult,
) -> (Timing, KernelMetrics) {
    let occ = launch.occupancy(device);
    let lat = &device.latencies;
    let dep = dependency_fraction.clamp(0.0, 1.0);

    let total_insts = mix.total().max(1) as f64;
    let warps = launch.total_warps().max(1) as f64;
    let ipw = total_insts / warps; // instructions per warp
    let per_warp = |n: u64| n as f64 / warps;

    // --- Serial (dependency-limited) time of one warp -----------------
    let mem_lat = traffic.avg_read_latency_cycles;
    let sync_cost = 20.0 + 2.0 * f64::from(launch.warps_per_block());
    let serial_stall_mem =
        dep * (per_warp(mix.load) * (mem_lat - 1.0) + per_warp(mix.shared) * (lat.shared - 1.0));
    let serial_stall_exec = dep
        * ((per_warp(mix.fp32) + per_warp(mix.int) + per_warp(mix.branch) + per_warp(mix.misc))
            * (lat.alu - 1.0)
            + per_warp(mix.special) * (lat.sfu - 1.0)
            + per_warp(mix.store) * (lat.alu - 1.0));
    let serial_stall_sync = per_warp(mix.sync) * sync_cost;
    let serial_cycles_per_warp = ipw + serial_stall_mem + serial_stall_exec + serial_stall_sync;

    // --- Issue time of one wave per scheduler --------------------------
    let warps_per_sched =
        f64::from(occ.resident_warps_per_sm) / f64::from(device.schedulers_per_sm);
    let issue_cycles_per_wave = warps_per_sched.max(1.0) * ipw / device.issue_per_scheduler;

    // --- SM-side kernel time -------------------------------------------
    let wave_cycles = issue_cycles_per_wave.max(serial_cycles_per_warp);
    let waves = occ.effective_waves().max(1.0);
    let sm_cycles = waves * wave_cycles;

    // --- Device-wide bandwidth terms ------------------------------------
    let dram_txn_per_cycle = device.peak_gtxn_per_s() * 1e9 / device.clock_hz();
    let dram_cycles = traffic.dram_transactions() / dram_txn_per_cycle;
    let l2_bytes = traffic.l2_accesses * f64::from(device.l1.sector_bytes);
    let l2_bytes_per_cycle = device.l2_bandwidth_gbps * 1e9 / device.clock_hz();
    let l2_cycles = l2_bytes / l2_bytes_per_cycle;

    let (body_cycles, bound) = {
        let mut best = (sm_cycles, Bound::Issue);
        if serial_cycles_per_warp > issue_cycles_per_wave {
            best.1 = Bound::Latency;
        }
        if dram_cycles > best.0 {
            best = (dram_cycles, Bound::Dram);
        }
        if l2_cycles > best.0 {
            best = (l2_cycles, Bound::L2);
        }
        best
    };

    let duration_cycles = body_cycles + device.launch_overhead_cycles;
    let duration_s = duration_cycles / device.clock_hz();

    let timing = Timing {
        duration_s,
        duration_cycles,
        bound,
        issue_cycles_per_wave,
        serial_cycles_per_warp,
        dram_cycles,
        l2_cycles,
        occupancy: occ,
    };

    // --- Metrics ---------------------------------------------------------
    let sm_util = occ.sm_utilization(device.sm_count);
    let wave_time = body_cycles / waves;

    // Stall attribution: per warp, cycles resident = wave_time, issued = ipw.
    let total_stall = (wave_time - ipw).max(0.0);
    // Pipe-busy: waiting for the scheduler because other warps are issuing.
    let pipe_raw = (issue_cycles_per_wave - ipw).max(0.0);
    // Bandwidth surplus goes to the memory-stall bucket (warps queue on the
    // memory system) unless the kernel is issue/latency bound.
    let bw_surplus = match bound {
        Bound::Dram | Bound::L2 => {
            (wave_time - issue_cycles_per_wave.max(serial_cycles_per_warp)).max(0.0)
        }
        _ => 0.0,
    };
    let mem_raw = serial_stall_mem + bw_surplus;
    let exec_raw = serial_stall_exec;
    let sync_raw = serial_stall_sync;
    let raw_sum = mem_raw + exec_raw + sync_raw + pipe_raw;
    let norm = if raw_sum > 0.0 {
        total_stall / raw_sum / wave_time.max(1.0)
    } else {
        0.0
    };
    let memory_stall = (mem_raw * norm).clamp(0.0, 1.0);
    let execution_stall = (exec_raw * norm).clamp(0.0, 1.0);
    let sync_stall = (sync_raw * norm).clamp(0.0, 1.0);
    let pipe_stall = (pipe_raw * norm).clamp(0.0, 1.0);

    let gips = total_insts / duration_s / 1e9;
    let dram_txns = traffic.dram_transactions();
    let instruction_intensity = total_insts / dram_txns.max(1.0);

    // Functional-unit utilizations.
    let sm_active = f64::from(device.sm_count) * sm_util;
    let fp32_capacity = sm_active * f64::from(device.fp32_lanes_per_sm) / 32.0 * duration_cycles;
    let sp_utilization = if fp32_capacity > 0.0 {
        (mix.fp32 as f64 / fp32_capacity).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let ldst_capacity = sm_active * f64::from(device.ldst_lanes_per_sm) / 32.0 * duration_cycles;
    let ldst_insts = (mix.load + mix.store + mix.shared) as f64;
    let ldst_utilization = if ldst_capacity > 0.0 {
        (ldst_insts / ldst_capacity).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let metrics = KernelMetrics {
        duration_s,
        warp_instructions: mix.total(),
        dram_transactions: dram_txns,
        gips,
        instruction_intensity,
        warp_occupancy: f64::from(occ.resident_warps_per_sm) * sm_util,
        sm_efficiency: sm_util,
        l1_hit_rate: traffic.l1_hit_rate(),
        l2_hit_rate: traffic.l2_hit_rate(),
        dram_read_throughput_gbps: traffic.dram_read_bytes(device) / duration_s / 1e9,
        ldst_utilization,
        sp_utilization,
        fraction_branches: mix.fraction_branches(),
        fraction_ldst: mix.fraction_ldst(),
        execution_stall,
        pipe_stall,
        sync_stall,
        memory_stall,
    };

    (timing, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessPattern, AccessStream};
    use crate::cache::MemoryModel;

    fn device() -> Device {
        Device::rtx3080()
    }

    /// A large compute-heavy kernel with negligible memory traffic should
    /// approach the 516.8 GIPS compute roof.
    #[test]
    fn compute_kernel_approaches_peak_gips() {
        let d = device();
        let lc = LaunchConfig::linear(1 << 24, 256);
        let warps = lc.total_warps();
        let mix = InstructionMix::new().with_fp32(warps * 2000);
        let traffic = MemoryModel::resolve(&d, &[]);
        let (t, m) = simulate(&d, &lc, &mix, 0.2, &traffic);
        assert_eq!(t.bound, Bound::Issue);
        assert!(m.gips > 0.9 * d.peak_gips(), "gips {}", m.gips);
        assert!(m.gips <= d.peak_gips() * 1.0001);
    }

    /// A streaming kernel should sit on the memory roof:
    /// GIPS ≈ II × 23.75.
    #[test]
    fn streaming_kernel_sits_on_memory_roof() {
        let d = device();
        let n = 1u64 << 26;
        let lc = LaunchConfig::linear(n, 256);
        let warps = lc.total_warps();
        let mix = InstructionMix::new()
            .with_load(warps * 2)
            .with_store(warps)
            .with_fp32(warps * 2)
            .with_int(warps * 4);
        let streams = [
            AccessStream::read(n, 8, AccessPattern::Streaming),
            AccessStream::write(n, 4, AccessPattern::Streaming),
        ];
        let traffic = MemoryModel::resolve(&d, &streams);
        let (t, m) = simulate(&d, &lc, &mix, 0.3, &traffic);
        assert_eq!(t.bound, Bound::Dram);
        let roof = m.instruction_intensity * d.peak_gtxn_per_s();
        assert!(
            (m.gips - roof).abs() / roof < 0.05,
            "gips {} vs roof {roof}",
            m.gips
        );
        // Memory-bound region: left of the elbow.
        assert!(m.instruction_intensity < d.elbow_intensity());
        // Stalls should be dominated by memory.
        assert!(m.memory_stall > m.execution_stall);
    }

    /// A one-block kernel is latency-bound with very low SM efficiency and
    /// GIPS far below 1% of peak.
    #[test]
    fn tiny_kernel_is_latency_bound() {
        let d = device();
        let lc = LaunchConfig::new(1, 64);
        let warps = lc.total_warps();
        let mix = InstructionMix::new()
            .with_fp32(warps * 100)
            .with_load(warps * 30);
        let streams = [AccessStream::raw(
            crate::access::Direction::Read,
            warps * 30,
            16.0,
            AccessPattern::RandomUniform {
                working_set_bytes: 64 << 20,
            },
        )];
        let traffic = MemoryModel::resolve(&d, &streams);
        let (t, m) = simulate(&d, &lc, &mix, 0.6, &traffic);
        assert_eq!(t.bound, Bound::Latency);
        assert!(m.sm_efficiency < 0.05, "sm eff {}", m.sm_efficiency);
        assert!(m.gips < d.latency_bound_threshold_gips(), "gips {}", m.gips);
    }

    #[test]
    fn stall_fractions_are_ratios() {
        let d = device();
        let lc = LaunchConfig::linear(1 << 20, 128);
        let warps = lc.total_warps();
        let mix = InstructionMix::new()
            .with_fp32(warps * 50)
            .with_load(warps * 20)
            .with_sync(warps * 2)
            .with_branch(warps * 5);
        let streams = [AccessStream::read(1 << 20, 4, AccessPattern::Streaming)];
        let traffic = MemoryModel::resolve(&d, &streams);
        let (_, m) = simulate(&d, &lc, &mix, 0.4, &traffic);
        let total = m.memory_stall + m.execution_stall + m.sync_stall + m.pipe_stall;
        assert!((0.0..=1.0).contains(&total), "total stall {total}");
        for v in [
            m.memory_stall,
            m.execution_stall,
            m.sync_stall,
            m.pipe_stall,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn more_warps_hide_latency() {
        let d = device();
        let n = 1u64 << 22;
        let mix_of = |lc: &LaunchConfig| {
            let warps = lc.total_warps();
            InstructionMix::new()
                .with_fp32(warps * 64)
                .with_load(warps * 16)
        };
        let streams = [AccessStream::read(n, 4, AccessPattern::Streaming)];
        let traffic = MemoryModel::resolve(&d, &streams);

        // Same total work; 64-thread blocks with huge register use (low
        // occupancy) vs. 256-thread blocks (full occupancy).
        let low = LaunchConfig::linear(n, 64).with_registers(255);
        let high = LaunchConfig::linear(n, 256).with_registers(32);
        let (_, m_low) = simulate(&d, &low, &mix_of(&low), 0.5, &traffic);
        let (_, m_high) = simulate(&d, &high, &mix_of(&high), 0.5, &traffic);
        assert!(
            m_high.gips >= m_low.gips,
            "high-occ {} < low-occ {}",
            m_high.gips,
            m_low.gips
        );
    }

    #[test]
    fn duration_includes_launch_overhead() {
        let d = device();
        let lc = LaunchConfig::new(1, 32);
        let mix = InstructionMix::new().with_fp32(1);
        let traffic = MemoryModel::resolve(&d, &[]);
        let (t, _) = simulate(&d, &lc, &mix, 0.0, &traffic);
        assert!(t.duration_cycles >= d.launch_overhead_cycles);
    }
}
