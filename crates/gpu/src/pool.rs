//! A thread-safe checkout pool of memoizing [`Gpu`] engines.
//!
//! Long-lived services (the `cactus-serve` daemon) simulate many workloads
//! concurrently from a pool of worker threads. Building a fresh [`Gpu`] per
//! request would discard the launch-memo cache between requests, and sharing
//! one `Gpu` behind a mutex would serialize simulation. The pool gives each
//! concurrent simulation exclusive use of one engine while **keeping every
//! engine's memo cache warm across checkouts**: repeat requests for the same
//! (workload, scale) replay most launches from cache even though each
//! request may land on a different thread.
//!
//! Checkout hands back a [`PooledGpu`] guard. On drop the guard clears the
//! engine's *trace* (per-request state) but keeps its memo cache, folds the
//! memo hits/misses accrued during the checkout into the pool-wide
//! [`GpuPool::memo_stats`] counters, and returns the engine for reuse. The
//! pool is unbounded: a checkout when all engines are busy creates a new
//! engine rather than blocking (callers bound concurrency themselves — the
//! serve daemon's worker pool holds at most one engine per worker).
//!
//! ```
//! use cactus_gpu::pool::GpuPool;
//! use cactus_gpu::prelude::*;
//!
//! let pool = GpuPool::new(Device::rtx3080());
//! let k = KernelDesc::builder("copy")
//!     .launch(LaunchConfig::linear(1 << 20, 256))
//!     .stream(AccessStream::read(1 << 20, 4, AccessPattern::Streaming))
//!     .build();
//! {
//!     let mut gpu = pool.checkout();
//!     gpu.launch(&k);
//! } // engine returned, memo kept
//! {
//!     let mut gpu = pool.checkout();
//!     gpu.launch(&k); // replayed from the warm memo cache
//! }
//! assert_eq!(pool.memo_stats().hits, 1);
//! assert_eq!(pool.memo_stats().misses, 1);
//! assert_eq!(pool.engines(), 1);
//! ```

use cactus_obs::lock::{rank, RankedMutex};

use cactus_obs::Counter;

use crate::device::Device;
use crate::engine::{Gpu, MemoStats};

/// Registry-backed counters a pool reports into, shareable across pools.
///
/// The serve tier registers one set of counters and hands a clone to every
/// device pool via [`GpuPool::instrument`]; the counters then sum memo
/// traffic and engine creation fleet-wide while each pool's own
/// [`GpuPool::memo_stats`] stays per-device (and resettable). Counters are
/// monotonic by design — [`GpuPool::reset`] zeroes the local stats but never
/// rolls the instruments back.
#[derive(Debug, Clone)]
pub struct PoolInstruments {
    /// Launches replayed from a warm memo cache.
    pub memo_hits: Counter,
    /// Launches simulated from scratch.
    pub memo_misses: Counter,
    /// Engines created (pool growth).
    pub engines_created: Counter,
}

/// A pool of idle [`Gpu`] engines for one device, shareable across threads.
#[derive(Debug)]
pub struct GpuPool {
    device: Device,
    idle: RankedMutex<Vec<Gpu>>,
    /// Memo counters folded in from completed checkouts, plus engine count.
    stats: RankedMutex<PoolCounters>,
    instruments: Option<PoolInstruments>,
}

#[derive(Debug, Default, Clone, Copy)]
struct PoolCounters {
    memo: MemoStats,
    created: u64,
}

impl GpuPool {
    /// An empty pool for `device`; engines are created on first checkout.
    #[must_use]
    pub fn new(device: Device) -> Self {
        Self {
            device,
            idle: RankedMutex::new(rank::ENGINE_POOL_IDLE, "gpu.pool_idle", Vec::new()),
            stats: RankedMutex::new(
                rank::ENGINE_POOL_STATS,
                "gpu.pool_stats",
                PoolCounters::default(),
            ),
            instruments: None,
        }
    }

    /// Attach registry-backed counters; every subsequent checkout reports
    /// its memo delta (and engine creation) into them in addition to the
    /// pool-local stats.
    #[must_use]
    pub fn instrument(mut self, instruments: PoolInstruments) -> Self {
        self.instruments = Some(instruments);
        self
    }

    /// The device every pooled engine simulates.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Take exclusive use of an engine (an idle one if available, otherwise
    /// a new one). Never blocks on other checkouts.
    #[must_use]
    pub fn checkout(&self) -> PooledGpu<'_> {
        let reused = self.idle.lock().pop();
        let gpu = reused.unwrap_or_else(|| {
            self.stats.lock().created += 1;
            if let Some(instruments) = &self.instruments {
                instruments.engines_created.inc();
            }
            Gpu::new(self.device.clone())
        });
        let baseline = gpu.memo_stats();
        PooledGpu {
            pool: self,
            gpu: Some(gpu),
            baseline,
        }
    }

    /// Total engines ever created by this pool.
    #[must_use]
    pub fn engines(&self) -> u64 {
        self.stats.lock().created
    }

    /// Engines currently idle (not checked out).
    #[must_use]
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Memo hits/misses accumulated by all *completed* checkouts.
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        self.stats.lock().memo
    }

    /// Drop all idle engines (and their memo caches) and zero the pool-wide
    /// counters. Engines currently checked out are unaffected and fold
    /// their deltas into the zeroed counters when returned.
    pub fn reset(&self) {
        self.idle.lock().clear();
        let mut stats = self.stats.lock();
        stats.memo = MemoStats::default();
    }

    fn check_in(&self, mut gpu: Gpu, baseline: MemoStats) {
        let after = gpu.memo_stats();
        let delta = MemoStats {
            hits: after.hits - baseline.hits,
            misses: after.misses - baseline.misses,
        };
        gpu.reset_trace();
        if let Some(instruments) = &self.instruments {
            instruments.memo_hits.add(delta.hits);
            instruments.memo_misses.add(delta.misses);
        }
        let mut stats = self.stats.lock();
        stats.memo = stats.memo.merged(&delta);
        drop(stats);
        self.idle.lock().push(gpu);
    }
}

/// Exclusive use of one pooled engine; derefs to [`Gpu`]. Dropping the
/// guard returns the engine to the pool with its memo cache intact.
#[derive(Debug)]
pub struct PooledGpu<'a> {
    pool: &'a GpuPool,
    gpu: Option<Gpu>,
    baseline: MemoStats,
}

impl PooledGpu<'_> {
    /// Memo hits/misses accrued *during this checkout* so far — the same
    /// delta that will be folded into the pool on drop. Span tagging reads
    /// this to attribute memo traffic to one request.
    #[must_use]
    pub fn memo_delta(&self) -> MemoStats {
        // lint:allow(no_panic, engine is Some from checkout until drop)
        let now = self
            .gpu
            .as_ref()
            .expect("engine present until drop")
            .memo_stats();
        MemoStats {
            hits: now.hits - self.baseline.hits,
            misses: now.misses - self.baseline.misses,
        }
    }
}

impl std::ops::Deref for PooledGpu<'_> {
    type Target = Gpu;

    fn deref(&self) -> &Gpu {
        // lint:allow(no_panic, engine is Some from checkout until drop)
        self.gpu.as_ref().expect("engine present until drop")
    }
}

impl std::ops::DerefMut for PooledGpu<'_> {
    fn deref_mut(&mut self) -> &mut Gpu {
        // lint:allow(no_panic, engine is Some from checkout until drop)
        self.gpu.as_mut().expect("engine present until drop")
    }
}

impl Drop for PooledGpu<'_> {
    fn drop(&mut self) {
        if let Some(gpu) = self.gpu.take() {
            self.pool.check_in(gpu, self.baseline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn kernel(n: u64) -> KernelDesc {
        KernelDesc::builder("k")
            .launch(LaunchConfig::linear(n, 256))
            .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
            .build()
    }

    #[test]
    fn checkout_reuses_idle_engine_and_keeps_memo_warm() {
        let pool = GpuPool::new(Device::rtx3080());
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 20));
        }
        assert_eq!(pool.engines(), 1);
        assert_eq!(pool.idle(), 1);
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 20));
            assert!(gpu.records().len() == 1, "trace was reset at check-in");
        }
        assert_eq!(pool.engines(), 1, "idle engine was reused");
        let stats = pool.memo_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1, "second checkout hit the warm memo");
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_engines() {
        let pool = GpuPool::new(Device::rtx3080());
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.engines(), 2);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pool_fans_out_across_threads() {
        let pool = GpuPool::new(Device::rtx3080());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut gpu = pool.checkout();
                    gpu.launch(&kernel(1 << 18));
                });
            }
        });
        let stats = pool.memo_stats();
        assert_eq!(stats.launches(), 4);
        // However the threads interleaved, every launch was counted and at
        // least the first one on each fresh engine was a miss.
        assert!(stats.misses >= 1);
        assert_eq!(pool.idle() as u64, pool.engines());
    }

    #[test]
    fn instruments_sum_across_checkouts_and_survive_reset() {
        let registry = cactus_obs::MetricsRegistry::new();
        let instruments = PoolInstruments {
            memo_hits: registry.counter("hits", "").unwrap(),
            memo_misses: registry.counter("misses", "").unwrap(),
            engines_created: registry.counter("engines", "").unwrap(),
        };
        let pool = GpuPool::new(Device::rtx3080()).instrument(instruments.clone());
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 18));
            let delta = gpu.memo_delta();
            assert_eq!((delta.hits, delta.misses), (0, 1));
        }
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 18));
            let delta = gpu.memo_delta();
            assert_eq!((delta.hits, delta.misses), (1, 0));
        }
        assert_eq!(instruments.memo_hits.get(), 1);
        assert_eq!(instruments.memo_misses.get(), 1);
        assert_eq!(instruments.engines_created.get(), 1);
        pool.reset();
        assert_eq!(pool.memo_stats(), MemoStats::default());
        assert_eq!(
            instruments.memo_misses.get(),
            1,
            "registry counters are monotonic across pool resets"
        );
    }

    #[test]
    fn reset_clears_counters_and_idle_engines() {
        let pool = GpuPool::new(Device::rtx3080());
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 18));
        }
        pool.reset();
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.memo_stats(), MemoStats::default());
        {
            let mut gpu = pool.checkout();
            gpu.launch(&kernel(1 << 18));
        }
        assert_eq!(pool.memo_stats().misses, 1, "fresh engine after reset");
    }
}
