//! # cactus-gpu
//!
//! An SM/warp-level GPU *performance model* used as the hardware substrate of
//! the Cactus benchmark-suite reproduction (IISWC 2021).
//!
//! The crate plays the role that a physical Nvidia RTX 3080 plus the Nsight
//! Compute profiler play in the paper: workloads describe each kernel launch
//! (grid geometry, warp-instruction mix, memory access streams) and the model
//! produces a per-launch [`metrics::KernelMetrics`] record containing the same
//! metric vector the paper collects in its Table IV — warp occupancy, SM
//! efficiency, L1/L2 hit rates, DRAM read throughput, functional-unit
//! utilizations, instruction-mix fractions, and a four-way stall breakdown —
//! along with the two roofline coordinates, performance in GIPS and
//! instruction intensity in warp instructions per DRAM transaction.
//!
//! ## Architecture
//!
//! * [`device`] — physical device descriptors (SM count, schedulers, clock,
//!   cache geometry, DRAM bandwidth). [`device::Device::rtx3080`] matches the
//!   paper's Table II platform.
//! * [`catalog`] — the named device catalog: stable string ids for every
//!   modeled device, the key space for profile stores and fleet routing.
//! * [`launch`] — kernel launch configuration and the occupancy calculator.
//! * [`instmix`] — warp-instruction mixes by class.
//! * [`access`] — declarative memory access streams (pattern + coalescing).
//! * [`cache`] — a trace-driven set-associative cache simulator plus an
//!   analytic hit-rate model validated against it, composed into an
//!   L1 → L2 → DRAM hierarchy.
//! * [`timing`] — a wave-based SM timing model with occupancy-driven latency
//!   hiding, inspired by the MWP/CWP analytic-GPU-model literature.
//! * [`metrics`] — the Nsight-style per-kernel metric record.
//! * [`kernel`] — the kernel descriptor assembled by workloads.
//! * [`engine`] — the [`engine::Gpu`] device that executes launches and
//!   records an execution trace, memoizing repeated launch configurations.
//! * [`par`] — deterministic parallel fan-out used by the suite runners.
//! * [`pool`] — a thread-safe checkout pool of engines whose memo caches
//!   stay warm across requests (the substrate of the `cactus-serve` daemon).
//! * [`tracefile`] — serialization of execution traces (the paper's
//!   future-work "simulator-compatible instruction traces").
//!
//! ## Example
//!
//! ```
//! use cactus_gpu::prelude::*;
//!
//! let mut gpu = Gpu::new(Device::rtx3080());
//! let kernel = KernelDesc::builder("saxpy")
//!     .launch(LaunchConfig::linear(1 << 20, 256))
//!     .mix(InstructionMix::elementwise(1 << 20, 2))
//!     .stream(AccessStream::read(1 << 20, 4, AccessPattern::Streaming))
//!     .stream(AccessStream::write(1 << 20, 4, AccessPattern::Streaming))
//!     .build();
//! let record = gpu.launch(&kernel);
//! assert!(record.metrics.gips > 0.0);
//! assert!(record.metrics.instruction_intensity > 0.0);
//! ```

pub mod access;
pub mod cache;
pub mod catalog;
pub mod device;
pub mod engine;
pub mod instmix;
pub mod kernel;
pub mod launch;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod timing;
pub mod tracefile;

/// Version of the performance model's parameters and equations. Bump this
/// whenever a change to the device descriptors, cache models, or timing
/// model can alter simulated metrics: serialized profile stores are keyed on
/// it, so stale cached profiles invalidate automatically.
///
/// v2: data-oriented host rework — per-pair-radius colloid neighbor lists,
/// reassociated convolution/force arithmetic and libcall-free
/// minimum-image rounding shift workload float results (and therefore the
/// kernel footprints derived from them) slightly.
pub const MODEL_VERSION: u32 = 2;

/// Convenient re-exports of the types used by nearly every client.
pub mod prelude {
    pub use crate::access::{AccessPattern, AccessStream, Direction};
    pub use crate::device::Device;
    pub use crate::engine::{Gpu, LaunchRecord};
    pub use crate::instmix::InstructionMix;
    pub use crate::kernel::{KernelDesc, KernelDescBuilder};
    pub use crate::launch::LaunchConfig;
    pub use crate::metrics::KernelMetrics;
}

pub use crate::catalog::{by_id, CatalogEntry, CATALOG};
pub use crate::device::Device;
pub use crate::engine::Gpu;
