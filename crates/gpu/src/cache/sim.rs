//! Trace-driven set-associative LRU cache simulator.

use crate::device::CacheGeometry;

/// A set-associative cache with true-LRU replacement, driven by byte
/// addresses.
///
/// Lines are allocated at `line_bytes` granularity. The simulator tracks hits
/// and misses; it does not model data contents.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    assoc: usize,
    line_shift: u32,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotonic per-access stamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or the geometry implies
    /// zero sets.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(
            geometry.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = geometry.sets() as usize;
        let assoc = geometry.associativity as usize;
        assert!(sets > 0 && assoc > 0, "degenerate cache geometry");
        Self {
            geometry,
            sets,
            assoc,
            line_shift: geometry.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry this cache was built from.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access one byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];

        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.hits += 1;
            return true;
        }

        // Miss: fill into invalid way or evict LRU.
        let victim = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &stamp) in self.stamps[base..base + self.assoc].iter().enumerate() {
                    if stamp < lru_stamp {
                        lru_stamp = stamp;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Number of hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all accesses so far (0 if none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Reset statistics but keep cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidate all lines and reset statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 4096,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 4,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_has_only_cold_misses() {
        let mut c = small_cache(); // 64 lines
        for pass in 0..4 {
            for line in 0..32u64 {
                let hit = c.access(line * 64);
                assert_eq!(hit, pass > 0, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn cyclic_sweep_larger_than_cache_thrashes() {
        let mut c = small_cache(); // 64 lines, 16 sets × 4 ways
        // 128 distinct lines, cycled: classic LRU worst case — ~0% hits.
        for _ in 0..4 {
            for line in 0..128u64 {
                c.access(line * 64);
            }
        }
        assert!(c.hit_rate() < 0.01, "got {}", c.hit_rate());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 2 * 64,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 2,
        });
        // Single set, 2 ways.
        c.access(0); // A
        c.access(64); // B
        c.access(0); // A hit, A is MRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A should survive");
        assert!(!c.access(64), "B should have been evicted");
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small_cache();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.accesses(), 1);
    }
}
