//! Trace-driven set-associative LRU cache simulator.
//!
//! Two replay paths share one replacement policy:
//!
//! * [`SetAssocCache::access`] — scalar, one address at a time;
//! * [`SetAssocCache::access_batch`] — data-oriented batch replay: the
//!   address stream is partitioned per set into reusable buckets (a
//!   counting sort over chunks), then each set's run is replayed locally so
//!   the set's tags and ages stay hot in cache. The probe is a chunked
//!   4-wide branchless tag compare and the LRU victim select is a
//!   branchless min-scan; `line % sets` becomes a mask when the set count
//!   is a power of two. Per-access hit/miss results are bit-identical to
//!   the scalar path (sets are independent, and per-set order is
//!   preserved by the partition).

use crate::device::CacheGeometry;

/// Addresses per partition chunk in the batched path. Bounds the transient
/// bucket memory at ~24 bytes per in-flight address while keeping the
/// per-chunk set-bookkeeping cost amortized.
const BATCH_CHUNK: usize = 1 << 15;

/// Upper bound on the adaptive chunk length (see `batch_replay`): caps the
/// bucket scratch at ~12 MB even for very large simulated caches.
const BATCH_CHUNK_MAX: usize = 1 << 20;

/// Below this many addresses a batch call falls through to the scalar loop:
/// the partition bookkeeping would cost more than it saves.
const BATCH_MIN: usize = 32;

/// Reusable scratch for [`SetAssocCache::access_batch`]. All buffers are
/// grown once and reused across calls; contents are transient per chunk.
/// Invariant between calls: `counts` is all-zero (each chunk re-zeroes it
/// after replay).
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    /// Per-set address count for the current chunk (size `sets`).
    counts: Vec<u32>,
    /// Per-set write cursor during the scatter (size `sets`); after the
    /// scatter, `cursor[s]` is the end of set `s`'s bucket run.
    cursor: Vec<u32>,
    /// Bucket storage: lines grouped by set, per-set order preserved
    /// (u64 fallback path).
    bucket_lines: Vec<u64>,
    /// Bucket storage for the quotient-compressed path: u32 line
    /// quotients grouped by set, per-set order preserved.
    bucket_q: Vec<u32>,
    /// Original in-chunk position of each bucketed line; maintained only
    /// when recording per-access outcomes.
    bucket_idx: Vec<u32>,
    /// Per-address `(quotient << 32) | set` computed in pass 1 and reused
    /// by the scatter pass, so each address is divided exactly once per
    /// chunk (the quotient half is truncated and only consumed when the
    /// chunk qualifies for quotient compression).
    chunk_sq: Vec<u64>,
    /// Warm-run set indices deferred for paired replay (x86-64 fast path);
    /// cleared every chunk.
    warm_runs: Vec<u32>,
}

/// Set-index mapping for the batched path, hoisted out of the per-address
/// loops: a mask for power-of-two set counts, otherwise an exact
/// multiply-high reciprocal (round-up method, valid for every dividend) so
/// the partition never runs a hardware divide. The scalar path keeps its
/// plain `%` — it is the reference implementation.
#[derive(Debug, Clone, Copy)]
enum SetMap {
    /// `sets` is a power of two: `set = line & mask`, `quotient = line >>
    /// l`.
    Mask { mask: u64, l: u32 },
    /// General case: `set = line - (line / sets) * sets` with the quotient
    /// computed as `((line*m >> 64) + ((line - (line*m >> 64)) >> 1)) >>
    /// (l-1)`, where `m` is the low half of the 65-bit magic
    /// `ceil(2^(64+l) / sets)` and `l = ceil(log2 sets)`.
    Magic { d: u64, m: u64, l: u32 },
}

impl SetMap {
    fn new(sets: usize) -> Self {
        let d = sets as u64;
        if d.is_power_of_two() {
            SetMap::Mask {
                mask: d - 1,
                l: d.trailing_zeros(),
            }
        } else {
            let l = 64 - (d - 1).leading_zeros();
            let m = (1u128 << (64 + l)).div_ceil(u128::from(d)) as u64;
            SetMap::Magic { d, m, l }
        }
    }

    /// `(line / sets, line % sets)`, division-free.
    #[inline]
    fn div_rem(self, line: u64) -> (u64, usize) {
        match self {
            SetMap::Mask { mask, l } => (line >> l, (line & mask) as usize),
            SetMap::Magic { d, m, l } => {
                let q0 = ((u128::from(line) * u128::from(m)) >> 64) as u64;
                let t = ((line - q0) >> 1).wrapping_add(q0);
                let q = t >> (l - 1);
                (q, (line - q * d) as usize)
            }
        }
    }
}

/// A set-associative cache with true-LRU replacement, driven by byte
/// addresses.
///
/// Lines are allocated at `line_bytes` granularity. The simulator tracks hits
/// and misses; it does not model data contents.
///
/// Recency is kept as compact per-set `u32` ages (a per-set counter stamps
/// each touched way) rather than one global `u64` clock — half the stamp
/// memory and the ages stay local to the set that owns them. When a set's
/// counter would overflow, its ages are rank-compressed to `0..assoc` and
/// counting resumes; LRU order is preserved exactly. The batched path
/// renormalizes eagerly when a set's run could overflow mid-run — the
/// rank compression is semantically transparent, so hit/miss streams are
/// unaffected by when it happens.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    assoc: usize,
    line_shift: u32,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-way recency ages, larger = more recently used; indexed like
    /// `tags`.
    ages: Vec<u32>,
    /// Per-set age counters; the next stamp handed out in a set is
    /// `set_clock[set] + 1`.
    set_clock: Vec<u32>,
    hits: u64,
    misses: u64,
    batch: BatchScratch,
}

impl SetAssocCache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or the geometry implies
    /// zero sets.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(
            geometry.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = geometry.sets() as usize;
        let assoc = geometry.associativity as usize;
        assert!(sets > 0 && assoc > 0, "degenerate cache geometry");
        Self {
            geometry,
            sets,
            assoc,
            line_shift: geometry.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * assoc],
            ages: vec![0; sets * assoc],
            set_clock: vec![0; sets],
            hits: 0,
            misses: 0,
            batch: BatchScratch::default(),
        }
    }

    /// Geometry this cache was built from.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access one byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let stamp = self.next_stamp(set);
        let base = set * self.assoc;
        let ways = &self.tags[base..base + self.assoc];

        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.ages[base + way] = stamp;
            self.hits += 1;
            return true;
        }

        // Miss: fill into invalid way or evict LRU (smallest age).
        let victim = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_age = u32::MAX;
                for (w, &age) in self.ages[base..base + self.assoc].iter().enumerate() {
                    if age < lru_age {
                        lru_age = age;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.tags[base + victim] = line;
        self.ages[base + victim] = stamp;
        self.misses += 1;
        false
    }

    /// Replay a whole address stream, updating hit/miss counters.
    ///
    /// Semantically identical to calling [`access`] per address — same final
    /// cache state, same counters, same per-access hit/miss outcomes (see
    /// [`access_batch_record`]) — but the stream is partitioned per set and
    /// each set's run replayed locally, which is several times faster on
    /// long traces because a set's tags and ages stay resident while its
    /// run replays.
    ///
    /// [`access`]: SetAssocCache::access
    /// [`access_batch_record`]: SetAssocCache::access_batch_record
    pub fn access_batch(&mut self, addrs: &[u64]) {
        self.batch_replay::<false>(addrs, &mut Vec::new());
    }

    /// Like [`access_batch`], but also records the per-address hit/miss
    /// outcome into `out` (cleared and resized to `addrs.len()`), in
    /// original stream order.
    ///
    /// [`access_batch`]: SetAssocCache::access_batch
    pub fn access_batch_record(&mut self, addrs: &[u64], out: &mut Vec<bool>) {
        self.batch_replay::<true>(addrs, out);
    }

    /// Shared batched-replay implementation; `REC` selects outcome
    /// recording at monomorphization time so the non-recording path carries
    /// no per-access branch.
    fn batch_replay<const REC: bool>(&mut self, addrs: &[u64], out: &mut Vec<bool>) {
        if REC {
            out.clear();
            out.resize(addrs.len(), false);
        }
        if addrs.len() < BATCH_MIN {
            // Tiny streams: the scalar loop wins.
            for (i, &addr) in addrs.iter().enumerate() {
                let hit = self.access(addr);
                if REC {
                    out[i] = hit;
                }
            }
            return;
        }

        let sets = self.sets;
        let assoc = self.assoc;
        let shift = self.line_shift;
        let set_map = SetMap::new(sets);

        // Scale the chunk with the set count so per-set runs stay long
        // enough to amortize the per-run state load/store (~16 addresses
        // per occupied set on a uniform stream), bounded to keep the
        // bucket scratch from outgrowing the host cache hierarchy.
        let chunk_len = (16 * sets).clamp(BATCH_CHUNK, BATCH_CHUNK_MAX);

        // Quotient compression: within a set, `line = q * sets + set`, so
        // the quotient alone identifies a line and u32 quotients (4-byte
        // compares, SIMD-friendly under baseline codegen) replace u64 tag
        // compares — provided every quotient in play fits strictly below
        // `u32::MAX` (the invalid sentinel). `q_limit` is the smallest
        // line whose quotient does not; any chunk or resident tag at or
        // above it falls back to the u64 kernels for exactness.
        let q_limit = u64::from(u32::MAX).saturating_mul(sets as u64);
        let q_eligible = matches!(assoc, 2 | 4 | 8 | 16);

        let b = &mut self.batch;
        b.counts.resize(sets, 0);
        b.cursor.resize(sets, 0);
        b.bucket_lines.resize(chunk_len, 0);
        b.chunk_sq.resize(chunk_len, 0);
        if q_eligible {
            b.bucket_q.resize(chunk_len, 0);
        }
        if REC {
            b.bucket_idx.resize(chunk_len, 0);
        }

        for (chunk_no, chunk) in addrs.chunks(chunk_len).enumerate() {
            let out_base = chunk_no * chunk_len;

            // Pass 1: per-set counts. `set_map` keeps the pass
            // division-free (mask or multiply-high reciprocal), and the
            // per-address set/quotient results are cached so the scatter
            // pass never re-divides. `max_line` rides along to validate
            // quotient compression for the chunk (a truncated cached
            // quotient is then unused — the fallback path re-derives full
            // lines from the addresses).
            // `or_lines` over-approximates the chunk's max line; it only
            // ever forces a (correct) u64-path fallback, never a wrong
            // quotient — and an OR is cheaper than a compare-select.
            let mut or_lines = 0u64;
            let counts = &mut b.counts[..sets];
            for (&addr, sq) in chunk.iter().zip(&mut b.chunk_sq) {
                let line = addr >> shift;
                let (q, set) = set_map.div_rem(line);
                or_lines |= line;
                *sq = (q << 32) | set as u64;
                counts[set] += 1;
            }
            let use_q = q_eligible && or_lines < q_limit;

            // Pass 2: exclusive prefix sum over set indices — bucket
            // offsets. Replay order across sets is irrelevant (sets are
            // independent); only per-set order matters.
            let mut cum = 0u32;
            for (cur, &cnt) in b.cursor.iter_mut().zip(&b.counts) {
                *cur = cum;
                cum += cnt;
            }

            // Pass 3: scatter quotients (or full lines on the fallback
            // path) and, when recording, original positions into the
            // buckets. Per-set order is preserved, which is what makes the
            // replay bit-identical to the scalar path.
            if use_q {
                let cursor = &mut b.cursor[..sets];
                let bucket_q = &mut b.bucket_q[..];
                for (i, &sq) in b.chunk_sq[..chunk.len()].iter().enumerate() {
                    let set = (sq as u32) as usize;
                    let p = cursor[set] as usize;
                    cursor[set] += 1;
                    bucket_q[p] = (sq >> 32) as u32;
                    if REC {
                        b.bucket_idx[p] = i as u32;
                    }
                }
            } else {
                for (i, (&addr, &sq)) in chunk.iter().zip(&b.chunk_sq).enumerate() {
                    let set = (sq as u32) as usize;
                    let p = b.cursor[set] as usize;
                    b.cursor[set] += 1;
                    b.bucket_lines[p] = addr >> shift;
                    if REC {
                        b.bucket_idx[p] = i as u32;
                    }
                }
            }

            // Replay each occupied set's run locally, dispatching once per
            // run to an associativity-specialized kernel.
            for set in 0..sets {
                let cnt = b.counts[set] as usize;
                if cnt == 0 {
                    continue;
                }
                let end = b.cursor[set] as usize;
                let start = end - cnt;
                let base = set * assoc;

                let clock = &mut self.set_clock[set];
                let tags = &mut self.tags[base..base + assoc];
                let ages = &mut self.ages[base..base + assoc];
                // Eager renormalization: if this run could overflow the
                // set's stamp counter, rank-compress before replaying. The
                // scalar path compresses exactly at the overflow point;
                // compressing earlier preserves LRU order and therefore the
                // hit/miss stream.
                if ((u32::MAX - *clock) as usize) < cnt {
                    renormalize_set(ages, clock);
                }

                // Fully-resident warm runs at the SIMD-friendly narrow
                // associativities are deferred and replayed two-at-a-time
                // after this loop, overlapping their dependency chains.
                #[cfg(target_arch = "x86_64")]
                if use_q && (assoc == 4 || assoc == 8) {
                    let mut all_resident = true;
                    for &t in tags.iter() {
                        all_resident &= t != u64::MAX && t < q_limit;
                    }
                    if all_resident {
                        b.warm_runs.push(set as u32);
                        continue;
                    }
                }

                let idxs = if REC { &b.bucket_idx[start..end] } else { &[] };
                let run_hits = if use_q {
                    // A resident tag written by the scalar path could sit
                    // above the quotient limit; reconstruct the run's full
                    // lines and take the u64 kernel in that (vanishingly
                    // rare) case.
                    let resident_ok = tags.iter().all(|&t| t == u64::MAX || t < q_limit);
                    if resident_ok {
                        let qs = &b.bucket_q[start..end];
                        match assoc {
                            2 => replay_q::<REC, 2>(
                                set_map,
                                sets as u64,
                                set,
                                tags,
                                ages,
                                clock,
                                qs,
                                idxs,
                                out,
                                out_base,
                            ),
                            4 => replay_q::<REC, 4>(
                                set_map,
                                sets as u64,
                                set,
                                tags,
                                ages,
                                clock,
                                qs,
                                idxs,
                                out,
                                out_base,
                            ),
                            8 => replay_q::<REC, 8>(
                                set_map,
                                sets as u64,
                                set,
                                tags,
                                ages,
                                clock,
                                qs,
                                idxs,
                                out,
                                out_base,
                            ),
                            _ => replay_q::<REC, 16>(
                                set_map,
                                sets as u64,
                                set,
                                tags,
                                ages,
                                clock,
                                qs,
                                idxs,
                                out,
                                out_base,
                            ),
                        }
                    } else {
                        for p in start..end {
                            b.bucket_lines[p] = u64::from(b.bucket_q[p]) * sets as u64 + set as u64;
                        }
                        let lines = &b.bucket_lines[start..end];
                        replay_dyn::<REC>(tags, ages, clock, lines, idxs, out, out_base)
                    }
                } else {
                    let lines = &b.bucket_lines[start..end];
                    match assoc {
                        2 => replay_fixed::<REC, 2>(tags, ages, clock, lines, idxs, out, out_base),
                        4 => replay_fixed::<REC, 4>(tags, ages, clock, lines, idxs, out, out_base),
                        8 => replay_fixed::<REC, 8>(tags, ages, clock, lines, idxs, out, out_base),
                        16 => {
                            replay_fixed::<REC, 16>(tags, ages, clock, lines, idxs, out, out_base)
                        }
                        _ => replay_dyn::<REC>(tags, ages, clock, lines, idxs, out, out_base),
                    }
                };
                self.hits += run_hits;
                self.misses += cnt as u64 - run_hits;
            }
            #[cfg(target_arch = "x86_64")]
            if !b.warm_runs.is_empty() {
                let (h, n) = if assoc == 4 {
                    replay_warm_pairs::<REC, 4>(
                        set_map,
                        sets as u64,
                        &b.warm_runs,
                        &b.counts,
                        &b.cursor,
                        &b.bucket_q,
                        &b.bucket_idx,
                        &mut self.tags,
                        &mut self.ages,
                        &mut self.set_clock,
                        out,
                        out_base,
                    )
                } else {
                    replay_warm_pairs::<REC, 8>(
                        set_map,
                        sets as u64,
                        &b.warm_runs,
                        &b.counts,
                        &b.cursor,
                        &b.bucket_q,
                        &b.bucket_idx,
                        &mut self.tags,
                        &mut self.ages,
                        &mut self.set_clock,
                        out,
                        out_base,
                    )
                };
                self.hits += h;
                self.misses += n - h;
                b.warm_runs.clear();
            }

            // Restore the all-zero invariant for the next chunk.
            b.counts.fill(0);
        }
    }

    /// Advance one set's age counter, rank-compressing the set's ages first
    /// if the counter is about to overflow.
    fn next_stamp(&mut self, set: usize) -> u32 {
        if self.set_clock[set] == u32::MAX {
            let base = set * self.assoc;
            renormalize_set(
                &mut self.ages[base..base + self.assoc],
                &mut self.set_clock[set],
            );
        }
        self.set_clock[set] += 1;
        self.set_clock[set]
    }

    /// Number of hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all accesses so far (0 if none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Reset statistics but keep cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Return the cache to its just-constructed state — contents, recency,
    /// and statistics — without reallocating, so one simulator instance can
    /// be reused across many sweep configurations. Batch scratch buffers
    /// are kept (they are transient per call and do not affect results).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.ages.fill(0);
        self.set_clock.fill(0);
        self.reset_stats();
    }

    /// Invalidate all lines and reset statistics (alias of [`reset`]
    /// retained for existing callers).
    ///
    /// [`reset`]: SetAssocCache::reset
    pub fn flush(&mut self) {
        self.reset();
    }

    /// Force one set's age counter (test hook for overflow handling).
    #[cfg(test)]
    fn force_set_clock(&mut self, set: usize, value: u32) {
        self.set_clock[set] = value;
    }
}

/// Rank-compress one set's ages to `0..assoc`, preserving their relative
/// order (ties — only possible among never-stamped ways — break by way
/// index), and pull the set counter back accordingly. Runs once per
/// ~4 × 10⁹ accesses to a set, so the O(assoc²) stable rank is cheaper
/// than allocating a sort permutation.
fn renormalize_set(ages: &mut [u32], clock: &mut u32) {
    let n = ages.len();
    let mut ranks = [0u32; 64];
    if n <= ranks.len() {
        for w in 0..n {
            let mut rank = 0u32;
            for (v, &other) in ages.iter().enumerate() {
                rank += u32::from(other < ages[w] || (other == ages[w] && v < w));
            }
            ranks[w] = rank;
        }
        ages.copy_from_slice(&ranks[..n]);
    } else {
        // Degenerate associativity (> 64 ways): fall back to a sorted
        // permutation.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&w| (ages[w], w));
        for (rank, &w) in order.iter().enumerate() {
            ages[w] = rank as u32;
        }
    }
    *clock = n as u32;
}

/// Probe `A` u32 quotient tags for `qv`, returning a bitmask with bit `w`
/// set when way `w` matches. On x86-64 the 4/8/16-way widths compile to
/// explicit SSE2 compare + pack + movemask sequences (SSE2 is part of the
/// x86-64 baseline, so no runtime dispatch is needed); elsewhere, and for
/// 2-way sets, a scalar compare loop produces the same mask.
#[inline]
fn probe_q<const A: usize>(q: &[u32; A], qv: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{
            _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_epi8, _mm_movemask_ps,
            _mm_packs_epi16, _mm_packs_epi32, _mm_set1_epi32,
        };
        // SAFETY: SSE2 is unconditionally part of the x86-64 baseline, so
        // the target feature is always available under this `cfg`; the
        // unaligned vector loads read `o + 4 <= A` lanes of `q`, in bounds
        // by the `A`-width dispatch below.
        unsafe {
            let needle = _mm_set1_epi32(qv as i32);
            let quad = |o: usize| {
                debug_assert!(o + 4 <= A);
                _mm_loadu_si128(q.as_ptr().add(o).cast())
            };
            if A == 4 {
                let c0 = _mm_cmpeq_epi32(quad(0), needle);
                return _mm_movemask_ps(_mm_castsi128_ps(c0)) as u32;
            }
            if A == 8 {
                let c0 = _mm_cmpeq_epi32(quad(0), needle);
                let c1 = _mm_cmpeq_epi32(quad(4), needle);
                let lo = _mm_packs_epi32(c0, c1);
                return (_mm_movemask_epi8(_mm_packs_epi16(lo, lo)) as u32) & 0xFF;
            }
            if A == 16 {
                let c0 = _mm_cmpeq_epi32(quad(0), needle);
                let c1 = _mm_cmpeq_epi32(quad(4), needle);
                let c2 = _mm_cmpeq_epi32(quad(8), needle);
                let c3 = _mm_cmpeq_epi32(quad(12), needle);
                let lo = _mm_packs_epi32(c0, c1);
                let hi = _mm_packs_epi32(c2, c3);
                return _mm_movemask_epi8(_mm_packs_epi16(lo, hi)) as u32;
            }
        }
    }
    let mut m = 0u32;
    for w in 0..A {
        m |= u32::from(q[w] == qv) << w;
    }
    m
}

/// Stamp out the warm-set SWAR replay loop at a given rank-word width
/// (`u64` holds up to 8 one-byte ranks, `u128` up to 16).
///
/// `ranks` packs each way's recency rank (0 = LRU … A-1 = MRU) into one
/// byte per way; unused high bytes hold the sentinel `0x7F`, which can
/// neither read as zero (victim select) nor overflow into a neighbouring
/// byte under the compare-add (`0x7F + 0x7F < 0x100`), and the decrement
/// mask is clipped to the low `A` bytes so sentinels never drift. Per
/// access:
///
/// * victim = the unique zero byte, found with the classic
///   `(v - 0x01…01) & !v & 0x80…80` zero-byte scan (borrow propagation can
///   only corrupt bytes *above* the first zero, and `trailing_zeros` takes
///   the first);
/// * recency update: bytes ranked above the touched way's rank `r` each
///   drop by one — bytes with value `> r` are exactly those whose high bit
///   sets under `+ (0x7F - r)` per byte — and the touched way becomes MRU
///   (`A-1`). The word stays a permutation of `0..A`, mirroring the
///   relative order of the scalar path's stamps exactly.
macro_rules! define_warm_swar {
    ($name:ident, $T:ty) => {
        #[inline]
        fn $name<const REC: bool, const A: usize>(
            q: &mut [u32; A],
            ranks: &mut [u8; A],
            qs: &[u32],
            idxs: &[u32],
            out: &mut [bool],
            out_base: usize,
        ) -> u64 {
            const WIDTH: usize = core::mem::size_of::<$T>();
            debug_assert!(A <= WIDTH && A.is_power_of_two());
            let ones: $T = <$T>::MAX / 0xFF;
            let highs: $T = ones * 0x80;
            let low_mask: $T = if A == WIDTH {
                <$T>::MAX
            } else {
                ((1 as $T) << (8 * A)) - 1
            };
            let lowa: $T = ones & low_mask;
            // Per-rank compare addend, tabulated so the hot loop's only
            // multiply-free byte compare is a load (`r < A` always, but
            // mask anyway to keep the indexing branchless and panic-free).
            let mut addend = [0 as $T; A];
            for (r, a) in addend.iter_mut().enumerate() {
                *a = ones * (0x7F - r as $T);
            }
            let mut packed: $T = (ones * 0x7F) & !low_mask;
            for (w, &r) in ranks.iter().enumerate() {
                packed |= (r as $T) << (8 * w);
            }

            let mut run_hits = 0u64;
            for (k, &qv) in qs.iter().enumerate() {
                let hit_m = probe_q::<A>(q, qv);
                let hit = hit_m != 0;
                // Exactly one byte of `packed` is zero (the ranks are a
                // permutation of 0..A), so `z` is never 0 on the miss path.
                let z = packed.wrapping_sub(ones) & !packed & highs;
                let vway = z.trailing_zeros() >> 3;
                let way = (if hit { hit_m.trailing_zeros() } else { vway }) as usize & (A - 1);
                let sh = (8 * way) as u32;
                let r = ((packed >> sh) & 0xFF) as usize & (A - 1);
                let gt = (packed + addend[r]) & highs;
                packed -= (gt >> 7) & lowa;
                packed = (packed & !((0xFF as $T) << sh)) | (((A - 1) as $T) << sh);
                q[way] = qv;
                run_hits += u64::from(hit);
                if REC {
                    out[out_base + idxs[k] as usize] = hit;
                }
            }

            for (w, r) in ranks.iter_mut().enumerate() {
                *r = ((packed >> (8 * w)) & 0xFF) as u8;
            }
            run_hits
        }
    };
}

define_warm_swar!(warm_swar_u64, u64);
define_warm_swar!(warm_swar_u128, u128);

/// Per-way lane-select masks for the SSE blend update: row `w` is all
/// ones in lane `w`, zero elsewhere. `const`-evaluated so the replay
/// kernels reference a compile-time table.
#[cfg(target_arch = "x86_64")]
const fn lane_masks<const A: usize>() -> [[u32; A]; A] {
    let mut rows = [[0u32; A]; A];
    let mut w = 0;
    while w < A {
        rows[w][w] = u32::MAX;
        w += 1;
    }
    rows
}

/// x86-64 variant of the warm-set replay: same packed-rank recency logic
/// as [`define_warm_swar`], but the quotient tags stay resident in SSE2
/// registers for the whole run — the probe is a compare + pack + movemask
/// over those registers and the way update is a mask blend, so the loop
/// body performs no tag stores. (A store-based update would forward a
/// 4-byte store into the next iteration's 16-byte probe loads, a
/// store-forwarding stall on every access.)
macro_rules! define_warm_sse {
    ($name:ident, $T:ty) => {
        #[cfg(target_arch = "x86_64")]
        #[inline]
        fn $name<const REC: bool, const A: usize>(
            q: &mut [u32; A],
            ranks: &mut [u8; A],
            qs: &[u32],
            idxs: &[u32],
            out: &mut [bool],
            out_base: usize,
        ) -> u64 {
            use core::arch::x86_64::{
                __m128i, _mm_and_si128, _mm_andnot_si128, _mm_castsi128_ps, _mm_cmpeq_epi32,
                _mm_loadu_si128, _mm_movemask_epi8, _mm_movemask_ps, _mm_or_si128, _mm_packs_epi16,
                _mm_packs_epi32, _mm_set1_epi32, _mm_setzero_si128, _mm_storeu_si128,
            };
            const WIDTH: usize = core::mem::size_of::<$T>();
            debug_assert!(A <= WIDTH && matches!(A, 4 | 8 | 16));
            let ones: $T = <$T>::MAX / 0xFF;
            let highs: $T = ones * 0x80;
            let low_mask: $T = if A == WIDTH {
                <$T>::MAX
            } else {
                ((1 as $T) << (8 * A)) - 1
            };
            let lowa: $T = ones & low_mask;
            let sevenf: $T = ones * 0x7F;
            let mut packed: $T = sevenf & !low_mask;
            for (w, &r) in ranks.iter().enumerate() {
                packed |= (r as $T) << (8 * w);
            }
            // Row w selects lane w across the tag registers; built at
            // compile time so runs pay no table-initialization cost.
            let mask_rows: &[[u32; A]; A] = const { &lane_masks::<A>() };

            let mut run_hits = 0u64;
            // SAFETY: SSE2 is part of the x86-64 baseline; every vector
            // load/store covers lanes `0..A` of `q` or one A-lane row of
            // `mask_rows`, in bounds because A ∈ {4, 8, 16} and `way` is
            // masked to `0..A`.
            unsafe {
                let qp = q.as_mut_ptr().cast::<__m128i>();
                let mut t0 = _mm_loadu_si128(qp);
                let mut t1 = if A > 4 {
                    _mm_loadu_si128(qp.add(1))
                } else {
                    _mm_setzero_si128()
                };
                let mut t2 = if A > 8 {
                    _mm_loadu_si128(qp.add(2))
                } else {
                    _mm_setzero_si128()
                };
                let mut t3 = if A > 8 {
                    _mm_loadu_si128(qp.add(3))
                } else {
                    _mm_setzero_si128()
                };
                for (k, &qv) in qs.iter().enumerate() {
                    let needle = _mm_set1_epi32(qv as i32);
                    let hit_m: u32 = if A == 4 {
                        let c0 = _mm_cmpeq_epi32(t0, needle);
                        _mm_movemask_ps(_mm_castsi128_ps(c0)) as u32
                    } else if A == 8 {
                        let c0 = _mm_cmpeq_epi32(t0, needle);
                        let c1 = _mm_cmpeq_epi32(t1, needle);
                        let lo = _mm_packs_epi32(c0, c1);
                        (_mm_movemask_epi8(_mm_packs_epi16(lo, lo)) as u32) & 0xFF
                    } else {
                        let c0 = _mm_cmpeq_epi32(t0, needle);
                        let c1 = _mm_cmpeq_epi32(t1, needle);
                        let c2 = _mm_cmpeq_epi32(t2, needle);
                        let c3 = _mm_cmpeq_epi32(t3, needle);
                        let lo = _mm_packs_epi32(c0, c1);
                        let hi = _mm_packs_epi32(c2, c3);
                        _mm_movemask_epi8(_mm_packs_epi16(lo, hi)) as u32
                    };
                    // The hit/miss split is a real branch on purpose: it
                    // is strongly predictable at the extremes (miss-heavy
                    // sweeps, hit-heavy hot sets) and each side's
                    // loop-carried dependency chain through `packed` is
                    // far shorter than a unified branchless body. On a
                    // hit the tags are untouched (the matching lane
                    // already holds `qv`); on a miss the victim's rank is
                    // 0 by definition, so every other resident byte
                    // simply decrements (`lowa` minus the victim's bit)
                    // and no rank extraction or compare-add is needed.
                    if hit_m != 0 {
                        let way = hit_m.trailing_zeros() as usize & (A - 1);
                        let sh = (8 * way) as u32;
                        let r = (packed >> sh) & 0xFF;
                        let gt = (packed + (sevenf - ones * r)) & highs;
                        packed -= (gt >> 7) & lowa;
                        packed = (packed & !((0xFF as $T) << sh)) | (((A - 1) as $T) << sh);
                        run_hits += 1;
                        if REC {
                            out[out_base + idxs[k] as usize] = true;
                        }
                    } else {
                        // One byte of `packed` is zero (ranks are a
                        // permutation of 0..A), and subtracting 0x01 from
                        // each byte sets the high bit only at that byte
                        // and possibly at a borrow chain *above* it —
                        // `trailing_zeros` takes the lowest, so the
                        // `& !packed` of the classic zero-byte scan is
                        // unnecessary. The victim's bit sits at 8·way + 7.
                        let z = packed.wrapping_sub(ones) & highs;
                        let tzb = z.trailing_zeros();
                        let sh = tzb & !7;
                        let way = (tzb >> 3) as usize & (A - 1);
                        packed -= lowa ^ ((1 as $T) << sh);
                        packed |= ((A - 1) as $T) << sh;
                        let row = mask_rows[way].as_ptr().cast::<__m128i>();
                        let m0 = _mm_loadu_si128(row);
                        t0 = _mm_or_si128(_mm_andnot_si128(m0, t0), _mm_and_si128(m0, needle));
                        if A > 4 {
                            let m1 = _mm_loadu_si128(row.add(1));
                            t1 = _mm_or_si128(_mm_andnot_si128(m1, t1), _mm_and_si128(m1, needle));
                        }
                        if A > 8 {
                            let m2 = _mm_loadu_si128(row.add(2));
                            t2 = _mm_or_si128(_mm_andnot_si128(m2, t2), _mm_and_si128(m2, needle));
                            let m3 = _mm_loadu_si128(row.add(3));
                            t3 = _mm_or_si128(_mm_andnot_si128(m3, t3), _mm_and_si128(m3, needle));
                        }
                        if REC {
                            out[out_base + idxs[k] as usize] = false;
                        }
                    }
                }
                _mm_storeu_si128(qp, t0);
                if A > 4 {
                    _mm_storeu_si128(qp.add(1), t1);
                }
                if A > 8 {
                    _mm_storeu_si128(qp.add(2), t2);
                    _mm_storeu_si128(qp.add(3), t3);
                }
            }
            for (w, r) in ranks.iter_mut().enumerate() {
                *r = ((packed >> (8 * w)) & 0xFF) as u8;
            }
            run_hits
        }
    };
}

define_warm_sse!(warm_sse_u128, u128);

/// Warm-set replay state for one set at associativity `A` ≤ 8 (x86-64):
/// the u32 quotient tags live in two SSE2 registers and the recency ranks
/// in one packed u64, so a whole run executes without touching the set's
/// backing arrays. Factored as `load` / `step` / `store` so the caller can
/// interleave two independent sets' runs instruction-by-instruction — each
/// access's recency update is a short loop-carried dependency chain, and
/// two chains from different sets overlap in the out-of-order window,
/// roughly doubling replay throughput on miss-heavy streams.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
struct WarmLane<const A: usize> {
    t0: core::arch::x86_64::__m128i,
    t1: core::arch::x86_64::__m128i,
    packed: u64,
    run_hits: u64,
}

#[cfg(target_arch = "x86_64")]
impl<const A: usize> WarmLane<A> {
    const ONES: u64 = u64::MAX / 0xFF;
    const HIGHS: u64 = Self::ONES * 0x80;
    // `A >= 8` saturates so the constant also evaluates for the
    // monomorphizations that are dispatched away at runtime.
    const LOW_MASK: u64 = if A >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * A)) - 1
    };
    const LOWA: u64 = Self::ONES & Self::LOW_MASK;
    const SEVENF: u64 = Self::ONES * 0x7F;

    #[inline(always)]
    fn load(q: &[u32; A], ranks: &[u8; A]) -> Self {
        use core::arch::x86_64::{_mm_loadu_si128, _mm_setzero_si128};
        debug_assert!(A == 4 || A == 8);
        let mut packed: u64 = Self::SEVENF & !Self::LOW_MASK;
        for (w, &r) in ranks.iter().enumerate() {
            packed |= u64::from(r) << (8 * w);
        }
        // SAFETY: SSE2 is part of the x86-64 baseline; the loads cover
        // lanes 0..A of `q`, in bounds because A ∈ {4, 8}.
        unsafe {
            let qp = q.as_ptr().cast();
            Self {
                t0: _mm_loadu_si128(qp),
                t1: if A > 4 {
                    _mm_loadu_si128(qp.add(1))
                } else {
                    _mm_setzero_si128()
                },
                packed,
                run_hits: 0,
            }
        }
    }

    #[inline(always)]
    fn step<const REC: bool>(
        &mut self,
        qv: u32,
        k: usize,
        idxs: &[u32],
        out: &mut [bool],
        out_base: usize,
    ) {
        use core::arch::x86_64::{
            __m128i, _mm_and_si128, _mm_andnot_si128, _mm_castsi128_ps, _mm_cmpeq_epi32,
            _mm_loadu_si128, _mm_movemask_epi8, _mm_movemask_ps, _mm_or_si128, _mm_packs_epi16,
            _mm_packs_epi32, _mm_set1_epi32,
        };
        // SAFETY: SSE2 baseline; the mask-row load covers one A-lane row
        // of the compile-time `lane_masks` table, and `way` is masked to
        // `0..A`.
        unsafe {
            let needle = _mm_set1_epi32(qv as i32);
            let hit_m: u32 = if A == 4 {
                let c0 = _mm_cmpeq_epi32(self.t0, needle);
                _mm_movemask_ps(_mm_castsi128_ps(c0)) as u32
            } else {
                let c0 = _mm_cmpeq_epi32(self.t0, needle);
                let c1 = _mm_cmpeq_epi32(self.t1, needle);
                let lo = _mm_packs_epi32(c0, c1);
                (_mm_movemask_epi8(_mm_packs_epi16(lo, lo)) as u32) & 0xFF
            };
            // Same predictable hit/miss split and packed-rank updates as
            // `define_warm_sse` — see its comments for the SWAR identities.
            if hit_m != 0 {
                let way = hit_m.trailing_zeros() as usize & (A - 1);
                let sh = (8 * way) as u32;
                let r = (self.packed >> sh) & 0xFF;
                let gt = (self.packed + (Self::SEVENF - Self::ONES * r)) & Self::HIGHS;
                self.packed -= (gt >> 7) & Self::LOWA;
                self.packed = (self.packed & !(0xFFu64 << sh)) | (((A - 1) as u64) << sh);
                self.run_hits += 1;
                if REC {
                    out[out_base + idxs[k] as usize] = true;
                }
            } else {
                let z = self.packed.wrapping_sub(Self::ONES) & Self::HIGHS;
                let tzb = z.trailing_zeros();
                let sh = tzb & !7;
                let way = (tzb >> 3) as usize & (A - 1);
                self.packed -= Self::LOWA ^ (1u64 << sh);
                self.packed |= ((A - 1) as u64) << sh;
                let rows: &[[u32; A]; A] = const { &lane_masks::<A>() };
                let row = rows[way].as_ptr().cast::<__m128i>();
                let m0 = _mm_loadu_si128(row);
                self.t0 = _mm_or_si128(_mm_andnot_si128(m0, self.t0), _mm_and_si128(m0, needle));
                if A > 4 {
                    let m1 = _mm_loadu_si128(row.add(1));
                    self.t1 =
                        _mm_or_si128(_mm_andnot_si128(m1, self.t1), _mm_and_si128(m1, needle));
                }
                if REC {
                    out[out_base + idxs[k] as usize] = false;
                }
            }
        }
    }

    #[inline(always)]
    fn store(self, q: &mut [u32; A], ranks: &mut [u8; A]) -> u64 {
        use core::arch::x86_64::_mm_storeu_si128;
        // SAFETY: SSE2 baseline; stores cover lanes 0..A of `q`.
        unsafe {
            let qp = q.as_mut_ptr().cast();
            _mm_storeu_si128(qp, self.t0);
            if A > 4 {
                _mm_storeu_si128(qp.add(1), self.t1);
            }
        }
        for (w, r) in ranks.iter_mut().enumerate() {
            *r = ((self.packed >> (8 * w)) & 0xFF) as u8;
        }
        self.run_hits
    }
}

/// Read one warm set's state out of the backing arrays into quotient tags
/// and recency ranks. The caller guarantees every resident tag is valid
/// and below the quotient limit.
#[cfg(target_arch = "x86_64")]
#[inline]
fn load_warm_set<const A: usize>(
    set_map: SetMap,
    base: usize,
    tags: &[u64],
    ages: &[u32],
    clock: u32,
) -> ([u32; A], [u8; A]) {
    let mut q = [0u32; A];
    let mut g = [0u32; A];
    for w in 0..A {
        let (quot, _) = set_map.div_rem(tags[base + w]);
        q[w] = quot as u32;
        g[w] = ages[base + w];
    }
    let mut ranks = [0u8; A];
    if clock == A as u32 {
        // Ages are `rank + 1` from a previous warm writeback.
        for w in 0..A {
            ranks[w] = (g[w] - 1) as u8;
        }
    } else {
        for w in 0..A {
            let mut r = 0u8;
            for (v, &other) in g.iter().enumerate() {
                r += u8::from(other < g[w] || (other == g[w] && v < w));
            }
            ranks[w] = r;
        }
    }
    (q, ranks)
}

/// Write a warm run's final state back: tags reconstructed from the
/// quotients, ages as `rank + 1` with the set clock at `A` (LRU order
/// preserved exactly — downstream behaviour depends only on the order).
#[cfg(target_arch = "x86_64")]
#[inline]
#[allow(clippy::too_many_arguments)] // hot-path leaf; the args are the set's SoA columns
fn store_warm_set<const A: usize>(
    q: &[u32; A],
    ranks: &[u8; A],
    sets: u64,
    set: usize,
    base: usize,
    tags: &mut [u64],
    ages: &mut [u32],
    clock: &mut u32,
) {
    for w in 0..A {
        tags[base + w] = u64::from(q[w]) * sets + set as u64;
        ages[base + w] = u32::from(ranks[w]) + 1;
    }
    *clock = A as u32;
}

/// Replay a chunk's deferred warm runs two sets at a time, interleaving
/// the per-access steps of each pair so their dependency chains overlap.
/// Returns `(hits, accesses)` over all runs replayed.
#[cfg(target_arch = "x86_64")]
#[inline]
#[allow(clippy::too_many_arguments)]
fn replay_warm_pairs<const REC: bool, const A: usize>(
    set_map: SetMap,
    sets: u64,
    runs: &[u32],
    counts: &[u32],
    cursor: &[u32],
    bucket_q: &[u32],
    bucket_idx: &[u32],
    tags: &mut [u64],
    ages: &mut [u32],
    clocks: &mut [u32],
    out: &mut [bool],
    out_base: usize,
) -> (u64, u64) {
    let mut hits = 0u64;
    let mut accesses = 0u64;
    let run_of = |set: usize| {
        let end = cursor[set] as usize;
        let cnt = counts[set] as usize;
        (end - cnt, end)
    };
    let mut it = runs.chunks_exact(2);
    for pair in &mut it {
        // lint:allow(no_panic, chunks_exact(2) guarantees both elements)
        let (sa, sb) = (pair[0] as usize, pair[1] as usize);
        let (start_a, end_a) = run_of(sa);
        let (start_b, end_b) = run_of(sb);
        let qa = &bucket_q[start_a..end_a];
        let qb = &bucket_q[start_b..end_b];
        let (ia, ib) = if REC {
            (&bucket_idx[start_a..end_a], &bucket_idx[start_b..end_b])
        } else {
            (&[] as &[u32], &[] as &[u32])
        };
        let (mut qsa, mut ra) = load_warm_set::<A>(set_map, sa * A, tags, ages, clocks[sa]);
        let (mut qsb, mut rb) = load_warm_set::<A>(set_map, sb * A, tags, ages, clocks[sb]);
        let mut lane_a = WarmLane::<A>::load(&qsa, &ra);
        let mut lane_b = WarmLane::<A>::load(&qsb, &rb);
        let n = qa.len().min(qb.len());
        for k in 0..n {
            lane_a.step::<REC>(qa[k], k, ia, out, out_base);
            lane_b.step::<REC>(qb[k], k, ib, out, out_base);
        }
        for (k, &qv) in qa.iter().enumerate().skip(n) {
            lane_a.step::<REC>(qv, k, ia, out, out_base);
        }
        for (k, &qv) in qb.iter().enumerate().skip(n) {
            lane_b.step::<REC>(qv, k, ib, out, out_base);
        }
        hits += lane_a.store(&mut qsa, &mut ra);
        hits += lane_b.store(&mut qsb, &mut rb);
        accesses += (qa.len() + qb.len()) as u64;
        store_warm_set::<A>(&qsa, &ra, sets, sa, sa * A, tags, ages, &mut clocks[sa]);
        store_warm_set::<A>(&qsb, &rb, sets, sb, sb * A, tags, ages, &mut clocks[sb]);
    }
    if let [set] = it.remainder() {
        let set = *set as usize;
        let (start, end) = run_of(set);
        let qs = &bucket_q[start..end];
        let idxs = if REC {
            &bucket_idx[start..end]
        } else {
            &[] as &[u32]
        };
        let (mut q, mut ranks) = load_warm_set::<A>(set_map, set * A, tags, ages, clocks[set]);
        let mut lane = WarmLane::<A>::load(&q, &ranks);
        for (k, &qv) in qs.iter().enumerate() {
            lane.step::<REC>(qv, k, idxs, out, out_base);
        }
        hits += lane.store(&mut q, &mut ranks);
        accesses += qs.len() as u64;
        store_warm_set::<A>(&q, &ranks, sets, set, set * A, tags, ages, &mut clocks[set]);
    }
    (hits, accesses)
}

/// Dispatch a warm-set run to the best replay kernel for the target: the
/// register-resident SSE2 kernel on x86-64 for the SIMD-friendly widths,
/// the portable SWAR kernel otherwise. All kernels produce bit-identical
/// hit/miss streams.
#[inline]
fn warm_replay<const REC: bool, const A: usize>(
    q: &mut [u32; A],
    ranks: &mut [u8; A],
    qs: &[u32],
    idxs: &[u32],
    out: &mut [bool],
    out_base: usize,
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if A == 16 {
            return warm_sse_u128::<REC, A>(q, ranks, qs, idxs, out, out_base);
        }
        if A >= 4 {
            let mut lane = WarmLane::<A>::load(q, ranks);
            for (k, &qv) in qs.iter().enumerate() {
                lane.step::<REC>(qv, k, idxs, out, out_base);
            }
            return lane.store(q, ranks);
        }
    }
    if A <= 8 {
        warm_swar_u64::<REC, A>(q, ranks, qs, idxs, out, out_base)
    } else {
        warm_swar_u128::<REC, A>(q, ranks, qs, idxs, out, out_base)
    }
}

/// Replay one set's bucketed run against its ways at a
/// compile-time-known associativity, comparing u32 quotient-compressed
/// tags (see `batch_replay` — within a set the quotient alone identifies a
/// line). Returns the run's hit count.
///
/// The set's tags are compressed into a `[u32; A]` working copy for the
/// run (invalid = `u32::MAX`, unambiguous because the caller has verified
/// every quotient in play is strictly below it) and decompressed once at
/// the end; 4-byte compares keep the probe a couple of vector
/// instructions even under baseline codegen. Warm sets (no invalid ways —
/// the steady state) replay in a tighter loop that skips the
/// invalid-way scan; a set can only become warm mid-run, so the split is
/// decided once per run without changing semantics.
#[inline]
#[allow(clippy::too_many_arguments)]
fn replay_q<const REC: bool, const A: usize>(
    set_map: SetMap,
    sets: u64,
    set: usize,
    tags: &mut [u64],
    ages: &mut [u32],
    clock: &mut u32,
    qs: &[u32],
    idxs: &[u32],
    out: &mut [bool],
    out_base: usize,
) -> u64 {
    if tags.len() != A || ages.len() != A {
        // Unreachable: callers dispatch on `assoc == A`.
        return 0;
    }
    let mut q = [0u32; A];
    let mut g = [0u32; A];
    let mut warm = true;
    for w in 0..A {
        let tag = tags[w];
        if tag == u64::MAX {
            q[w] = u32::MAX;
            warm = false;
        } else {
            let (quot, _) = set_map.div_rem(tag);
            q[w] = quot as u32;
        }
        g[w] = ages[w];
    }
    let mut stamp = *clock;
    let mut run_hits = 0u64;

    if warm {
        // Warm sets replay on packed recency ranks instead of stamps: the
        // per-way age is compressed to its rank in LRU order (0 = LRU,
        // A-1 = MRU), one byte per way in a single machine word. A stamped
        // way's age is unique within its set (stamps increase strictly and
        // rank compression preserves distinctness), so in a warm set the
        // rank order *is* the age order and replaying on ranks yields a
        // bit-identical hit/miss stream. The victim select becomes
        // "find the zero byte" and the recency update a constant ~10 ALU
        // ops regardless of associativity — no minimum scan, no stamp
        // overflow. Ranks are written back as ages `rank + 1` with the set
        // clock at `A`, which preserves LRU order exactly (all downstream
        // behaviour — scalar or batched — depends only on the order).
        let mut ranks = [0u8; A];
        if *clock == A as u32 {
            // Steady state: a previous warm run wrote ages back as
            // `rank + 1` with the clock at `A`, so the ranks read off
            // directly without the O(A²) ordering pass.
            for w in 0..A {
                ranks[w] = (g[w] - 1) as u8;
            }
        } else {
            for w in 0..A {
                let mut r = 0u8;
                for (v, &other) in g.iter().enumerate() {
                    r += u8::from(other < g[w] || (other == g[w] && v < w));
                }
                ranks[w] = r;
            }
        }
        run_hits = warm_replay::<REC, A>(&mut q, &mut ranks, qs, idxs, out, out_base);
        for w in 0..A {
            tags[w] = u64::from(q[w]) * sets + set as u64;
            ages[w] = u32::from(ranks[w]) + 1;
        }
        *clock = A as u32;
        return run_hits;
    }
    {
        for (k, &qv) in qs.iter().enumerate() {
            stamp += 1;
            let mut hit_m = 0u32;
            let mut inv_m = 0u32;
            for w in 0..A {
                hit_m |= u32::from(q[w] == qv) << w;
                inv_m |= u32::from(q[w] == u32::MAX) << w;
            }
            let mut lru = 0u32;
            let mut best_age = u32::MAX;
            for w in 0..A {
                let better = g[w] < best_age;
                lru = if better { w as u32 } else { lru };
                best_age = if better { g[w] } else { best_age };
            }
            let hit = hit_m != 0;
            let mut way = if inv_m != 0 {
                inv_m.trailing_zeros()
            } else {
                lru
            };
            way = if hit { hit_m.trailing_zeros() } else { way };
            for w in 0..A {
                let sel = w as u32 == way;
                q[w] = if sel { qv } else { q[w] };
                g[w] = if sel { stamp } else { g[w] };
            }
            run_hits += u64::from(hit);
            if REC {
                out[out_base + idxs[k] as usize] = hit;
            }
        }
    }

    for w in 0..A {
        tags[w] = if q[w] == u32::MAX {
            u64::MAX
        } else {
            u64::from(q[w]) * sets + set as u64
        };
        ages[w] = g[w];
    }
    *clock = stamp;
    run_hits
}

/// Replay one set's bucketed run against its ways at a
/// compile-time-known associativity. Returns the run's hit count.
///
/// Tags and ages are copied into fixed-size locals for the run, so the
/// compiler keeps the whole set in registers: the probe compiles to
/// chunked 4/8-wide vector tag compares feeding "which ways match" /
/// "which ways are invalid" bit masks, the way update is a select (no
/// indexed store), and memory is touched only at the run boundaries.
/// `trailing_zeros` recovers the scalar path's first-match /
/// first-invalid semantics; the LRU victim select is a branchless
/// first-minimum scan matching the scalar tie-break.
#[inline]
fn replay_fixed<const REC: bool, const A: usize>(
    tags: &mut [u64],
    ages: &mut [u32],
    clock: &mut u32,
    lines: &[u64],
    idxs: &[u32],
    out: &mut [bool],
    out_base: usize,
) -> u64 {
    if tags.len() != A || ages.len() != A {
        // Unreachable: callers dispatch on `assoc == A`.
        return 0;
    }
    let mut t = [0u64; A];
    let mut g = [0u32; A];
    t.copy_from_slice(tags);
    g.copy_from_slice(ages);
    let mut stamp = *clock;
    let mut run_hits = 0u64;
    for (k, &line) in lines.iter().enumerate() {
        stamp += 1;

        let mut hit_m = 0u32;
        for w in 0..A {
            hit_m |= u32::from(t[w] == line) << w;
        }
        let hit = hit_m != 0;
        if A >= 16 && hit {
            // Wide-set hit fast path: the tag is already in place, so only
            // the matched way's age moves — skip the invalid scan and the
            // LRU minimum entirely. (Narrow sets stay fully branchless;
            // their scans are too cheap to be worth a branch.)
            let way = hit_m.trailing_zeros();
            for (w, age) in g.iter_mut().enumerate() {
                *age = if w as u32 == way { stamp } else { *age };
            }
            run_hits += 1;
            if REC {
                out[out_base + idxs[k] as usize] = true;
            }
            continue;
        }
        let mut inv_m = 0u32;
        for w in 0..A {
            inv_m |= u32::from(t[w] == u64::MAX) << w;
        }
        // Branchless first-minimum scan (LRU victim), unrolled.
        let mut lru = 0u32;
        let mut best_age = u32::MAX;
        for w in 0..A {
            let better = g[w] < best_age;
            lru = if better { w as u32 } else { lru };
            best_age = if better { g[w] } else { best_age };
        }
        // Priority select, all conditional moves — no data-dependent
        // branches. `trailing_zeros` recovers the scalar path's
        // first-match / first-invalid semantics.
        let mut way = if inv_m != 0 {
            inv_m.trailing_zeros()
        } else {
            lru
        };
        way = if hit { hit_m.trailing_zeros() } else { way };

        // Select-based way update (a hit rewrites the same tag): keeps
        // `t`/`g` register-resident instead of forcing an indexed store.
        for w in 0..A {
            let sel = w as u32 == way;
            t[w] = if sel { line } else { t[w] };
            g[w] = if sel { stamp } else { g[w] };
        }
        run_hits += u64::from(hit);
        if REC {
            out[out_base + idxs[k] as usize] = hit;
        }
    }
    tags.copy_from_slice(&t);
    ages.copy_from_slice(&g);
    *clock = stamp;
    run_hits
}

/// Replay one set's bucketed run at a runtime associativity (the fallback
/// for widths without a fixed-size specialization). Same semantics as
/// [`replay_fixed`]. Returns the run's hit count.
#[inline]
fn replay_dyn<const REC: bool>(
    tags: &mut [u64],
    ages: &mut [u32],
    clock: &mut u32,
    lines: &[u64],
    idxs: &[u32],
    out: &mut [bool],
    out_base: usize,
) -> u64 {
    let assoc = tags.len();
    let mut run_hits = 0u64;
    for (k, &line) in lines.iter().enumerate() {
        *clock += 1;
        let stamp = *clock;

        let (hit, way) = if assoc <= 32 {
            // One pass over the ways builds hit/invalid bit masks with no
            // early-exit branches; `trailing_zeros` recovers the scalar
            // path's first-match / first-invalid semantics.
            let mut hit_m = 0u32;
            let mut inv_m = 0u32;
            for (w, &t) in tags.iter().enumerate() {
                hit_m |= u32::from(t == line) << w;
                inv_m |= u32::from(t == u64::MAX) << w;
            }
            if hit_m != 0 {
                (true, hit_m.trailing_zeros() as usize)
            } else if inv_m != 0 {
                (false, inv_m.trailing_zeros() as usize)
            } else {
                (false, lru_way(ages))
            }
        } else {
            // Very wide sets: plain scans with the same semantics.
            match tags.iter().position(|&t| t == line) {
                Some(way) => (true, way),
                None => match tags.iter().position(|&t| t == u64::MAX) {
                    Some(way) => (false, way),
                    None => (false, lru_way(ages)),
                },
            }
        };

        // On a hit this rewrites the same tag — branchless on purpose.
        tags[way] = line;
        ages[way] = stamp;
        run_hits += u64::from(hit);
        if REC {
            out[out_base + idxs[k] as usize] = hit;
        }
    }
    run_hits
}

/// Branchless first-minimum scan over a set's ages (LRU victim).
#[inline]
fn lru_way(ages: &[u32]) -> usize {
    let mut best = 0usize;
    let mut best_age = u32::MAX;
    for (w, &a) in ages.iter().enumerate() {
        let better = a < best_age;
        best = if better { w } else { best };
        best_age = if better { a } else { best_age };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 4096,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 4,
        })
    }

    fn two_way_single_set() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 2 * 64,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 2,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_has_only_cold_misses() {
        let mut c = small_cache(); // 64 lines
        for pass in 0..4 {
            for line in 0..32u64 {
                let hit = c.access(line * 64);
                assert_eq!(hit, pass > 0, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn cyclic_sweep_larger_than_cache_thrashes() {
        let mut c = small_cache(); // 64 lines, 16 sets × 4 ways
                                   // 128 distinct lines, cycled: classic LRU worst case — ~0% hits.
        for _ in 0..4 {
            for line in 0..128u64 {
                c.access(line * 64);
            }
        }
        assert!(c.hit_rate() < 0.01, "got {}", c.hit_rate());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = two_way_single_set();
        // Single set, 2 ways.
        c.access(0); // A
        c.access(64); // B
        c.access(0); // A hit, A is MRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A should survive");
        assert!(!c.access(64), "B should have been evicted");
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small_cache();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn reset_allows_exact_reuse() {
        let run = |c: &mut SetAssocCache| -> (u64, u64) {
            for _ in 0..3 {
                for line in 0..96u64 {
                    c.access(line * 64 * 7);
                }
            }
            (c.hits(), c.misses())
        };
        let mut reused = small_cache();
        let first = run(&mut reused);
        reused.reset();
        assert_eq!(reused.accesses(), 0);
        let second = run(&mut reused);
        assert_eq!(first, second, "reset cache must replay identically");

        let mut fresh = small_cache();
        assert_eq!(run(&mut fresh), first, "reset equals fresh construction");
    }

    #[test]
    fn age_counter_overflow_preserves_lru_order() {
        let mut c = two_way_single_set();
        c.access(0); // A, age 1
        c.access(64); // B, age 2 — A is LRU
                      // Next stamp would overflow: the set renormalizes (A → 0, B → 1)
                      // before stamping.
        c.force_set_clock(0, u32::MAX);
        assert!(c.access(64), "B still resident across renormalization");
        // A must still be the LRU victim.
        c.access(128); // C evicts A
        assert!(c.access(64), "B survives");
        assert!(c.access(128), "C survives");
        assert!(!c.access(0), "A was the LRU victim");
    }

    #[test]
    fn repeated_overflow_is_stable() {
        let mut c = two_way_single_set();
        c.access(0);
        c.access(64);
        for round in 0..5 {
            c.force_set_clock(0, u32::MAX);
            // Touch A so the recency order flips each round.
            let keep = if round % 2 == 0 { 0 } else { 64 };
            assert!(c.access(keep), "round {round}");
        }
        // Last touched was A (round 4) → B is LRU.
        c.access(128);
        assert!(c.access(0), "A survives final eviction");
        assert!(!c.access(64), "B evicted");
    }

    /// Scalar replay of a trace on a fresh clone, for comparison.
    fn scalar_outcomes(c: &SetAssocCache, addrs: &[u64]) -> Vec<bool> {
        let mut scalar = c.clone();
        addrs.iter().map(|&a| scalar.access(a)).collect()
    }

    fn pseudo_trace(n: usize, lines: u64, stride: u64, seed: u64) -> Vec<u64> {
        // Deterministic mixed-locality trace without pulling in an RNG.
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 3 == 0 {
                    (i as u64 % lines) * stride
                } else {
                    (state >> 33) % lines * stride
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_per_access() {
        let mut c = small_cache();
        let trace = pseudo_trace(5000, 256, 64, 7);
        let expect = scalar_outcomes(&c, &trace);
        let mut got = Vec::new();
        c.access_batch_record(&trace, &mut got);
        assert_eq!(got, expect);
        assert_eq!(c.hits(), expect.iter().filter(|&&h| h).count() as u64);
    }

    #[test]
    fn batch_matches_scalar_on_non_pow2_sets() {
        // 12 sets × 2 ways: exercises the modulo path.
        let mut c = SetAssocCache::new(CacheGeometry {
            size_bytes: 12 * 2 * 64,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 2,
        });
        assert_eq!(c.geometry().sets(), 12);
        let trace = pseudo_trace(4096, 300, 64, 11);
        let expect = scalar_outcomes(&c, &trace);
        let mut got = Vec::new();
        c.access_batch_record(&trace, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_and_scalar_can_interleave() {
        let mut batched = small_cache();
        let mut scalar = small_cache();
        let t1 = pseudo_trace(2000, 128, 64, 3);
        let t2 = pseudo_trace(2000, 512, 64, 5);
        batched.access_batch(&t1);
        for &a in &t1 {
            scalar.access(a);
        }
        // Continue the same cache state scalar-vs-batched swapped.
        for &a in &t2 {
            batched.access(a);
        }
        scalar.access_batch(&t2);
        assert_eq!(batched.hits(), scalar.hits());
        assert_eq!(batched.misses(), scalar.misses());
    }

    #[test]
    fn batch_renormalizes_past_stamp_overflow() {
        let mut c = two_way_single_set();
        c.access(0); // A, age 1
        c.access(64); // B, age 2 — A is LRU
        c.force_set_clock(0, u32::MAX - 3);
        // An 8-access run cannot fit in the 3 remaining stamps: the batch
        // path must renormalize eagerly and still preserve LRU order.
        let run = [64u64, 64, 128, 64, 128, 64, 128, 64, 64, 64];
        let mut got = Vec::new();
        c.access_batch_record(&run, &mut got);
        // Scalar reference on a fresh cache driven to the same state.
        let mut s = two_way_single_set();
        s.access(0);
        s.access(64);
        s.force_set_clock(0, u32::MAX - 3);
        let expect: Vec<bool> = run.iter().map(|&a| s.access(a)).collect();
        assert_eq!(got, expect);
        assert_eq!(c.hits(), s.hits());
        assert!(!c.access(0), "A was evicted by C across the overflow");
    }

    #[test]
    fn reset_after_batch_allows_exact_reuse() {
        let trace = pseudo_trace(40_000, 1024, 64, 13);
        let mut c = small_cache();
        c.access_batch(&trace);
        let first = (c.hits(), c.misses());
        c.reset();
        assert_eq!(c.accesses(), 0);
        c.access_batch(&trace);
        assert_eq!(
            (c.hits(), c.misses()),
            first,
            "reset must replay identically"
        );

        // And a reset batch cache equals a fresh scalar cache.
        let mut fresh = small_cache();
        for &a in &trace {
            fresh.access(a);
        }
        assert_eq!((fresh.hits(), fresh.misses()), first);
    }

    #[test]
    fn tiny_batches_use_scalar_fallback() {
        let mut c = small_cache();
        let trace: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        let mut got = Vec::new();
        c.access_batch_record(&trace, &mut got);
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|&h| !h), "cold misses");
        assert_eq!(c.misses(), 8);
    }
}
