//! Trace-driven set-associative LRU cache simulator.

use crate::device::CacheGeometry;

/// A set-associative cache with true-LRU replacement, driven by byte
/// addresses.
///
/// Lines are allocated at `line_bytes` granularity. The simulator tracks hits
/// and misses; it does not model data contents.
///
/// Recency is kept as compact per-set `u32` ages (a per-set counter stamps
/// each touched way) rather than one global `u64` clock — half the stamp
/// memory and the ages stay local to the set that owns them. When a set's
/// counter would overflow, its ages are rank-compressed to `0..assoc` and
/// counting resumes; LRU order is preserved exactly.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    assoc: usize,
    line_shift: u32,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-way recency ages, larger = more recently used; indexed like
    /// `tags`.
    ages: Vec<u32>,
    /// Per-set age counters; the next stamp handed out in a set is
    /// `set_clock[set] + 1`.
    set_clock: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or the geometry implies
    /// zero sets.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(
            geometry.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = geometry.sets() as usize;
        let assoc = geometry.associativity as usize;
        assert!(sets > 0 && assoc > 0, "degenerate cache geometry");
        Self {
            geometry,
            sets,
            assoc,
            line_shift: geometry.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * assoc],
            ages: vec![0; sets * assoc],
            set_clock: vec![0; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry this cache was built from.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access one byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let stamp = self.next_stamp(set);
        let base = set * self.assoc;
        let ways = &self.tags[base..base + self.assoc];

        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.ages[base + way] = stamp;
            self.hits += 1;
            return true;
        }

        // Miss: fill into invalid way or evict LRU (smallest age).
        let victim = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_age = u32::MAX;
                for (w, &age) in self.ages[base..base + self.assoc].iter().enumerate() {
                    if age < lru_age {
                        lru_age = age;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.tags[base + victim] = line;
        self.ages[base + victim] = stamp;
        self.misses += 1;
        false
    }

    /// Advance one set's age counter, rank-compressing the set's ages first
    /// if the counter is about to overflow.
    fn next_stamp(&mut self, set: usize) -> u32 {
        if self.set_clock[set] == u32::MAX {
            self.renormalize(set);
        }
        self.set_clock[set] += 1;
        self.set_clock[set]
    }

    /// Rank-compress one set's ages to `0..assoc`, preserving their relative
    /// order, and pull the set counter back accordingly. Runs once per
    /// ~4 × 10⁹ accesses to a set.
    fn renormalize(&mut self, set: usize) {
        let base = set * self.assoc;
        let ages = &mut self.ages[base..base + self.assoc];
        let mut order: Vec<usize> = (0..ages.len()).collect();
        order.sort_unstable_by_key(|&w| ages[w]);
        for (rank, &w) in order.iter().enumerate() {
            ages[w] = rank as u32;
        }
        self.set_clock[set] = self.assoc as u32;
    }

    /// Number of hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all accesses so far (0 if none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Reset statistics but keep cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Return the cache to its just-constructed state — contents, recency,
    /// and statistics — without reallocating, so one simulator instance can
    /// be reused across many sweep configurations.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.ages.fill(0);
        self.set_clock.fill(0);
        self.reset_stats();
    }

    /// Invalidate all lines and reset statistics (alias of [`reset`]
    /// retained for existing callers).
    ///
    /// [`reset`]: SetAssocCache::reset
    pub fn flush(&mut self) {
        self.reset();
    }

    /// Force one set's age counter (test hook for overflow handling).
    #[cfg(test)]
    fn force_set_clock(&mut self, set: usize, value: u32) {
        self.set_clock[set] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 4096,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 4,
        })
    }

    fn two_way_single_set() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            size_bytes: 2 * 64,
            line_bytes: 64,
            sector_bytes: 32,
            associativity: 2,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_has_only_cold_misses() {
        let mut c = small_cache(); // 64 lines
        for pass in 0..4 {
            for line in 0..32u64 {
                let hit = c.access(line * 64);
                assert_eq!(hit, pass > 0, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn cyclic_sweep_larger_than_cache_thrashes() {
        let mut c = small_cache(); // 64 lines, 16 sets × 4 ways
                                   // 128 distinct lines, cycled: classic LRU worst case — ~0% hits.
        for _ in 0..4 {
            for line in 0..128u64 {
                c.access(line * 64);
            }
        }
        assert!(c.hit_rate() < 0.01, "got {}", c.hit_rate());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = two_way_single_set();
        // Single set, 2 ways.
        c.access(0); // A
        c.access(64); // B
        c.access(0); // A hit, A is MRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A should survive");
        assert!(!c.access(64), "B should have been evicted");
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small_cache();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn reset_allows_exact_reuse() {
        let run = |c: &mut SetAssocCache| -> (u64, u64) {
            for _ in 0..3 {
                for line in 0..96u64 {
                    c.access(line * 64 * 7);
                }
            }
            (c.hits(), c.misses())
        };
        let mut reused = small_cache();
        let first = run(&mut reused);
        reused.reset();
        assert_eq!(reused.accesses(), 0);
        let second = run(&mut reused);
        assert_eq!(first, second, "reset cache must replay identically");

        let mut fresh = small_cache();
        assert_eq!(run(&mut fresh), first, "reset equals fresh construction");
    }

    #[test]
    fn age_counter_overflow_preserves_lru_order() {
        let mut c = two_way_single_set();
        c.access(0); // A, age 1
        c.access(64); // B, age 2 — A is LRU
                      // Next stamp would overflow: the set renormalizes (A → 0, B → 1)
                      // before stamping.
        c.force_set_clock(0, u32::MAX);
        assert!(c.access(64), "B still resident across renormalization");
        // A must still be the LRU victim.
        c.access(128); // C evicts A
        assert!(c.access(64), "B survives");
        assert!(c.access(128), "C survives");
        assert!(!c.access(0), "A was the LRU victim");
    }

    #[test]
    fn repeated_overflow_is_stable() {
        let mut c = two_way_single_set();
        c.access(0);
        c.access(64);
        for round in 0..5 {
            c.force_set_clock(0, u32::MAX);
            // Touch A so the recency order flips each round.
            let keep = if round % 2 == 0 { 0 } else { 64 };
            assert!(c.access(keep), "round {round}");
        }
        // Last touched was A (round 4) → B is LRU.
        c.access(128);
        assert!(c.access(0), "A survives final eviction");
        assert!(!c.access(64), "B evicted");
    }
}
