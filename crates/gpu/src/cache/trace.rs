//! Synthetic address-trace generation, used to validate the analytic cache
//! model against the trace-driven simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::access::AccessPattern;

/// Generate `n` block-aligned byte addresses following `pattern`.
///
/// Blocks are `block_bytes` wide; the addresses returned are block base
/// addresses, suitable for a [`super::SetAssocCache`] configured with
/// `line_bytes == block_bytes`.
#[must_use]
pub fn generate(pattern: &AccessPattern, block_bytes: u32, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bb = u64::from(block_bytes);
    let mut out = Vec::with_capacity(n);
    match *pattern {
        AccessPattern::Streaming => {
            for i in 0..n as u64 {
                out.push(i * bb);
            }
        }
        AccessPattern::RandomUniform { working_set_bytes } => {
            let blocks = (working_set_bytes / bb).max(1);
            for _ in 0..n {
                out.push(rng.gen_range(0..blocks) * bb);
            }
        }
        AccessPattern::Sweep {
            working_set_bytes, ..
        } => {
            let blocks = (working_set_bytes / bb).max(1);
            for i in 0..n as u64 {
                out.push((i % blocks) * bb);
            }
        }
        AccessPattern::HotCold {
            hot_fraction,
            hot_bytes,
            cold_bytes,
        } => {
            let hot_blocks = (hot_bytes / bb).max(1);
            let cold_blocks = (cold_bytes / bb).max(1);
            for _ in 0..n {
                if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    out.push(rng.gen_range(0..hot_blocks) * bb);
                } else {
                    // Cold region sits above the hot region in the address
                    // space.
                    out.push((hot_blocks + rng.gen_range(0..cold_blocks)) * bb);
                }
            }
        }
        AccessPattern::Broadcast { bytes } => {
            let blocks = (bytes / bb).max(1);
            for i in 0..n as u64 {
                out.push((i % blocks) * bb);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_addresses_are_unique_and_ordered() {
        let t = generate(&AccessPattern::Streaming, 32, 100, 1);
        assert_eq!(t.len(), 100);
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn random_stays_in_working_set() {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 64 * 32,
        };
        let t = generate(&pat, 32, 10_000, 2);
        assert!(t.iter().all(|&a| a < 64 * 32));
    }

    #[test]
    fn hot_cold_respects_fraction() {
        let pat = AccessPattern::HotCold {
            hot_fraction: 0.8,
            hot_bytes: 32 * 32,
            cold_bytes: 1024 * 32,
        };
        let t = generate(&pat, 32, 100_000, 3);
        let hot = t.iter().filter(|&&a| a < 32 * 32).count();
        let frac = hot as f64 / t.len() as f64;
        assert!((frac - 0.8).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 1 << 16,
        };
        assert_eq!(generate(&pat, 32, 1000, 7), generate(&pat, 32, 1000, 7));
    }
}
