//! Synthetic address-trace generation, used to validate the analytic cache
//! model against the trace-driven simulator.
//!
//! Traces can be materialized at once ([`generate`] / [`generate_into`]) or
//! streamed chunk-by-chunk through [`TraceGen`] so multi-million-entry
//! traces replay in O(chunk) memory with zero steady-state allocation —
//! pair [`TraceGen::next_chunk`] with
//! [`SetAssocCache::access_batch`](super::SetAssocCache::access_batch).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::access::AccessPattern;

/// Pattern parameters pre-resolved to block counts, so the per-address
/// loop carries no re-derivation.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Streaming,
    Random {
        blocks: u64,
    },
    Sweep {
        blocks: u64,
    },
    HotCold {
        hot_fraction: f64,
        hot_blocks: u64,
        cold_blocks: u64,
    },
    Broadcast {
        blocks: u64,
    },
}

/// Incremental trace generator: emits the same address stream as
/// [`generate`] for the same `(pattern, block_bytes, n, seed)`, but in
/// caller-sized chunks written into a caller-owned buffer.
#[derive(Debug, Clone)]
pub struct TraceGen {
    kind: Kind,
    block_bytes: u64,
    /// Next global index to emit.
    next: u64,
    /// Total addresses to emit.
    n: u64,
    rng: StdRng,
}

impl TraceGen {
    /// Start a generator for `n` block-aligned addresses of `pattern`.
    #[must_use]
    pub fn new(pattern: &AccessPattern, block_bytes: u32, n: usize, seed: u64) -> Self {
        let bb = u64::from(block_bytes);
        let kind = match *pattern {
            AccessPattern::Streaming => Kind::Streaming,
            AccessPattern::RandomUniform { working_set_bytes } => Kind::Random {
                blocks: (working_set_bytes / bb).max(1),
            },
            AccessPattern::Sweep {
                working_set_bytes, ..
            } => Kind::Sweep {
                blocks: (working_set_bytes / bb).max(1),
            },
            AccessPattern::HotCold {
                hot_fraction,
                hot_bytes,
                cold_bytes,
            } => Kind::HotCold {
                hot_fraction: hot_fraction.clamp(0.0, 1.0),
                hot_blocks: (hot_bytes / bb).max(1),
                cold_blocks: (cold_bytes / bb).max(1),
            },
            AccessPattern::Broadcast { bytes } => Kind::Broadcast {
                blocks: (bytes / bb).max(1),
            },
        };
        Self {
            kind,
            block_bytes: bb,
            next: 0,
            n: n as u64,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Addresses not yet emitted.
    #[must_use]
    pub fn remaining(&self) -> usize {
        (self.n - self.next) as usize
    }

    /// Emit up to `max` addresses into `buf` (cleared first). Returns the
    /// number written; 0 means the trace is exhausted. `buf`'s capacity is
    /// reused across calls, so a steady-state generate/replay loop does not
    /// touch the allocator.
    pub fn next_chunk(&mut self, buf: &mut Vec<u64>, max: usize) -> usize {
        buf.clear();
        let count = self.remaining().min(max);
        if count == 0 {
            return 0;
        }
        buf.reserve(count);
        let bb = self.block_bytes;
        let start = self.next;
        match self.kind {
            Kind::Streaming => {
                for i in start..start + count as u64 {
                    buf.push(i * bb);
                }
            }
            Kind::Random { blocks } => {
                for _ in 0..count {
                    buf.push(self.rng.gen_range(0..blocks) * bb);
                }
            }
            Kind::Sweep { blocks } => {
                for i in start..start + count as u64 {
                    buf.push((i % blocks) * bb);
                }
            }
            Kind::HotCold {
                hot_fraction,
                hot_blocks,
                cold_blocks,
            } => {
                for _ in 0..count {
                    if self.rng.gen_bool(hot_fraction) {
                        buf.push(self.rng.gen_range(0..hot_blocks) * bb);
                    } else {
                        // Cold region sits above the hot region in the
                        // address space.
                        buf.push((hot_blocks + self.rng.gen_range(0..cold_blocks)) * bb);
                    }
                }
            }
            Kind::Broadcast { blocks } => {
                for i in start..start + count as u64 {
                    buf.push((i % blocks) * bb);
                }
            }
        }
        self.next += count as u64;
        count
    }
}

/// Generate `n` block-aligned byte addresses following `pattern` into a
/// caller-owned buffer (cleared first), reusing its capacity. Repeated
/// sweep configurations can share one buffer instead of allocating a fresh
/// multi-million-entry `Vec` per configuration.
pub fn generate_into(
    pattern: &AccessPattern,
    block_bytes: u32,
    n: usize,
    seed: u64,
    out: &mut Vec<u64>,
) {
    let mut gen = TraceGen::new(pattern, block_bytes, n, seed);
    let written = gen.next_chunk(out, n);
    debug_assert_eq!(written, n.min(written));
}

/// Generate `n` block-aligned byte addresses following `pattern`.
///
/// Blocks are `block_bytes` wide; the addresses returned are block base
/// addresses, suitable for a [`super::SetAssocCache`] configured with
/// `line_bytes == block_bytes`. Prefer [`generate_into`] (or [`TraceGen`]
/// for streaming) on hot paths.
#[must_use]
pub fn generate(pattern: &AccessPattern, block_bytes: u32, n: usize, seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    generate_into(pattern, block_bytes, n, seed, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_addresses_are_unique_and_ordered() {
        let t = generate(&AccessPattern::Streaming, 32, 100, 1);
        assert_eq!(t.len(), 100);
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn random_stays_in_working_set() {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 64 * 32,
        };
        let t = generate(&pat, 32, 10_000, 2);
        assert!(t.iter().all(|&a| a < 64 * 32));
    }

    #[test]
    fn hot_cold_respects_fraction() {
        let pat = AccessPattern::HotCold {
            hot_fraction: 0.8,
            hot_bytes: 32 * 32,
            cold_bytes: 1024 * 32,
        };
        let t = generate(&pat, 32, 100_000, 3);
        let hot = t.iter().filter(|&&a| a < 32 * 32).count();
        let frac = hot as f64 / t.len() as f64;
        assert!((frac - 0.8).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 1 << 16,
        };
        assert_eq!(generate(&pat, 32, 1000, 7), generate(&pat, 32, 1000, 7));
    }

    #[test]
    fn chunked_generation_matches_one_shot() {
        for pat in [
            AccessPattern::Streaming,
            AccessPattern::RandomUniform {
                working_set_bytes: 1 << 14,
            },
            AccessPattern::Sweep {
                working_set_bytes: 1 << 12,
                sweeps: 3,
            },
            AccessPattern::HotCold {
                hot_fraction: 0.7,
                hot_bytes: 1 << 10,
                cold_bytes: 1 << 14,
            },
            AccessPattern::Broadcast { bytes: 1 << 8 },
        ] {
            let whole = generate(&pat, 32, 10_000, 9);
            let mut gen = TraceGen::new(&pat, 32, 10_000, 9);
            let mut chunked = Vec::new();
            let mut buf = Vec::new();
            // Deliberately odd chunk size to exercise boundaries.
            while gen.next_chunk(&mut buf, 777) > 0 {
                chunked.extend_from_slice(&buf);
            }
            assert_eq!(chunked, whole, "pattern {pat:?}");
            assert_eq!(gen.remaining(), 0);
        }
    }

    #[test]
    fn generate_into_reuses_buffer() {
        let pat = AccessPattern::Streaming;
        let mut buf = Vec::new();
        generate_into(&pat, 32, 100, 1, &mut buf);
        assert_eq!(buf.len(), 100);
        let cap = buf.capacity();
        generate_into(&pat, 32, 50, 1, &mut buf);
        assert_eq!(buf.len(), 50);
        assert_eq!(buf.capacity(), cap, "capacity must be reused");
    }
}
