//! The memory hierarchy: trace-driven cache simulator, analytic hit-rate
//! model, and the L1 → L2 → DRAM composition.
//!
//! Two models of the same hierarchy coexist:
//!
//! * [`sim::SetAssocCache`] — a conventional set-associative LRU cache
//!   simulator driven by explicit address traces. Exact, but only feasible
//!   for small kernels; used by the test suite and the `trace` validation
//!   path.
//! * [`analytic`] — closed-form steady-state hit rates per
//!   [`crate::access::AccessPattern`]. This is what the engine uses to
//!   process workloads that execute hundreds of billions of warp
//!   instructions.
//!
//! The property-test suite generates synthetic traces per pattern, runs them
//! through the simulator, and asserts the analytic model lands within a
//! tolerance band — the "analytic vs. trace-driven" ablation called out in
//! DESIGN.md.

pub mod analytic;
pub mod hierarchy;
pub mod sim;
pub mod trace;

pub use hierarchy::{MemoryModel, StreamTraffic, TrafficResult};
pub use sim::SetAssocCache;
