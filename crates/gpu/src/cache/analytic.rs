//! Closed-form steady-state cache hit-rate models, one per
//! [`AccessPattern`].
//!
//! The models operate at *sector* granularity (32 B), which matches how
//! Ampere-class GPUs fill their sectored caches: a streaming kernel touching
//! each sector exactly once gets a ~0 % hit rate even though four sectors
//! share a 128 B line, exactly what Nsight reports for copy-like kernels.
//!
//! * `Streaming` — every block touched once → only cold misses.
//! * `RandomUniform` / `HotCold` — the independent-reference model solved
//!   with **Che's approximation** [Che, Tung, Wang 2002]: a block with access
//!   probability `p` hits with probability `1 − exp(−p·T)` where the
//!   characteristic time `T` solves `Σᵢ (1 − exp(−pᵢ·T)) = C`.
//! * `Sweep` — cyclic re-reference: full reuse when the set fits, classic
//!   LRU thrash (≈ 0 reuse) when it does not.
//!
//! Each formula is validated against the trace-driven simulator in
//! `tests/cache_validation.rs` and by property tests.

use crate::access::AccessPattern;

/// Minimum accesses below which we don't trust steady-state math and just
/// report the cold-miss bound.
const EPS: f64 = 1e-12;

/// Steady-state hit rate of a stream with the given `pattern`, performing
/// `accesses` block-granular accesses against a cache holding
/// `capacity_blocks` blocks of `block_bytes` each.
///
/// Returns a value in `[0, 1]`.
#[must_use]
pub fn hit_rate(
    pattern: &AccessPattern,
    capacity_blocks: f64,
    block_bytes: u32,
    accesses: f64,
) -> f64 {
    if accesses <= EPS {
        return 0.0;
    }
    let bb = f64::from(block_bytes);
    match *pattern {
        AccessPattern::Streaming => 0.0,
        AccessPattern::RandomUniform { working_set_bytes } => {
            let distinct = (working_set_bytes as f64 / bb).max(1.0).min(accesses);
            uniform_hit(distinct, capacity_blocks, accesses)
        }
        AccessPattern::Sweep {
            working_set_bytes,
            sweeps,
        } => {
            let distinct = (working_set_bytes as f64 / bb).max(1.0);
            let sweeps = f64::from(sweeps.max(1));
            if distinct <= capacity_blocks {
                // Cold misses on the first sweep only. Within a sweep each
                // block is touched accesses/(distinct*sweeps) times.
                (1.0 - distinct / accesses).clamp(0.0, 1.0)
            } else {
                // Cyclic LRU thrash: no inter-sweep reuse. Intra-sweep
                // repeats (accesses > distinct*sweeps) still hit.
                let per_sweep = accesses / sweeps;
                (1.0 - distinct / per_sweep).clamp(0.0, 1.0)
            }
        }
        AccessPattern::HotCold {
            hot_fraction,
            hot_bytes,
            cold_bytes,
        } => {
            let f = hot_fraction.clamp(0.0, 1.0);
            let dh = (hot_bytes as f64 / bb).max(1.0);
            let dc = (cold_bytes as f64 / bb).max(1.0);
            // Expected distinct blocks actually touched per class (coupon
            // collector): D·(1 − e^(−N_class/D)).
            let nh = f * accesses;
            let nc = (1.0 - f) * accesses;
            let th = dh * (1.0 - (-nh / dh).exp());
            let tc = dc * (1.0 - (-nc / dc).exp());
            if dh + dc <= capacity_blocks {
                return (1.0 - (th + tc) / accesses).clamp(0.0, 1.0);
            }
            let (hh, hc) = che_two_class(f, dh, dc, capacity_blocks);
            // Per class: compulsory miss on the first touch of each block
            // reached, steady-state hits on the rest.
            let hot_hits = if nh > 0.0 {
                hh * (nh - th).max(0.0)
            } else {
                0.0
            };
            let cold_hits = if nc > 0.0 {
                hc * (nc - tc).max(0.0)
            } else {
                0.0
            };
            ((hot_hits + cold_hits) / accesses).clamp(0.0, 1.0)
        }
        AccessPattern::Broadcast { bytes } => {
            let distinct = (bytes as f64 / bb).max(1.0).min(accesses);
            uniform_hit(distinct, capacity_blocks, accesses)
        }
    }
}

/// Uniform IRM over `distinct` blocks: steady-state hit `min(1, C/D)`, with
/// cold misses amortized over `accesses`.
fn uniform_hit(distinct: f64, capacity: f64, accesses: f64) -> f64 {
    // Expected distinct blocks actually touched (coupon collector).
    let touched = distinct * (1.0 - (-accesses / distinct).exp());
    if distinct <= capacity {
        (1.0 - touched / accesses).clamp(0.0, 1.0)
    } else {
        // Compulsory miss on the first touch of each block reached,
        // steady-state capacity hit rate `C/D` on the rest.
        let steady = capacity / distinct;
        (steady * (1.0 - touched / accesses)).clamp(0.0, 1.0)
    }
}

/// Che's approximation for a two-class IRM: `f` of accesses spread uniformly
/// over `dh` hot blocks, `1 − f` over `dc` cold blocks, cache capacity `c`
/// blocks. Returns the per-class steady-state hit probabilities `(h_hot,
/// h_cold)`.
#[must_use]
pub fn che_two_class(f: f64, dh: f64, dc: f64, c: f64) -> (f64, f64) {
    let ph = if dh > 0.0 { f / dh } else { 0.0 };
    let pc = if dc > 0.0 { (1.0 - f) / dc } else { 0.0 };
    let occupied = |t: f64| dh * (1.0 - (-ph * t).exp()) + dc * (1.0 - (-pc * t).exp());

    // The cache can hold everything: all warm accesses hit.
    if dh + dc <= c {
        return (1.0, 1.0);
    }

    // Bisection for T with occupied(T) = c; occupied is increasing in T.
    let mut lo = 0.0;
    let mut hi = 1.0;
    while occupied(hi) < c && hi < 1e18 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if occupied(mid) < c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);
    ((1.0 - (-ph * t).exp()), (1.0 - (-pc * t).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_never_hits() {
        let h = hit_rate(&AccessPattern::Streaming, 1024.0, 32, 1e6);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn fitting_random_ws_approaches_one() {
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 1024 * 32,
        };
        let h = hit_rate(&pat, 4096.0, 32, 1e7);
        assert!(h > 0.999, "got {h}");
    }

    #[test]
    fn oversized_random_ws_is_capacity_ratio() {
        // 8192 blocks of working set, 1024-block cache → ~1/8 hit rate.
        let pat = AccessPattern::RandomUniform {
            working_set_bytes: 8192 * 32,
        };
        let h = hit_rate(&pat, 1024.0, 32, 1e7);
        assert!((h - 0.125).abs() < 0.01, "got {h}");
    }

    #[test]
    fn fitting_sweep_reuses_across_sweeps() {
        let pat = AccessPattern::Sweep {
            working_set_bytes: 512 * 32,
            sweeps: 8,
        };
        // 8 sweeps × 512 accesses.
        let h = hit_rate(&pat, 1024.0, 32, 8.0 * 512.0);
        assert!((h - 7.0 / 8.0).abs() < 1e-9, "got {h}");
    }

    #[test]
    fn thrashing_sweep_has_no_reuse() {
        let pat = AccessPattern::Sweep {
            working_set_bytes: 4096 * 32,
            sweeps: 8,
        };
        let h = hit_rate(&pat, 1024.0, 32, 8.0 * 4096.0);
        assert!(h < 0.01, "got {h}");
    }

    #[test]
    fn hot_cold_prefers_hot_region() {
        // 90% of accesses to 256 hot blocks, 10% to 65536 cold blocks,
        // 1024-block cache: hot region should be ~fully resident.
        let (hh, hc) = che_two_class(0.9, 256.0, 65536.0, 1024.0);
        assert!(hh > 0.95, "hot hit {hh}");
        assert!(hc < 0.35, "cold hit {hc}");
    }

    #[test]
    fn hot_cold_overall_rate_reasonable() {
        let pat = AccessPattern::HotCold {
            hot_fraction: 0.9,
            hot_bytes: 256 * 32,
            cold_bytes: 65536 * 32,
        };
        let h = hit_rate(&pat, 1024.0, 32, 1e7);
        assert!(h > 0.85 && h < 0.95, "got {h}");
    }

    #[test]
    fn broadcast_is_nearly_free() {
        let pat = AccessPattern::Broadcast { bytes: 64 * 32 };
        let h = hit_rate(&pat, 1024.0, 32, 1e6);
        assert!(h > 0.9999, "got {h}");
    }

    #[test]
    fn hit_rates_stay_in_unit_interval() {
        let pats = [
            AccessPattern::Streaming,
            AccessPattern::RandomUniform {
                working_set_bytes: 123_456,
            },
            AccessPattern::Sweep {
                working_set_bytes: 999_999,
                sweeps: 3,
            },
            AccessPattern::HotCold {
                hot_fraction: 0.7,
                hot_bytes: 4096,
                cold_bytes: 1 << 20,
            },
            AccessPattern::Broadcast { bytes: 256 },
        ];
        for pat in &pats {
            for &cap in &[1.0, 64.0, 4096.0] {
                for &n in &[1.0, 100.0, 1e9] {
                    let h = hit_rate(pat, cap, 32, n);
                    assert!((0.0..=1.0).contains(&h), "{pat:?} cap={cap} n={n} → {h}");
                }
            }
        }
    }
}
