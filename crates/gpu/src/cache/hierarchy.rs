//! The L1 → L2 → DRAM composition.
//!
//! Reads probe the per-SM L1 first (the analytic model is applied with the
//! single-SM L1 capacity, since the Cactus working sets are shared across
//! SMs and each L1 holds its own copy); L1 misses probe the device-wide L2;
//! L2 misses become DRAM transactions. Stores follow the GPU convention of
//! bypassing L1 (no-allocate) and coalescing in L2, with L2 write misses
//! accounted as DRAM write traffic.

use crate::access::{AccessStream, Direction};
use crate::cache::analytic;
use crate::device::Device;

/// Resolved memory traffic of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficResult {
    /// Transactions that probed L1 (reads only; stores bypass).
    pub l1_accesses: f64,
    /// Transactions that hit in L1.
    pub l1_hits: f64,
    /// Transactions that probed L2 (L1 read misses + all stores).
    pub l2_accesses: f64,
    /// Transactions that hit in L2.
    pub l2_hits: f64,
    /// Read transactions that reached DRAM.
    pub dram_read_transactions: f64,
    /// Write transactions that reached DRAM.
    pub dram_write_transactions: f64,
    /// Mean load-to-use latency of a read transaction, in core cycles.
    pub avg_read_latency_cycles: f64,
}

impl TrafficResult {
    /// L1 hit rate in `[0, 1]` (0 when there were no L1 accesses).
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses <= 0.0 {
            0.0
        } else {
            self.l1_hits / self.l1_accesses
        }
    }

    /// L2 hit rate in `[0, 1]` (0 when there were no L2 accesses).
    #[must_use]
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses <= 0.0 {
            0.0
        } else {
            self.l2_hits / self.l2_accesses
        }
    }

    /// Total DRAM transactions (reads + writes).
    #[must_use]
    pub fn dram_transactions(&self) -> f64 {
        self.dram_read_transactions + self.dram_write_transactions
    }

    /// DRAM read bytes given the device transaction size.
    #[must_use]
    pub fn dram_read_bytes(&self, device: &Device) -> f64 {
        self.dram_read_transactions * f64::from(device.dram_transaction_bytes)
    }

    /// DRAM write bytes given the device transaction size.
    #[must_use]
    pub fn dram_write_bytes(&self, device: &Device) -> f64 {
        self.dram_write_transactions * f64::from(device.dram_transaction_bytes)
    }
}

/// Per-stream traffic staged by [`MemoryModel::resolve_with`] before the
/// fold into a [`TrafficResult`]. One entry per non-empty access stream;
/// the staging buffer lives in the engine's launch scratch so repeated
/// launches reuse its capacity instead of allocating.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamTraffic {
    /// Transactions issued by the stream.
    pub txns: f64,
    /// L1 hit rate (reads; 0 for writes, which bypass L1).
    pub h1: f64,
    /// Transactions that probed L2.
    pub l2_in: f64,
    /// L2 hit rate over `l2_in`.
    pub h2: f64,
    /// True for read streams (reads probe L1 and accrue load latency).
    pub is_read: bool,
}

/// The analytic memory-hierarchy model.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryModel;

impl MemoryModel {
    /// Resolve a launch's access streams into per-level traffic.
    ///
    /// Convenience wrapper over [`MemoryModel::resolve_with`] with a
    /// throwaway staging buffer; hot callers (the engine's memo-miss path)
    /// thread a reusable buffer instead.
    #[must_use]
    pub fn resolve(device: &Device, streams: &[AccessStream]) -> TrafficResult {
        Self::resolve_with(device, streams, &mut Vec::new())
    }

    /// [`MemoryModel::resolve`] with caller-owned per-stream staging.
    ///
    /// Stage 1 walks the streams and records each one's per-level hit rates
    /// in `stage` (cleared first, capacity reused); stage 2 folds the staged
    /// entries into the aggregate in stream order. The fold performs the
    /// same floating-point operations in the same order as a fused loop, so
    /// the result is bit-identical to [`MemoryModel::resolve`].
    #[must_use]
    pub fn resolve_with(
        device: &Device,
        streams: &[AccessStream],
        stage: &mut Vec<StreamTraffic>,
    ) -> TrafficResult {
        let sector = device.l1.sector_bytes;
        let l1_blocks = device.l1.size_bytes as f64 / f64::from(sector);
        let l2_blocks = device.l2.size_bytes as f64 / f64::from(sector);
        let lat = &device.latencies;

        stage.clear();
        for stream in streams {
            let txns = stream.transactions();
            if txns <= 0.0 {
                continue;
            }
            match stream.direction {
                Direction::Read => {
                    let h1 = analytic::hit_rate(&stream.pattern, l1_blocks, sector, txns);
                    let l2_in = txns * (1.0 - h1);
                    let h2 = if l2_in > 0.0 {
                        analytic::hit_rate(&stream.pattern, l2_blocks, sector, l2_in)
                    } else {
                        0.0
                    };
                    stage.push(StreamTraffic {
                        txns,
                        h1,
                        l2_in,
                        h2,
                        is_read: true,
                    });
                }
                Direction::Write => {
                    // Stores bypass L1 and allocate in L2.
                    let h2 = analytic::hit_rate(&stream.pattern, l2_blocks, sector, txns);
                    stage.push(StreamTraffic {
                        txns,
                        h1: 0.0,
                        l2_in: txns,
                        h2,
                        is_read: false,
                    });
                }
            }
        }

        let mut out = TrafficResult::default();
        let mut read_latency_weighted = 0.0;
        let mut read_txns = 0.0;
        for s in stage.iter() {
            if s.is_read {
                let dram = s.l2_in * (1.0 - s.h2);
                out.l1_accesses += s.txns;
                out.l1_hits += s.h1 * s.txns;
                out.l2_accesses += s.l2_in;
                out.l2_hits += s.h2 * s.l2_in;
                out.dram_read_transactions += dram;

                let avg = s.h1 * lat.l1_hit
                    + (1.0 - s.h1) * (s.h2 * lat.l2_hit + (1.0 - s.h2) * lat.dram);
                read_latency_weighted += avg * s.txns;
                read_txns += s.txns;
            } else {
                out.l2_accesses += s.txns;
                out.l2_hits += s.h2 * s.txns;
                out.dram_write_transactions += s.txns * (1.0 - s.h2);
            }
        }

        out.avg_read_latency_cycles = if read_txns > 0.0 {
            read_latency_weighted / read_txns
        } else {
            lat.l1_hit
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;

    fn device() -> Device {
        Device::rtx3080()
    }

    #[test]
    fn streaming_read_misses_everywhere() {
        let streams = [AccessStream::read(1 << 22, 4, AccessPattern::Streaming)];
        let r = MemoryModel::resolve(&device(), &streams);
        assert!(r.l1_hit_rate() < 1e-9);
        assert!(r.l2_hit_rate() < 1e-9);
        let expected = (1 << 22) as f64 / 32.0 * 4.0;
        assert!((r.dram_read_transactions - expected).abs() < 1.0);
        // Streaming loads pay full DRAM latency.
        assert!(r.avg_read_latency_cycles > 400.0);
    }

    #[test]
    fn l1_resident_working_set_yields_high_hits_and_no_dram() {
        // 64 KiB working set fits the 128 KiB L1.
        let streams = [AccessStream::read(
            1 << 24,
            4,
            AccessPattern::RandomUniform {
                working_set_bytes: 64 * 1024,
            },
        )];
        let r = MemoryModel::resolve(&device(), &streams);
        assert!(r.l1_hit_rate() > 0.99, "l1 {}", r.l1_hit_rate());
        // Only the cold misses reach DRAM: ~2048 sectors.
        assert!(r.dram_read_transactions < 4096.0);
    }

    #[test]
    fn l2_resident_working_set_is_caught_by_l2() {
        // 2 MiB: too big for L1 (128 KiB), fits L2 (5 MiB).
        let streams = [AccessStream::read(
            1 << 24,
            4,
            AccessPattern::RandomUniform {
                working_set_bytes: 2 * 1024 * 1024,
            },
        )];
        let r = MemoryModel::resolve(&device(), &streams);
        assert!(r.l1_hit_rate() < 0.15, "l1 {}", r.l1_hit_rate());
        assert!(r.l2_hit_rate() > 0.95, "l2 {}", r.l2_hit_rate());
        let total_txn = (1 << 24) as f64 / 32.0 * 4.0;
        assert!(r.dram_read_transactions < 0.05 * total_txn);
    }

    #[test]
    fn writes_bypass_l1() {
        let streams = [AccessStream::write(1 << 20, 4, AccessPattern::Streaming)];
        let r = MemoryModel::resolve(&device(), &streams);
        assert_eq!(r.l1_accesses, 0.0);
        assert!(r.l2_accesses > 0.0);
        assert!(r.dram_write_transactions > 0.0);
        assert_eq!(r.dram_read_transactions, 0.0);
    }

    #[test]
    fn mixed_streams_accumulate() {
        let streams = [
            AccessStream::read(1 << 20, 4, AccessPattern::Streaming),
            AccessStream::write(1 << 20, 4, AccessPattern::Streaming),
        ];
        let r = MemoryModel::resolve(&device(), &streams);
        assert!(r.dram_read_transactions > 0.0);
        assert!(r.dram_write_transactions > 0.0);
        assert!(
            (r.dram_transactions() - (r.dram_read_transactions + r.dram_write_transactions)).abs()
                < 1e-9
        );
    }

    #[test]
    fn resolve_with_is_bit_identical_and_reuses_staging() {
        let streams = [
            AccessStream::read(1 << 20, 4, AccessPattern::Streaming),
            AccessStream::read(
                1 << 22,
                4,
                AccessPattern::RandomUniform {
                    working_set_bytes: 2 << 20,
                },
            ),
            AccessStream::write(1 << 20, 4, AccessPattern::Streaming),
        ];
        let base = MemoryModel::resolve(&device(), &streams);
        let mut stage = Vec::new();
        let a = MemoryModel::resolve_with(&device(), &streams, &mut stage);
        assert_eq!(a, base);
        assert_eq!(stage.len(), 3);
        let cap = stage.capacity();
        let b = MemoryModel::resolve_with(&device(), &streams, &mut stage);
        assert_eq!(b, base);
        assert_eq!(stage.capacity(), cap, "staging capacity must be reused");
    }

    #[test]
    fn empty_streams_default_latency() {
        let r = MemoryModel::resolve(&device(), &[]);
        assert_eq!(r.dram_transactions(), 0.0);
        assert!((r.avg_read_latency_cycles - device().latencies.l1_hit).abs() < 1e-9);
    }
}
