//! Deterministic parallel fan-out for suite-scale simulation.
//!
//! The Cactus runners simulate many independent workloads, each on its own
//! [`crate::engine::Gpu`]; nothing couples them, so they can execute on
//! separate OS threads. This module provides the one primitive those runners
//! need: an ordered parallel map whose output is **bit-identical to the
//! serial map** — workers pull items from a shared queue, tag every result
//! with its input index, and the results are reassembled in input order. The
//! per-item closures themselves are deterministic (the device model draws no
//! randomness at simulation time), so scheduling order cannot leak into the
//! output.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be pinned with the `CACTUS_THREADS` environment variable (`1` forces the
//! serial path; useful for benchmarking and debugging).
//!
//! `CACTUS_THREADS` parsing is deliberately forgiving: the value is
//! trimmed, and anything that is not a *positive* integer — unset, empty,
//! `0`, negative, non-numeric garbage, or a number too large for `usize` —
//! falls back to the machine's available parallelism (itself falling back
//! to 1 if the OS cannot report it). A huge-but-parseable value is honored
//! as given; [`parallel_map_threads`] clamps the worker count to the item
//! count, so over-asking never spawns idle threads.

use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "CACTUS_THREADS";

/// Worker threads to use: `CACTUS_THREADS` if set to a positive integer
/// (after trimming), otherwise the machine's available parallelism. See the
/// module docs for the exact fallback rules.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` on up to [`max_threads`] worker threads, returning
/// results in input order. Output is identical to
/// `items.into_iter().map(f).collect()`.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_threads(items, max_threads(), f)
}

/// [`parallel_map`] with an explicit worker-thread count.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_map_threads<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Workers pull *batches* of items under the queue lock (amortizing
    // lock traffic by `chunk`) and write each result straight into its own
    // pre-allocated slot, so there is no shared result sink to contend on
    // and no post-hoc sort. The chunk size keeps ~8 hand-offs per worker
    // for load balancing while capping lock acquisitions at O(n / chunk).
    let chunk = (n / (threads * 8)).max(1);
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut batch: Vec<(usize, T)> = Vec::with_capacity(chunk);
                loop {
                    {
                        let mut q = queue.lock().expect("work queue poisoned");
                        batch.extend(q.by_ref().take(chunk));
                    }
                    if batch.is_empty() {
                        break;
                    }
                    for (index, item) in batch.drain(..) {
                        let result = f(item);
                        // Uncontended: each index is handed to exactly one
                        // worker.
                        *slots[index].lock().expect("result slot poisoned") = Some(result);
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was dispatched exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let got = parallel_map_threads(input.clone(), threads, |x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn matches_serial_with_uneven_costs() {
        // Early items are the slowest, so completion order inverts input
        // order — the output must not.
        let input: Vec<u64> = (0..32).collect();
        let f = |x: u64| {
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x + 1
        };
        let serial: Vec<u64> = input.iter().map(|&x| f(x)).collect();
        assert_eq!(parallel_map_threads(input, 8, f), serial);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_threads(empty, 4, |x: u32| x).is_empty());
        assert_eq!(parallel_map_threads(vec![7], 4, |x| x * 2), vec![14]);
    }

    #[test]
    fn non_copy_items_and_results() {
        let input: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let got = parallel_map_threads(input, 4, |s| format!("{s}!"));
        assert_eq!(got[0], "w0!");
        assert_eq!(got[19], "w19!");
    }

    // std::thread::scope re-panics with its own payload, so only the fact
    // of the panic (not the message) crosses the join.
    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map_threads(vec![1u32, 2, 3], 2, |x| {
            assert!(x != 2, "worker boom");
            x
        });
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    /// All `CACTUS_THREADS` edge cases in one test: the variable is process
    /// global, so the cases run sequentially here rather than as separate
    /// (concurrently scheduled) tests.
    #[test]
    fn max_threads_env_edge_cases() {
        let fallback = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let saved = std::env::var(THREADS_ENV).ok();

        // Not positive integers → fall back to available parallelism.
        for garbage in [
            "0",
            "",
            " ",
            "-3",
            "eight",
            "3.5",
            "0x10",
            "99999999999999999999999",
        ] {
            std::env::set_var(THREADS_ENV, garbage);
            assert_eq!(max_threads(), fallback, "CACTUS_THREADS={garbage:?}");
        }

        // Positive integers are honored, including surrounding whitespace
        // and values far beyond the core count.
        for (value, want) in [("1", 1), (" 8 ", 8), ("64", 64), ("1000000", 1_000_000)] {
            std::env::set_var(THREADS_ENV, value);
            assert_eq!(max_threads(), want, "CACTUS_THREADS={value:?}");
        }

        // A huge override still executes correctly: the per-call clamp
        // bounds workers by the item count.
        std::env::set_var(THREADS_ENV, "1000000");
        let got = parallel_map(vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);

        match saved {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }
}
