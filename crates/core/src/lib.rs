//! # cactus-core
//!
//! The Cactus benchmark suite (Naderan-Tahan & Eeckhout, IISWC 2021): ten
//! widely-used, real-life, multi-kernel GPU-compute workloads selected
//! *top-down* from three domains (paper Table I):
//!
//! | Abbr | Domain | Workload |
//! |---|---|---|
//! | GMS | Molecular | Gromacs-style NPT equilibration (protein + solvent) |
//! | LMR | Molecular | LAMMPS-style rhodopsin-class protein simulation |
//! | LMC | Molecular | LAMMPS-style colloid suspension |
//! | GST | Graph | Gunrock-style BFS on a social network |
//! | GRU | Graph | Gunrock-style BFS on a road network |
//! | DCG | ML | DCGAN training (Celeb-A-like) |
//! | NST | ML | Neural-style transfer |
//! | RFL | ML | Deep-Q reinforcement learning (flappy bird) |
//! | SPT | ML | Spatial-transformer network (MNIST-like) |
//! | LGT | ML | Seq2seq translation with attention |
//!
//! Each workload really computes (MD forces, BFS distances, training
//! losses) while launching its production-stack kernel sequence on the
//! [`cactus_gpu`] device model; [`run`] returns the resulting
//! [`cactus_profiler::Profile`].

pub mod scale;
pub mod workloads;

pub use scale::SuiteScale;
pub use workloads::{suite, Domain, Workload};

use cactus_gpu::engine::MemoStats;
use cactus_gpu::{Device, Gpu};
use cactus_profiler::report::SummaryRow;
use cactus_profiler::Profile;

/// Run one workload by abbreviation on a fresh RTX-3080-class device and
/// return its profile.
///
/// # Panics
///
/// Panics if the abbreviation is unknown.
#[must_use]
pub fn run(abbr: &str, scale: SuiteScale) -> Profile {
    let w = workloads::by_abbr(abbr).unwrap_or_else(|| panic!("unknown Cactus workload {abbr:?}"));
    let mut gpu = Gpu::new(Device::rtx3080());
    w.run(&mut gpu, scale);
    Profile::from_records(gpu.records())
}

/// Run one workload on an existing device (the trace accumulates).
pub fn run_on(gpu: &mut Gpu, abbr: &str, scale: SuiteScale) -> Profile {
    let w = workloads::by_abbr(abbr).unwrap_or_else(|| panic!("unknown Cactus workload {abbr:?}"));
    let start = gpu.records().len();
    w.run(gpu, scale);
    Profile::from_records(&gpu.records()[start..])
}

/// Run the whole suite and produce one `(workload, profile)` pair per row
/// of Table I.
///
/// Workloads are independent — each gets its own fresh device — so they fan
/// out across worker threads ([`cactus_gpu::par`]; pin the count with
/// `CACTUS_THREADS`). The result is bit-identical to [`run_suite_serial`].
#[must_use]
pub fn run_suite(scale: SuiteScale) -> Vec<(Workload, Profile)> {
    run_suite_with_stats(scale)
        .into_iter()
        .map(|(w, p, _)| (w, p))
        .collect()
}

/// [`run_suite`], additionally reporting each workload's launch-memoization
/// counters ([`cactus_gpu::engine::MemoStats`]) so cache effectiveness is
/// observable in suite reports and CSV dumps.
#[must_use]
pub fn run_suite_with_stats(scale: SuiteScale) -> Vec<(Workload, Profile, MemoStats)> {
    cactus_gpu::par::parallel_map(suite(), |w| {
        let mut gpu = Gpu::new(Device::rtx3080());
        w.run(&mut gpu, scale);
        let p = Profile::from_records(gpu.records());
        let stats = gpu.memo_stats();
        (w, p, stats)
    })
}

/// [`run_suite`] on the calling thread only, in Table I order. Reference
/// implementation for determinism tests and serial-vs-parallel benchmarks.
#[must_use]
pub fn run_suite_serial(scale: SuiteScale) -> Vec<(Workload, Profile)> {
    suite()
        .into_iter()
        .map(|w| {
            let mut gpu = Gpu::new(Device::rtx3080());
            w.run(&mut gpu, scale);
            let p = Profile::from_records(gpu.records());
            (w, p)
        })
        .collect()
}

/// The Table I summary rows for the whole suite.
#[must_use]
pub fn table1(scale: SuiteScale) -> Vec<SummaryRow> {
    run_suite(scale)
        .into_iter()
        .map(|(w, p)| SummaryRow::from_profile(w.abbr, &p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_workloads_in_three_domains() {
        let s = suite();
        assert_eq!(s.len(), 10);
        assert_eq!(
            s.iter().filter(|w| w.domain == Domain::Molecular).count(),
            3
        );
        assert_eq!(s.iter().filter(|w| w.domain == Domain::Graph).count(), 2);
        assert_eq!(
            s.iter()
                .filter(|w| w.domain == Domain::MachineLearning)
                .count(),
            5
        );
    }

    #[test]
    fn abbreviations_match_table_i() {
        let abbrs: Vec<&str> = suite().iter().map(|w| w.abbr).collect();
        assert_eq!(
            abbrs,
            ["GMS", "LMR", "LMC", "GST", "GRU", "DCG", "NST", "RFL", "SPT", "LGT"]
        );
    }

    #[test]
    fn every_workload_runs_at_tiny_scale() {
        for w in suite() {
            let p = run(w.abbr, SuiteScale::Tiny);
            assert!(p.kernel_count() > 0, "{}", w.abbr);
            assert!(p.total_time_s() > 0.0, "{}", w.abbr);
            assert!(p.total_warp_instructions() > 0, "{}", w.abbr);
        }
    }

    /// Observation 1/2: Cactus workloads execute many more kernels than
    /// the traditional suites — a dozen and up to multiple tens.
    #[test]
    fn workloads_are_multi_kernel() {
        for w in suite() {
            let p = run(w.abbr, SuiteScale::Tiny);
            // At tiny scale the road-network BFS only ramps through 4 of
            // its 8 kernel variants; profile scale exercises all of them.
            assert!(
                p.kernel_count() >= 4,
                "{}: only {} kernels",
                w.abbr,
                p.kernel_count()
            );
        }
    }

    /// Observation 3: same code base, different input → different kernels
    /// (LMR vs LMC share LAMMPS; GST vs GRU share the BFS code).
    #[test]
    fn input_sensitivity() {
        let kernels = |abbr: &str| -> std::collections::BTreeSet<String> {
            run(abbr, SuiteScale::Tiny)
                .kernels()
                .iter()
                .map(|k| k.name.clone())
                .collect()
        };
        assert_ne!(kernels("LMR"), kernels("LMC"));
        assert_ne!(kernels("GST"), kernels("GRU"));
    }

    #[test]
    fn run_suite_with_stats_reports_memo_counters() {
        for (w, p, stats) in run_suite_with_stats(SuiteScale::Tiny) {
            assert!(p.kernel_count() > 0, "{}", w.abbr);
            // Every launch went through the memoized path, and distinct
            // configurations (misses) can't exceed total launches.
            assert!(stats.launches() > 0, "{}", w.abbr);
            assert!(stats.misses >= 1, "{}", w.abbr);
            assert!((0.0..=1.0).contains(&stats.hit_rate()), "{}", w.abbr);
        }
    }

    #[test]
    fn table1_has_one_row_per_workload() {
        let rows = table1(SuiteScale::Tiny);
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.kernels_100 >= r.kernels_70));
    }

    #[test]
    #[should_panic(expected = "unknown Cactus workload")]
    fn unknown_abbr_panics() {
        let _ = run("XXX", SuiteScale::Tiny);
    }
}
