//! Suite-wide scale presets.
//!
//! The paper profiles full application inputs (32 K-atom proteins, 21 M-
//! vertex graphs, full training epochs) on physical hardware; the
//! CPU-hosted reproduction runs each workload at a reduced scale chosen so
//! that kernel populations, GPU-time distributions and roofline positions
//! — the properties the paper's claims rest on — are preserved (see
//! DESIGN.md §7 and EXPERIMENTS.md for the per-workload mapping).

/// Scale preset for a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteScale {
    /// Seconds-fast inputs for unit and integration tests.
    Tiny,
    /// Mid-sized inputs: large enough for the paper's qualitative shapes
    /// (kernel-class mixes, aggregate roofline positions) to emerge, small
    /// enough for debug-build integration tests.
    Small,
    /// The scale the benchmark harness profiles (release builds).
    Profile,
}

impl SuiteScale {
    /// MD particles and steps.
    #[must_use]
    pub fn md(self) -> (usize, u32) {
        match self {
            SuiteScale::Tiny => (300, 10),
            SuiteScale::Small => (3000, 8),
            SuiteScale::Profile => (32_000, 30),
        }
    }

    /// R-MAT scale exponent (vertices = 2^scale) for the social-network
    /// BFS input.
    #[must_use]
    pub fn social_scale(self) -> u32 {
        match self {
            SuiteScale::Tiny => 11,
            SuiteScale::Small => 14,
            SuiteScale::Profile => 20,
        }
    }

    /// Road-network grid side.
    #[must_use]
    pub fn road_side(self) -> u32 {
        match self {
            SuiteScale::Tiny => 48,
            SuiteScale::Small => 256,
            SuiteScale::Profile => 1448,
        }
    }

    /// ML batch size / image side / iterations.
    #[must_use]
    pub fn ml(self) -> (usize, usize, usize) {
        match self {
            SuiteScale::Tiny => (2, 8, 2),
            SuiteScale::Small => (4, 16, 2),
            SuiteScale::Profile => (16, 32, 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_scale_dominates_tiny() {
        assert!(SuiteScale::Profile.md().0 > SuiteScale::Tiny.md().0);
        assert!(SuiteScale::Profile.social_scale() > SuiteScale::Tiny.social_scale());
        assert!(SuiteScale::Profile.road_side() > SuiteScale::Tiny.road_side());
        assert!(SuiteScale::Profile.ml().0 >= SuiteScale::Tiny.ml().0);
    }
}
