//! The ten Cactus workloads (Table I) wired onto the substrate crates.

use cactus_gpu::Gpu;
use cactus_md::workloads::MdScale;
use cactus_tensor::apps::dcgan::{Dcgan, MlScale};
use cactus_tensor::apps::neural_style::NeuralStyle;
use cactus_tensor::apps::rl_dqn::DqnFlappy;
use cactus_tensor::apps::seq2seq::{Seq2Seq, SeqScale};
use cactus_tensor::apps::spatial_transformer::SpatialTransformer;

use crate::scale::SuiteScale;

/// Application domain (Table I's first column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Molecular simulation.
    Molecular,
    /// Graph analytics.
    Graph,
    /// Machine learning.
    MachineLearning,
}

impl Domain {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Molecular => "Molecular",
            Domain::Graph => "Graph",
            Domain::MachineLearning => "Machine Learning",
        }
    }
}

/// One Cactus workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Table I abbreviation (`"GMS"`, …).
    pub abbr: &'static str,
    /// Workload name.
    pub name: &'static str,
    /// Domain.
    pub domain: Domain,
    /// Paper data set (what this reproduction substitutes for it is
    /// documented in DESIGN.md).
    pub dataset: &'static str,
    runner: fn(&mut Gpu, SuiteScale),
}

impl Workload {
    /// Execute the workload on `gpu`.
    pub fn run(&self, gpu: &mut Gpu, scale: SuiteScale) {
        (self.runner)(gpu, scale);
    }
}

/// The suite in Table I order.
#[must_use]
pub fn suite() -> Vec<Workload> {
    vec![
        Workload {
            abbr: "GMS",
            name: "Gromacs NPT equilibration",
            domain: Domain::Molecular,
            dataset: "T4 lysozyme (synthetic protein-like system)",
            runner: gms,
        },
        Workload {
            abbr: "LMR",
            name: "LAMMPS protein simulation",
            domain: Domain::Molecular,
            dataset: "Rhodopsin 32K atoms (synthetic protein-like system)",
            runner: lmr,
        },
        Workload {
            abbr: "LMC",
            name: "LAMMPS pairwise particle interactions",
            domain: Domain::Molecular,
            dataset: "Colloid 60K atoms (synthetic suspension)",
            runner: lmc,
        },
        Workload {
            abbr: "GST",
            name: "BFS on social network",
            domain: Domain::Graph,
            dataset: "SOC-Twitter10 (R-MAT power-law graph)",
            runner: gst,
        },
        Workload {
            abbr: "GRU",
            name: "BFS on road network",
            domain: Domain::Graph,
            dataset: "Road USA (lattice road network)",
            runner: gru,
        },
        Workload {
            abbr: "DCG",
            name: "DCGAN training",
            domain: Domain::MachineLearning,
            dataset: "Celeba (synthetic face-like images)",
            runner: dcg,
        },
        Workload {
            abbr: "NST",
            name: "Neural style transfer",
            domain: Domain::MachineLearning,
            dataset: "Content and style images (synthetic)",
            runner: nst,
        },
        Workload {
            abbr: "RFL",
            name: "Deep-Q reinforcement learning",
            domain: Domain::MachineLearning,
            dataset: "Flappy bird game (simulated environment)",
            runner: rfl,
        },
        Workload {
            abbr: "SPT",
            name: "Spatial transformer training",
            domain: Domain::MachineLearning,
            dataset: "MNIST (synthetic digit glyphs)",
            runner: spt,
        },
        Workload {
            abbr: "LGT",
            name: "Seq2seq language translation",
            domain: Domain::MachineLearning,
            dataset: "Spacy German news (synthetic Zipf corpus)",
            runner: lgt,
        },
    ]
}

/// Look up a workload by abbreviation.
#[must_use]
pub fn by_abbr(abbr: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.abbr == abbr)
}

fn md_scale(scale: SuiteScale) -> (MdScale, u32) {
    let (atoms, steps) = scale.md();
    (MdScale { atoms, steps }, steps)
}

fn gms(gpu: &mut Gpu, scale: SuiteScale) {
    let (s, steps) = md_scale(scale);
    let mut e = cactus_md::workloads::gromacs_npt(s, 42);
    let _ = e.run(gpu, steps);
}

fn lmr(gpu: &mut Gpu, scale: SuiteScale) {
    let (s, steps) = md_scale(scale);
    let mut e = cactus_md::workloads::lammps_rhodopsin(s, 43);
    let _ = e.run(gpu, steps);
}

fn lmc(gpu: &mut Gpu, scale: SuiteScale) {
    let (mut s, steps) = md_scale(scale);
    // The colloid system's large interaction radius makes its CPU cost per
    // atom much higher; run it at half the protein systems' atom count.
    s.atoms /= 2;
    let mut e = cactus_md::workloads::lammps_colloid(s, 44);
    let _ = e.run(gpu, steps);
}

fn gst(gpu: &mut Gpu, scale: SuiteScale) {
    let g = cactus_graph::generators::social_network(scale.social_scale(), 45);
    // Source: a vertex of moderate degree so the frontier ramps through
    // all the load-balancing regimes.
    let src = (0..g.num_vertices())
        .find(|&v| g.out_degree(v) >= 8)
        .unwrap_or(0);
    // Direction-optimization switches a bit later on the social input so
    // the explosive middle level is still handled by the load-balanced
    // push advance (Gunrock's tuned do_a/do_b parameters behave the same).
    let cfg = cactus_graph::bfs::BfsConfig {
        bottom_up_fraction: 0.12,
        ..cactus_graph::bfs::BfsConfig::default()
    };
    let _ = cactus_graph::bfs::gunrock_bfs_with_config(gpu, &g, src, &cfg);
}

fn gru(gpu: &mut Gpu, scale: SuiteScale) {
    let side = scale.road_side();
    let g = cactus_graph::generators::road_network(side, side, 46);
    let _ = cactus_graph::gunrock_bfs(gpu, &g, 0);
}

fn ml_scale(scale: SuiteScale) -> MlScale {
    let (batch, image, iterations) = scale.ml();
    MlScale {
        batch,
        image,
        iterations,
    }
}

fn dcg(gpu: &mut Gpu, scale: SuiteScale) {
    let mut app = Dcgan::new(ml_scale(scale), 47);
    let _ = app.run(gpu);
}

fn nst(gpu: &mut Gpu, scale: SuiteScale) {
    let mut app = NeuralStyle::new(ml_scale(scale), 48);
    let _ = app.run(gpu);
}

fn rfl(gpu: &mut Gpu, scale: SuiteScale) {
    let mut app = DqnFlappy::new(ml_scale(scale), 49);
    if scale == SuiteScale::Profile {
        // Fewer environment ticks per replay fit: the profiled region is
        // dominated by the minibatch updates, as in the paper's steady
        // state (the warm-up acting phase is excluded there).
        app.steps_per_iteration = 4;
    }
    let _ = app.run(gpu);
}

fn spt(gpu: &mut Gpu, scale: SuiteScale) {
    let mut app = SpatialTransformer::new(ml_scale(scale), 50);
    let _ = app.run(gpu);
}

fn lgt(gpu: &mut Gpu, scale: SuiteScale) {
    let seq = match scale {
        SuiteScale::Tiny => SeqScale::tiny(),
        SuiteScale::Small => SeqScale {
            batch: 8,
            len: 6,
            vocab: 48,
            hidden: 24,
            iterations: 2,
        },
        SuiteScale::Profile => SeqScale::default_profile(),
    };
    let mut app = Seq2Seq::new(seq, 51);
    let _ = app.run(gpu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactus_gpu::Device;
    use cactus_profiler::Profile;
    use std::collections::BTreeSet;

    fn kernel_names(abbr: &str) -> BTreeSet<String> {
        let mut gpu = Gpu::new(Device::rtx3080());
        by_abbr(abbr).unwrap().run(&mut gpu, SuiteScale::Tiny);
        gpu.records().iter().map(|r| r.name.clone()).collect()
    }

    #[test]
    fn md_workloads_use_their_taxonomies() {
        assert!(kernel_names("GMS").iter().any(|n| n.starts_with("nbnxn")));
        assert!(kernel_names("LMR").iter().any(|n| n.starts_with("pppm")));
        assert!(kernel_names("LMC").iter().any(|n| n.contains("colloid")));
    }

    #[test]
    fn graph_workloads_are_gunrock_style() {
        assert!(kernel_names("GST").iter().any(|n| n.starts_with("bfs_")));
        assert!(kernel_names("GRU").iter().any(|n| n.starts_with("bfs_")));
    }

    #[test]
    fn ml_workloads_have_large_kernel_populations() {
        for abbr in ["DCG", "NST", "RFL", "SPT", "LGT"] {
            let n = kernel_names(abbr).len();
            assert!(n >= 18, "{abbr}: {n} kernels");
        }
    }

    #[test]
    fn md_kernel_counts_match_table_i() {
        let mut gpu = Gpu::new(Device::rtx3080());
        by_abbr("GMS").unwrap().run(&mut gpu, SuiteScale::Tiny);
        let gms = Profile::from_records(gpu.records());
        assert_eq!(gms.kernel_count(), 9, "GMS");

        let mut gpu = Gpu::new(Device::rtx3080());
        by_abbr("LMR").unwrap().run(&mut gpu, SuiteScale::Tiny);
        assert_eq!(
            Profile::from_records(gpu.records()).kernel_count(),
            15,
            "LMR"
        );

        let mut gpu = Gpu::new(Device::rtx3080());
        by_abbr("LMC").unwrap().run(&mut gpu, SuiteScale::Tiny);
        assert_eq!(
            Profile::from_records(gpu.records()).kernel_count(),
            9,
            "LMC"
        );
    }
}
