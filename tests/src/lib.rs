//! Host crate for the cross-crate integration tests in `tests/`.
//!
//! The tests assert the paper's Observations 1-12 end-to-end at test scale;
//! the `cactus-bench` binaries reproduce them at profile scale.
