//! The paper's Observations 1–12, asserted end-to-end at test scale.
//! (Profile-scale reproductions, with the exact paper-vs-measured numbers,
//! live in the `cactus-bench` binaries and EXPERIMENTS.md.)

use std::collections::BTreeSet;

use cactus_analysis::correlation::CorrelationMatrix;
use cactus_analysis::roofline::{Intensity, Roofline};
use cactus_core::SuiteScale;
use cactus_gpu::metrics::KernelMetrics;
use cactus_gpu::{Device, Gpu};
use cactus_profiler::Profile;
use cactus_suites::Scale;

/// Tiny scale: fast, structurally faithful (kernel sets, input
/// sensitivity).
fn cactus_profiles() -> Vec<(String, Profile)> {
    cactus_core::run_suite(SuiteScale::Tiny)
        .into_iter()
        .map(|(w, p)| (w.abbr.to_owned(), p))
        .collect()
}

/// Small scale: large enough for the roofline/time-distribution shapes
/// (tiny inputs are launch-overhead dominated).
fn cactus_profiles_small() -> Vec<(String, Profile)> {
    cactus_core::run_suite(SuiteScale::Small)
        .into_iter()
        .map(|(w, p)| (w.abbr.to_owned(), p))
        .collect()
}

/// The PRT computational cores are small even at profile scale, so the
/// comparison suites always run with their representative kernel sizes.
fn prt_profiles() -> Vec<(String, Profile)> {
    cactus_suites::all()
        .into_iter()
        .map(|b| {
            let mut gpu = Gpu::new(Device::rtx3080());
            b.run(&mut gpu, Scale::Profile);
            (b.name.to_owned(), Profile::from_records(gpu.records()))
        })
        .collect()
}

/// Observations 1 & 2: Cactus workloads execute many more kernels than the
/// traditional suites — up to multiple tens for the ML apps.
#[test]
fn obs_1_2_cactus_executes_many_more_kernels() {
    let cactus = cactus_profiles();
    let prt = prt_profiles();

    let cactus_avg: f64 = cactus
        .iter()
        .map(|(_, p)| p.kernel_count() as f64)
        .sum::<f64>()
        / cactus.len() as f64;
    let prt_avg: f64 = prt
        .iter()
        .map(|(_, p)| p.kernel_count() as f64)
        .sum::<f64>()
        / prt.len() as f64;
    assert!(
        cactus_avg > 3.0 * prt_avg,
        "cactus avg {cactus_avg:.1} vs PRT avg {prt_avg:.1}"
    );

    // ML workloads: multiple tens of kernels.
    for abbr in ["DCG", "NST", "RFL", "SPT", "LGT"] {
        let (_, p) = cactus.iter().find(|(a, _)| a == abbr).unwrap();
        assert!(p.kernel_count() >= 18, "{abbr}: {}", p.kernel_count());
    }
    // No PRT benchmark comes close.
    assert!(prt.iter().all(|(_, p)| p.kernel_count() <= 6));
}

/// Observation 3: the same code base executes different kernels for
/// different inputs.
#[test]
fn obs_3_input_sensitivity() {
    let kernels = |abbr: &str| -> BTreeSet<String> {
        cactus_core::run(abbr, SuiteScale::Tiny)
            .kernels()
            .iter()
            .map(|k| k.name.clone())
            .collect()
    };
    let lmr = kernels("LMR");
    let lmc = kernels("LMC");
    assert!(
        !lmr.is_subset(&lmc) && !lmc.is_subset(&lmr),
        "LAMMPS inputs"
    );
    let gst = kernels("GST");
    let gru = kernels("GRU");
    assert!(gru.is_subset(&gst) || !gst.is_subset(&gru), "BFS inputs");
    assert_ne!(gst, gru);
}

/// Observation 4: PRT workloads are unambiguous — kernels on one side of
/// the roofline elbow — except `lud` and `alexnet`.
#[test]
fn obs_4_prt_unambiguous_rooflines() {
    let r = Roofline::for_device(&Device::rtx3080());
    for (name, p) in prt_profiles() {
        let classes: BTreeSet<Intensity> = p
            .kernels()
            .iter()
            .map(|k| r.intensity_class(k.metrics.instruction_intensity))
            .collect();
        if name == "lud" || name == "alexnet" {
            assert_eq!(classes.len(), 2, "{name} should be the mixed exception");
        } else {
            assert_eq!(classes.len(), 1, "{name} should be single-sided");
        }
    }
}

/// Observation 5: the Cactus applications are primarily memory-intensive
/// in aggregate, with GMS the compute-side case.
#[test]
fn obs_5_cactus_aggregate_memory_intensive() {
    let r = Roofline::for_device(&Device::rtx3080());
    let mut memory = 0;
    for (abbr, p) in cactus_profiles_small() {
        let m = p.aggregate_metrics();
        let class = r.intensity_class(m.instruction_intensity);
        if abbr == "GMS" {
            assert_eq!(class, Intensity::ComputeIntensive, "GMS is compute-side");
        } else if class == Intensity::MemoryIntensive {
            memory += 1;
        }
    }
    assert!(memory >= 7, "only {memory}/9 non-GMS apps memory-intensive");
}

/// Observation 6: Cactus workloads mix memory- and compute-intensive
/// kernels within a single application.
#[test]
fn obs_6_cactus_mixes_kernel_classes() {
    let r = Roofline::for_device(&Device::rtx3080());
    let mut mixed = 0;
    for (_, p) in cactus_profiles_small() {
        let classes: BTreeSet<Intensity> = p
            .kernels()
            .iter()
            .map(|k| r.intensity_class(k.metrics.instruction_intensity))
            .collect();
        if classes.len() > 1 {
            mixed += 1;
        }
    }
    assert!(mixed >= 4, "only {mixed}/10 Cactus apps mix kernel classes");
}

/// Observation 9: Cactus's primary metrics correlate with at least as many
/// underlying metrics as PRT's.
#[test]
fn obs_9_cactus_behaviour_is_more_complex() {
    let collect = |profiles: &[(String, Profile)]| -> Vec<KernelMetrics> {
        profiles
            .iter()
            .flat_map(|(_, p)| p.kernels().iter().map(|k| k.metrics))
            .collect()
    };
    let mc = CorrelationMatrix::primary_vs_table_iv(&collect(&cactus_profiles_small()));
    let mp = CorrelationMatrix::primary_vs_table_iv(&collect(&prt_profiles()));
    assert!(
        mc.total_correlated() >= mp.total_correlated(),
        "Cactus {} vs PRT {}",
        mc.total_correlated(),
        mp.total_correlated()
    );
}

/// Figure 2's backbone: every PRT workload reaches 70% of its GPU time
/// within three kernels; most within one.
#[test]
fn fig2_prt_time_concentration() {
    let mut one = 0;
    for (name, p) in prt_profiles() {
        let k = p.kernels_for_fraction(0.7);
        assert!(k <= 3, "{name}: {k} kernels for 70%");
        if k == 1 {
            one += 1;
        }
    }
    assert!(one >= 18, "only {one}/32 single-kernel-dominated");
}

/// Figure 3's backbone: the Cactus ML workloads need many kernels to reach
/// 70% of GPU time.
#[test]
fn fig3_cactus_time_dispersion() {
    for (abbr, p) in cactus_profiles() {
        if ["DCG", "NST", "SPT", "LGT"].contains(&abbr.as_str()) {
            let k = p.kernels_for_fraction(0.7);
            assert!(k >= 5, "{abbr}: only {k} kernels for 70%");
        }
    }
}
