//! Cross-device invariants: the model must behave sensibly on every
//! device preset, and the comparison suites must be deterministic.

use cactus_analysis::roofline::Roofline;
use cactus_gpu::access::{AccessPattern, AccessStream};
use cactus_gpu::instmix::InstructionMix;
use cactus_gpu::kernel::KernelDesc;
use cactus_gpu::launch::LaunchConfig;
use cactus_gpu::{Device, Gpu};
use cactus_profiler::Profile;
use cactus_suites::Scale;

fn presets() -> [Device; 4] {
    [
        Device::gtx1080(),
        Device::rtx2080ti(),
        Device::rtx3080(),
        Device::a100(),
    ]
}

/// A saturating streaming kernel reaches (near) the memory roof on every
/// device, so modeled bandwidth scales with the hardware.
#[test]
fn streaming_kernel_scales_with_device_bandwidth() {
    let n = 1u64 << 24;
    let mut durations = Vec::new();
    for d in presets() {
        let bw = d.dram_bandwidth_gbps;
        let mut gpu = Gpu::new(d);
        let k = KernelDesc::builder("copy")
            .launch(LaunchConfig::linear(n, 256))
            .stream(AccessStream::read(n, 4, AccessPattern::Streaming))
            .stream(AccessStream::write(n, 4, AccessPattern::Streaming))
            .build();
        let m = gpu.launch(&k).metrics;
        durations.push((bw, m.duration_s));
        // On the roof: duration ≈ bytes / bandwidth.
        let bytes = 2.0 * n as f64 * 4.0;
        let ideal = bytes / (bw * 1e9);
        assert!(
            m.duration_s >= ideal * 0.95 && m.duration_s < ideal * 1.5,
            "{}: {} vs ideal {ideal}",
            gpu.device().name,
            m.duration_s
        );
    }
    // Faster memory ⇒ shorter duration, strictly ordered across presets.
    for w in durations.windows(2) {
        assert!(w[0].0 < w[1].0);
        assert!(w[0].1 > w[1].1, "{w:?}");
    }
}

/// A compute-saturating kernel approaches each device's own peak GIPS.
#[test]
fn compute_kernel_tracks_each_peak() {
    for d in presets() {
        let peak = d.peak_gips();
        let mut gpu = Gpu::new(d);
        let lc = LaunchConfig::linear(1 << 24, 256);
        let warps = lc.total_warps();
        let k = KernelDesc::builder("flops")
            .launch(lc)
            .mix(InstructionMix::new().with_fp32(warps * 4000))
            .build();
        let m = gpu.launch(&k).metrics;
        assert!(
            m.gips > 0.9 * peak && m.gips <= peak * 1.0001,
            "{}: {} vs peak {peak}",
            gpu.device().name,
            m.gips
        );
    }
}

/// The roofline model is internally consistent on every preset: the elbow
/// equals peak/slope and the roof is continuous there.
#[test]
fn roofline_geometry_consistent_on_all_presets() {
    for d in presets() {
        let r = Roofline::for_device(&d);
        let elbow = r.elbow();
        assert!((r.roof(elbow) - r.peak_gips()).abs() < 1e-6);
        assert!((r.roof(elbow * 0.999) - r.peak_gips()).abs() < 0.01 * r.peak_gips());
        assert!((d.elbow_intensity() - elbow).abs() < 1e-9);
    }
}

/// Every comparison-suite benchmark produces an identical profile on
/// repeated runs (full determinism of the baseline pool).
#[test]
fn comparison_suites_are_deterministic() {
    for b in cactus_suites::all() {
        let run = || {
            let mut gpu = Gpu::new(Device::rtx3080());
            b.run(&mut gpu, Scale::Tiny);
            Profile::from_records(gpu.records())
        };
        let (a, c) = (run(), run());
        assert_eq!(a.kernel_count(), c.kernel_count(), "{}", b.name);
        assert_eq!(
            a.total_warp_instructions(),
            c.total_warp_instructions(),
            "{}",
            b.name
        );
        assert!(
            (a.total_time_s() - c.total_time_s()).abs() < 1e-18,
            "{}",
            b.name
        );
    }
}
