//! End-to-end pipeline tests: workload → profile → roofline → correlation
//! → FAMD → clustering, plus determinism and conservation checks across
//! crate boundaries.

use cactus_analysis::famd::Famd;
use cactus_analysis::hclust::{self, Linkage};
use cactus_analysis::matrix::Matrix;
use cactus_analysis::roofline::Roofline;
use cactus_core::SuiteScale;
use cactus_gpu::metrics::MetricId;
use cactus_gpu::{Device, Gpu};
use cactus_profiler::report::SummaryRow;
use cactus_profiler::Profile;

/// The full Figure 9 pipeline runs end-to-end on real (tiny-scale) data
/// and produces a sane clustering.
#[test]
fn full_characterization_pipeline() {
    let r = Roofline::for_device(&Device::rtx3080());

    // Profile two structurally different workloads.
    let mut rows = Vec::new();
    let mut intensity = Vec::new();
    let mut bound = Vec::new();
    let mut labels = Vec::new();
    for abbr in ["GMS", "GRU", "SPT"] {
        let p = cactus_core::run(abbr, SuiteScale::Tiny);
        for k in p.dominant_kernels(0.7) {
            labels.push(format!("{abbr}/{}", k.name));
            rows.push(
                MetricId::TABLE_IV
                    .iter()
                    .map(|&id| k.metrics.get(id))
                    .collect::<Vec<f64>>(),
            );
            intensity.push(
                r.intensity_class(k.metrics.instruction_intensity)
                    .label()
                    .to_owned(),
            );
            bound.push(r.boundedness_class(k.metrics.gips).label().to_owned());
        }
    }
    let n = rows.len();
    assert!(n >= 6, "need a population to cluster, got {n}");
    let data = Matrix::from_rows(n, 13, rows.into_iter().flatten().collect());

    let famd = Famd::fit(&data, &[intensity, bound]);
    let dims = famd.dims_for_ratio(0.85).max(2);
    let coords = famd.coordinates(dims);
    assert_eq!(coords.rows(), n);

    let dend = hclust::cluster(&coords, Linkage::Ward);
    let k = 3.min(n);
    let assignment = dend.cut(k);
    assert_eq!(assignment.len(), n);
    let distinct: std::collections::BTreeSet<usize> = assignment.iter().copied().collect();
    assert_eq!(distinct.len(), k, "cut must produce {k} clusters");
}

/// The same workload with the same seed produces the identical profile
/// (the whole stack is deterministic).
#[test]
fn profiles_are_deterministic() {
    let a = cactus_core::run("LMC", SuiteScale::Tiny);
    let b = cactus_core::run("LMC", SuiteScale::Tiny);
    assert_eq!(a.total_warp_instructions(), b.total_warp_instructions());
    assert_eq!(a.kernel_count(), b.kernel_count());
    assert!((a.total_time_s() - b.total_time_s()).abs() < 1e-15);
    for (ka, kb) in a.kernels().iter().zip(b.kernels()) {
        assert_eq!(ka.name, kb.name);
        assert_eq!(ka.invocations, kb.invocations);
    }
}

/// Profile totals equal the sum over the raw execution trace.
#[test]
fn profile_conserves_the_trace() {
    let mut gpu = Gpu::new(Device::rtx3080());
    cactus_core::workloads::by_abbr("GRU")
        .unwrap()
        .run(&mut gpu, SuiteScale::Tiny);
    let trace_time: f64 = gpu.records().iter().map(|r| r.metrics.duration_s).sum();
    let trace_insts: u64 = gpu
        .records()
        .iter()
        .map(|r| r.metrics.warp_instructions)
        .sum();
    let p = Profile::from_records(gpu.records());
    assert!((p.total_time_s() - trace_time).abs() < 1e-12);
    assert_eq!(p.total_warp_instructions(), trace_insts);
    assert!((p.total_time_s() - gpu.total_gpu_time_s()).abs() < 1e-12);
}

/// Table I rows are internally consistent for every workload.
#[test]
fn table1_rows_are_consistent() {
    for (w, p) in cactus_core::run_suite(SuiteScale::Tiny) {
        let row = SummaryRow::from_profile(w.abbr, &p);
        assert!(row.kernels_70 >= 1);
        assert!(row.kernels_70 <= row.kernels_100);
        assert!(row.total_warp_instructions > 0);
        assert!(row.weighted_avg_warp_instructions > 0.0);
        assert!(
            row.weighted_avg_warp_instructions <= row.total_warp_instructions as f64,
            "{}: weighted average exceeds total",
            w.abbr
        );
    }
}

/// Roofline sanity across every kernel of the suite: no kernel exceeds the
/// compute roof or the memory roof at its intensity.
#[test]
fn no_kernel_breaks_the_roofline() {
    let r = Roofline::for_device(&Device::rtx3080());
    for (w, p) in cactus_core::run_suite(SuiteScale::Tiny) {
        for k in p.kernels() {
            let roof = r.roof(k.metrics.instruction_intensity);
            assert!(
                k.metrics.gips <= roof * 1.02,
                "{}/{}: {} GIPS above its {roof} roof",
                w.abbr,
                k.name,
                k.metrics.gips
            );
        }
    }
}

/// Every kernel metric stays in its documented range across the suite.
#[test]
fn metrics_stay_in_range() {
    let device = Device::rtx3080();
    for (w, p) in cactus_core::run_suite(SuiteScale::Tiny) {
        for k in p.kernels() {
            let m = &k.metrics;
            let ctx = format!("{}/{}", w.abbr, k.name);
            for (name, v) in [
                ("l1", m.l1_hit_rate),
                ("l2", m.l2_hit_rate),
                ("sm_eff", m.sm_efficiency),
                ("ldst", m.ldst_utilization),
                ("sp", m.sp_utilization),
                ("br", m.fraction_branches),
                ("ldst_frac", m.fraction_ldst),
                ("stall_exec", m.execution_stall),
                ("stall_pipe", m.pipe_stall),
                ("stall_sync", m.sync_stall),
                ("stall_mem", m.memory_stall),
            ] {
                assert!((0.0..=1.0).contains(&v), "{ctx}: {name} = {v}");
            }
            assert!(m.warp_occupancy <= f64::from(device.max_warps_per_sm));
            assert!(m.duration_s > 0.0, "{ctx}");
            assert!(m.gips >= 0.0 && m.gips.is_finite(), "{ctx}");
        }
    }
}
