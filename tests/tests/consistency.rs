//! The paper's methodological claims about profiling stability: "achieved
//! results are consistent across different number of epochs and
//! iterations" (Section III-C), and the steady-state-slice profiling
//! approach for MD (Section IV).

use cactus_gpu::{Device, Gpu};
use cactus_md::workloads::{self, MdScale};
use cactus_profiler::Profile;
use cactus_tensor::apps::dcgan::{Dcgan, MlScale};
use cactus_tensor::apps::seq2seq::{Seq2Seq, SeqScale};

fn gpu() -> Gpu {
    Gpu::new(Device::rtx3080())
}

/// Top-kernel time shares of a profile, as (name, share) pairs.
fn shares(p: &Profile, k: usize) -> Vec<(String, f64)> {
    let total = p.total_time_s();
    p.kernels()
        .iter()
        .take(k)
        .map(|s| (s.name.clone(), s.time_share(total)))
        .collect()
}

/// Training more iterations must not change which kernels dominate or
/// their time shares (beyond a small wobble) — profiling a few iterations
/// is representative, as the paper asserts.
#[test]
fn ml_profiles_are_iteration_stable() {
    let run_dcgan = |iters: usize| -> Profile {
        let mut gpu = gpu();
        let mut app = Dcgan::new(
            MlScale {
                batch: 2,
                image: 8,
                iterations: iters,
            },
            7,
        );
        let _ = app.run(&mut gpu);
        Profile::from_records(gpu.records())
    };
    let short = run_dcgan(2);
    let long = run_dcgan(6);

    assert_eq!(short.kernel_count(), long.kernel_count());
    for ((n1, s1), (n2, s2)) in shares(&short, 5).iter().zip(shares(&long, 5).iter()) {
        assert_eq!(n1, n2, "dominance order must be stable");
        assert!(
            (s1 - s2).abs() < 0.03,
            "{n1}: share moved {s1:.3} → {s2:.3}"
        );
    }
}

#[test]
fn seq2seq_profiles_are_iteration_stable() {
    let run = |iters: usize| -> Profile {
        let mut gpu = gpu();
        let mut scale = SeqScale::tiny();
        scale.iterations = iters;
        let mut app = Seq2Seq::new(scale, 9);
        let _ = app.run(&mut gpu);
        Profile::from_records(gpu.records())
    };
    let short = run(2);
    let long = run(5);
    assert_eq!(short.kernel_count(), long.kernel_count());
    // Per-kernel share of the most dominant kernel is stable.
    let s1 = shares(&short, 1)[0].clone();
    let s2 = shares(&long, 1)[0].clone();
    assert_eq!(s1.0, s2.0);
    assert!((s1.1 - s2.1).abs() < 0.03);
}

/// Profiling a steady-state MD slice is representative: the distribution
/// over kernels from steps 10–20 matches steps 20–30.
#[test]
fn md_steady_state_slices_are_representative() {
    let mut engine = workloads::lammps_rhodopsin(
        MdScale {
            atoms: 400,
            steps: 0,
        },
        3,
    );
    let mut gpu = gpu();
    // Warm up, then profile two consecutive windows with trace resets.
    let _ = engine.run(&mut gpu, 10);
    gpu.reset_trace();
    let _ = engine.run(&mut gpu, 10);
    let window1 = Profile::from_records(gpu.records());
    gpu.reset_trace();
    let _ = engine.run(&mut gpu, 10);
    let window2 = Profile::from_records(gpu.records());

    // Periodic kernels (energy reductions every 20 steps) can fall on one
    // side of a 10-step window boundary, so allow a one-kernel difference.
    assert!(
        window1.kernel_count().abs_diff(window2.kernel_count()) <= 1,
        "{} vs {}",
        window1.kernel_count(),
        window2.kernel_count()
    );
    for ((n1, s1), (n2, s2)) in shares(&window1, 3).iter().zip(shares(&window2, 3).iter()) {
        assert_eq!(n1, n2);
        assert!(
            (s1 - s2).abs() < 0.05,
            "{n1}: share moved {s1:.3} -> {s2:.3}"
        );
    }
}

/// Different seeds change the data but not the workload's structural
/// profile (kernel set and dominance order).
#[test]
fn seeds_change_data_not_structure() {
    let run = |seed: u64| -> Profile {
        let mut gpu = gpu();
        let mut engine = workloads::lammps_colloid(
            MdScale {
                atoms: 400,
                steps: 10,
            },
            seed,
        );
        let _ = engine.run(&mut gpu, 10);
        Profile::from_records(gpu.records())
    };
    let a = run(1);
    let b = run(99);
    assert_eq!(a.kernel_count(), b.kernel_count());
    // The full kernel set is identical; tiny same-cost kernels may swap
    // ranks, so only the top of the dominance order is pinned.
    let set_a: std::collections::BTreeSet<&str> =
        a.kernels().iter().map(|k| k.name.as_str()).collect();
    let set_b: std::collections::BTreeSet<&str> =
        b.kernels().iter().map(|k| k.name.as_str()).collect();
    assert_eq!(set_a, set_b);
    assert_eq!(a.kernels()[0].name, b.kernels()[0].name, "dominant kernel");
}
