//! Determinism guarantees of the execution engine.
//!
//! The parallel fan-out ([`cactus_gpu::par`]) and the launch memo cache
//! ([`cactus_gpu::Gpu`]) are pure performance features: both must produce
//! bit-identical results to the serial, uncached paths, down to the order
//! of the launch trace.

use cactus_core::SuiteScale;
use cactus_gpu::prelude::*;
use cactus_suites::Scale;

/// The parallel suite runner must return exactly what the serial runner
/// returns: same workload order, bit-identical profiles.
#[test]
fn parallel_suite_matches_serial() {
    let parallel = cactus_core::run_suite(SuiteScale::Tiny);
    let serial = cactus_core::run_suite_serial(SuiteScale::Tiny);
    assert_eq!(parallel.len(), serial.len());
    for ((pw, pp), (sw, sp)) in parallel.iter().zip(&serial) {
        assert_eq!(pw.abbr, sw.abbr, "workload order must match");
        assert_eq!(pp, sp, "profile of {} differs between modes", pw.abbr);
    }
}

/// Fan-out over the comparison suites (the `prt_profiles` shape) is equally
/// deterministic: compare full launch traces, not just aggregates.
#[test]
fn parallel_prt_fanout_matches_serial() {
    let run = |b: &cactus_suites::Benchmark| {
        let mut gpu = Gpu::new(Device::rtx3080());
        b.run(&mut gpu, Scale::Tiny);
        gpu.records().to_vec()
    };
    let parallel = cactus_gpu::par::parallel_map(cactus_suites::all(), |b| (b.name, run(&b)));
    let serial: Vec<_> = cactus_suites::all()
        .into_iter()
        .map(|b| (b.name, run(&b)))
        .collect();
    assert_eq!(parallel.len(), serial.len());
    for ((pn, pr), (sn, sr)) in parallel.iter().zip(&serial) {
        assert_eq!(pn, sn, "benchmark order must match");
        assert_eq!(pr, sr, "trace of {pn} differs between modes");
    }
}

/// A memoized run must reproduce the cold run exactly — every record, in
/// order, including per-launch metrics — for repeated-launch-heavy
/// workloads (MD integration loops, seq2seq time steps).
#[test]
fn memoized_run_matches_cold_run() {
    for abbr in ["GMS", "GRU"] {
        let mut cold = Gpu::new(Device::rtx3080());
        cold.set_memoization(false);
        let cold_profile = cactus_core::run_on(&mut cold, abbr, SuiteScale::Tiny);

        let mut memo = Gpu::new(Device::rtx3080());
        let memo_profile = cactus_core::run_on(&mut memo, abbr, SuiteScale::Tiny);

        assert_eq!(memo.memo_misses() as usize, memo.memo_len());
        assert!(
            memo.memo_hits() > 0,
            "{abbr} should re-launch at least one identical kernel"
        );
        assert_eq!(
            cold.records(),
            memo.records(),
            "{abbr}: memoized trace must equal cold trace, in order"
        );
        assert_eq!(cold_profile, memo_profile);
    }
}

/// Parallelism and memoization composed (the default engine configuration)
/// still match the fully serial, uncached baseline.
#[test]
fn parallel_memoized_suite_matches_cold_serial() {
    let baseline: Vec<_> = cactus_core::suite()
        .into_iter()
        .map(|w| {
            let mut gpu = Gpu::new(Device::rtx3080());
            gpu.set_memoization(false);
            let p = cactus_core::run_on(&mut gpu, w.abbr, SuiteScale::Tiny);
            (w.abbr, p)
        })
        .collect();
    let engine = cactus_core::run_suite(SuiteScale::Tiny);
    assert_eq!(baseline.len(), engine.len());
    for ((ba, bp), (ew, ep)) in baseline.iter().zip(&engine) {
        assert_eq!(*ba, ew.abbr);
        assert_eq!(bp, ep, "{ba}: engine output differs from cold baseline");
    }
}
